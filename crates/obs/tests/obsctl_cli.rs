//! End-to-end pin of the `obsctl` CLI against committed fixture exports:
//! the JSON report schema, the incident story in the text report, and the
//! `--must-alert` / `--must-not-alert` CI guard exit codes.

use std::process::{Command, Output};

const FAULTED: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/faulted");
const CLEAN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/clean");
const GOLDEN_REPORT: &str = include_str!("golden/faulted.report.json");

fn obsctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(args)
        .output()
        .expect("spawn obsctl")
}

#[test]
fn json_report_matches_the_golden_schema() {
    let out = obsctl(&["report", FAULTED, "--json"]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim_end(),
        GOLDEN_REPORT.trim_end(),
        "report JSON diverges from the pinned schema — update \
         tests/golden/faulted.report.json deliberately"
    );
}

#[test]
fn text_report_tells_the_incident_story() {
    let out = obsctl(&["report", FAULTED]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("backlog_growth on P2 at 450"),
        "incident line missing: {text}"
    );
    assert!(text.contains("lazy lag"), "lag table missing");
    assert!(text.contains("slowest op chains"), "hop chains missing");
}

#[test]
fn must_alert_guard_passes_on_the_faulted_run() {
    let out = obsctl(&["report", FAULTED, "--must-alert", "backlog_growth"]);
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn must_alert_guard_fails_on_the_clean_run() {
    let out = obsctl(&["report", CLEAN, "--must-alert", "backlog_growth"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn must_not_alert_guard_cuts_both_ways() {
    let clean = obsctl(&["report", CLEAN, "--must-not-alert"]);
    assert!(clean.status.success(), "{clean:?}");
    let faulted = obsctl(&["report", FAULTED, "--must-not-alert"]);
    assert_eq!(faulted.status.code(), Some(2), "{faulted:?}");
}

#[test]
fn deltas_show_the_backlog_build_up() {
    let out = obsctl(&["deltas", FAULTED, "--from", "100", "--to", "450", "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains(
            "{\"proc\":2,\"name\":\"relay.backlog_age\",\"first\":0,\"last\":330,\"gauge\":true}"
        ),
        "backlog age movement missing: {text}"
    );
}

#[test]
fn diff_contrasts_faulted_against_clean() {
    let out = obsctl(&["diff", FAULTED, CLEAN, "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("\"alerts\":{\"a\":1,\"b\":0}"),
        "alert contrast missing: {text}"
    );
    assert!(
        text.contains("\"backlog_growth\":{\"a\":1,\"b\":0}"),
        "rule contrast missing: {text}"
    );
}

#[test]
fn missing_files_and_bad_usage_exit_one() {
    let out = obsctl(&["report", "/nonexistent/prefix"]);
    assert_eq!(out.status.code(), Some(1));
    let out = obsctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let out = obsctl(&[]);
    assert_eq!(out.status.code(), Some(1));
}
