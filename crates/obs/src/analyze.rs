//! Post-mortem analyses over parsed exports: incident timelines around
//! alerts, lazy-lag percentiles, slowest-op hop chains, windowed metric
//! deltas, and run-vs-run diffs.

use std::collections::BTreeMap;

use crate::model::{AlertRec, SampleRec, TraceRec};

/// Exact nearest-rank percentiles of a gauge's sampled values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sampled value.
    pub max: u64,
}

impl Quantiles {
    /// Nearest-rank quantiles over a set of observations (all zero when
    /// empty).
    pub fn of(mut values: Vec<u64>) -> Quantiles {
        if values.is_empty() {
            return Quantiles::default();
        }
        values.sort_unstable();
        let rank = |q: f64| {
            let idx = ((values.len() as f64 - 1.0) * q).round() as usize;
            values[idx.min(values.len() - 1)]
        };
        Quantiles {
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: *values.last().unwrap(),
        }
    }
}

/// Per-processor percentiles of one gauge across the whole series — the
/// lazy-lag summary when pointed at `relay.backlog_age`.
pub fn gauge_quantiles(samples: &[SampleRec], gauge: &str) -> BTreeMap<u32, Quantiles> {
    let mut per_proc: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for s in samples {
        if let Some(v) = s.gauge(gauge) {
            per_proc.entry(s.proc).or_default().push(v);
        }
    }
    per_proc
        .into_iter()
        .map(|(p, vs)| (p, Quantiles::of(vs)))
        .collect()
}

/// The trace records within `window` ticks of `center`, in trace order —
/// the incident timeline around one alert.
pub fn timeline(trace: &[TraceRec], center: u64, window: u64) -> Vec<&TraceRec> {
    trace
        .iter()
        .filter(|r| r.at >= center.saturating_sub(window) && r.at <= center.saturating_add(window))
        .collect()
}

/// One operation's reconstructed hop chain.
#[derive(Clone, Debug)]
pub struct HopChain {
    /// The operation span.
    pub span: u64,
    /// Number of delivered actions attributed to the span.
    pub hops: usize,
    /// Total ticks those actions waited behind busy node managers.
    pub wait: u64,
    /// Span of trace time the chain covers (last `at` minus first `at`).
    pub elapsed: u64,
    /// The deliveries themselves: `(at, from, to, kind, wait)`.
    pub path: Vec<(u64, i64, i64, String, u64)>,
}

/// Group delivered actions by span and rank chains slowest-first (by
/// elapsed trace time, then by queueing). Returns at most `n` chains.
pub fn slowest_spans(trace: &[TraceRec], n: usize) -> Vec<HopChain> {
    let mut by_span: BTreeMap<u64, Vec<&TraceRec>> = BTreeMap::new();
    for r in trace {
        if r.event == "deliver" || r.event == "output" {
            if let Some(sp) = r.span {
                by_span.entry(sp).or_default().push(r);
            }
        }
    }
    let mut chains: Vec<HopChain> = by_span
        .into_iter()
        .map(|(span, recs)| {
            let first = recs.iter().map(|r| r.at).min().unwrap_or(0);
            let last = recs.iter().map(|r| r.at).max().unwrap_or(0);
            HopChain {
                span,
                hops: recs.len(),
                wait: recs.iter().map(|r| r.wait).sum(),
                elapsed: last - first,
                path: recs
                    .iter()
                    .map(|r| (r.at, r.from, r.to, r.kind.clone(), r.wait))
                    .collect(),
            }
        })
        .collect();
    chains.sort_by(|a, b| (b.elapsed, b.wait, a.span).cmp(&(a.elapsed, a.wait, b.span)));
    chains.truncate(n);
    chains
}

/// One metric's movement across a time window on one processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowDelta {
    /// The processor.
    pub proc: u32,
    /// Metric name.
    pub name: String,
    /// Value at the first sample inside the window.
    pub first: u64,
    /// Value at the last sample inside the window.
    pub last: u64,
    /// `true` for gauges (levels), `false` for counters (monotone).
    pub gauge: bool,
}

impl WindowDelta {
    /// Signed movement across the window.
    pub fn delta(&self) -> i64 {
        self.last as i64 - self.first as i64
    }
}

/// First-to-last movement of every counter and gauge, per processor, over
/// the samples falling inside `[t0, t1]`. Metrics that never move are
/// omitted.
pub fn window_deltas(samples: &[SampleRec], t0: u64, t1: u64) -> Vec<WindowDelta> {
    // (proc, name, is_gauge) -> (first, last), in sample order.
    let mut seen: BTreeMap<(u32, String, bool), (u64, u64)> = BTreeMap::new();
    for s in samples {
        if s.at < t0 || s.at > t1 {
            continue;
        }
        for (pairs, gauge) in [(&s.counters, false), (&s.gauges, true)] {
            for (name, v) in pairs {
                seen.entry((s.proc, name.clone(), gauge))
                    .and_modify(|(_, last)| *last = *v)
                    .or_insert((*v, *v));
            }
        }
    }
    seen.into_iter()
        .filter(|(_, (first, last))| first != last)
        .map(|((proc, name, gauge), (first, last))| WindowDelta {
            proc,
            name,
            first,
            last,
            gauge,
        })
        .collect()
}

/// The full post-mortem of one run — everything `obsctl report` prints,
/// exportable as one pinned JSON object.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct processors seen across trace and samples.
    pub procs: usize,
    /// Trace records parsed.
    pub events: usize,
    /// Ring-buffer head gap (the first retained record's `seq`).
    pub head_gap: u64,
    /// Sample records parsed.
    pub samples: usize,
    /// First trace/sample tick (`None` when both exports are empty).
    pub first_at: Option<u64>,
    /// Last trace/sample tick.
    pub last_at: Option<u64>,
    /// Alerts in firing order.
    pub alerts: Vec<AlertRec>,
    /// Alert count per rule.
    pub by_rule: BTreeMap<String, u64>,
    /// Alert count per processor.
    pub by_proc: BTreeMap<u32, u64>,
    /// Per-processor lazy-lag percentiles (`relay.backlog_age`).
    pub lag: BTreeMap<u32, Quantiles>,
    /// Slowest reconstructed op chains.
    pub slowest: Vec<HopChain>,
}

/// How many slow op chains a report keeps.
pub const SLOWEST_N: usize = 5;

impl Report {
    /// Build the post-mortem from parsed exports.
    pub fn build(trace: &[TraceRec], samples: &[SampleRec]) -> Report {
        let alerts = AlertRec::all_from_trace(trace);
        let mut by_rule: BTreeMap<String, u64> = BTreeMap::new();
        let mut by_proc: BTreeMap<u32, u64> = BTreeMap::new();
        for a in &alerts {
            *by_rule.entry(a.rule.clone()).or_insert(0) += 1;
            *by_proc.entry(a.proc).or_insert(0) += 1;
        }
        let mut procs: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.proc).collect();
        for r in trace {
            for id in [r.from, r.to] {
                if let Ok(p) = u32::try_from(id) {
                    procs.insert(p);
                }
            }
        }
        let ticks = trace
            .iter()
            .map(|r| r.at)
            .chain(samples.iter().map(|s| s.at));
        let first_at = ticks.clone().min();
        let last_at = ticks.max();
        Report {
            procs: procs.len(),
            events: trace.len(),
            head_gap: trace.first().map_or(0, |r| r.seq),
            samples: samples.len(),
            first_at,
            last_at,
            alerts,
            by_rule,
            by_proc,
            lag: gauge_quantiles(samples, "relay.backlog_age"),
            slowest: slowest_spans(trace, SLOWEST_N),
        }
    }

    /// `true` when no watchdog fired.
    pub fn healthy(&self) -> bool {
        self.alerts.is_empty()
    }

    /// The report as one JSON object (schema pinned by test).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |t| t.to_string());
        let mut s = format!(
            "{{\"procs\":{},\"events\":{},\"head_gap\":{},\"samples\":{},\"first_at\":{},\"last_at\":{},\"healthy\":{},\"alerts\":[",
            self.procs,
            self.events,
            self.head_gap,
            self.samples,
            opt(self.first_at),
            opt(self.last_at),
            self.healthy(),
        );
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"at\":{},\"proc\":{},\"rule\":\"{}\",\"value\":{},\"threshold\":{},\"windows\":{}}}",
                a.at, a.proc, a.rule, a.value, a.threshold, a.windows
            ));
        }
        s.push_str("],\"rules\":{");
        for (i, (rule, n)) in self.by_rule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{rule}\":{n}"));
        }
        s.push_str("},\"alert_procs\":{");
        for (i, (p, n)) in self.by_proc.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{p}\":{n}"));
        }
        s.push_str("},\"lag\":{");
        for (i, (p, q)) in self.lag.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{p}\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                q.p50, q.p90, q.p99, q.max
            ));
        }
        s.push_str("},\"slowest\":[");
        for (i, c) in self.slowest.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"span\":{},\"hops\":{},\"wait\":{},\"elapsed\":{}}}",
                c.span, c.hops, c.wait, c.elapsed
            ));
        }
        s.push_str("]}");
        s
    }
}

/// A run-vs-run comparison (`obsctl diff`).
#[derive(Clone, Debug)]
pub struct Diff {
    /// Alert totals: `(run A, run B)`.
    pub alerts: (u64, u64),
    /// Per-rule alert counts: rule -> `(A, B)`.
    pub rules: BTreeMap<String, (u64, u64)>,
    /// Per-processor lag p99: proc -> `(A, B)`.
    pub lag_p99: BTreeMap<u32, (u64, u64)>,
}

impl Diff {
    /// Compare two reports.
    pub fn of(a: &Report, b: &Report) -> Diff {
        let mut rules: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for (r, n) in &a.by_rule {
            rules.entry(r.clone()).or_default().0 = *n;
        }
        for (r, n) in &b.by_rule {
            rules.entry(r.clone()).or_default().1 = *n;
        }
        let mut lag_p99: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for (p, q) in &a.lag {
            lag_p99.entry(*p).or_default().0 = q.p99;
        }
        for (p, q) in &b.lag {
            lag_p99.entry(*p).or_default().1 = q.p99;
        }
        Diff {
            alerts: (a.alerts.len() as u64, b.alerts.len() as u64),
            rules,
            lag_p99,
        }
    }

    /// The diff as one JSON object (schema pinned by test).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"alerts\":{{\"a\":{},\"b\":{}}},\"rules\":{{",
            self.alerts.0, self.alerts.1
        );
        for (i, (rule, (a, b))) in self.rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{rule}\":{{\"a\":{a},\"b\":{b}}}"));
        }
        s.push_str("},\"lag_p99\":{");
        for (i, (p, (a, b))) in self.lag_p99.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{p}\":{{\"a\":{a},\"b\":{b}}}"));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: u64, proc: u32, age: u64) -> SampleRec {
        SampleRec {
            at,
            proc,
            counters: vec![("relays_applied".to_string(), at / 10)],
            gauges: vec![("relay.backlog_age".to_string(), age)],
        }
    }

    #[test]
    fn quantiles_are_nearest_rank_exact() {
        let q = Quantiles::of((1..=100).collect());
        // Nearest rank over 1..=100: index round(99·0.5) = 50 → value 51.
        assert_eq!(q.p50, 51);
        assert_eq!(q.p90, 90);
        assert_eq!(q.p99, 99);
        assert_eq!(q.max, 100);
        assert_eq!(Quantiles::of(Vec::new()), Quantiles::default());
    }

    #[test]
    fn gauge_quantiles_split_by_processor() {
        let samples: Vec<SampleRec> = (0..10)
            .flat_map(|i| [sample(i * 100, 0, i), sample(i * 100, 1, 10 * i)])
            .collect();
        let lag = gauge_quantiles(&samples, "relay.backlog_age");
        assert_eq!(lag[&0].max, 9);
        assert_eq!(lag[&1].max, 90);
        assert!(lag[&1].p50 > lag[&0].p50);
    }

    #[test]
    fn window_deltas_track_first_to_last_inside_the_window() {
        let samples = vec![sample(0, 0, 0), sample(100, 0, 40), sample(200, 0, 80)];
        let deltas = window_deltas(&samples, 50, 250);
        let age = deltas
            .iter()
            .find(|d| d.name == "relay.backlog_age")
            .unwrap();
        assert_eq!((age.first, age.last), (40, 80));
        assert_eq!(age.delta(), 40);
        assert!(age.gauge);
        let counter = deltas.iter().find(|d| d.name == "relays_applied").unwrap();
        assert!(!counter.gauge);
        // Samples outside the window are invisible.
        assert!(window_deltas(&samples, 300, 400).is_empty());
    }

    #[test]
    fn empty_report_is_healthy_and_total() {
        let r = Report::build(&[], &[]);
        assert!(r.healthy());
        assert_eq!(r.first_at, None);
        assert_eq!(
            r.to_json(),
            "{\"procs\":0,\"events\":0,\"head_gap\":0,\"samples\":0,\"first_at\":null,\"last_at\":null,\"healthy\":true,\"alerts\":[],\"rules\":{},\"alert_procs\":{},\"lag\":{},\"slowest\":[]}"
        );
    }

    #[test]
    fn diff_pairs_rules_and_lag_from_both_sides() {
        let samples_a = vec![sample(0, 0, 5)];
        let samples_b = vec![sample(0, 0, 500)];
        let a = Report::build(&[], &samples_a);
        let b = Report::build(&[], &samples_b);
        let d = Diff::of(&a, &b);
        assert_eq!(d.alerts, (0, 0));
        assert_eq!(d.lag_p99[&0], (5, 500));
        assert_eq!(
            d.to_json(),
            "{\"alerts\":{\"a\":0,\"b\":0},\"rules\":{},\"lag_p99\":{\"0\":{\"a\":5,\"b\":500}}}"
        );
    }
}
