//! # obs — post-mortem analysis of simnet observability exports
//!
//! The runtimes export three JSONL streams with pinned schemas: the causal
//! trace (`Trace::to_jsonl`), the per-processor sample series
//! (`Obs::series_jsonl`, counters + lazy-lag gauges), and the watchdog
//! alert stream (`Obs::alerts_jsonl`, also embedded in the trace as
//! `alert` records). This crate re-parses those streams **without any
//! dependency on the simulator** — it is the schemas' second, independent
//! consumer — and derives the post-mortem views the `obsctl` binary
//! prints: incident timelines around alerts, lazy-lag percentiles per
//! processor, slowest-op hop chains, windowed metric deltas, and
//! run-vs-run diffs.

#![warn(missing_docs)]

pub mod analyze;
pub mod json;
pub mod model;

pub use analyze::{
    gauge_quantiles, slowest_spans, timeline, window_deltas, Diff, HopChain, Quantiles, Report,
    WindowDelta,
};
pub use json::Json;
pub use model::{parse_samples_jsonl, parse_trace_jsonl, AlertRec, SampleRec, TraceRec};
