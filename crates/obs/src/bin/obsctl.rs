//! `obsctl` — post-mortem a run from its JSONL exports alone.
//!
//! A run (e.g. the E21 experiment or the CI chaos cell) writes a pair of
//! export files named `<prefix>.trace.jsonl` and `<prefix>.samples.jsonl`.
//! `obsctl` re-parses them against the pinned schemas and prints the
//! incident story:
//!
//! ```text
//! obsctl report <prefix> [--window TICKS] [--json]
//!               [--must-alert RULE] [--must-not-alert]
//! obsctl deltas <prefix> --from T --to T [--json]
//! obsctl diff <prefixA> <prefixB> [--json]
//! ```
//!
//! * `report` — run summary, every alert with an incident timeline of the
//!   trace around it, per-processor lazy-lag percentiles, and the slowest
//!   reconstructed op chains. `--must-alert RULE` exits 2 unless at least
//!   one alert of that rule fired; `--must-not-alert` exits 2 if *any*
//!   alert fired — the CI guards.
//! * `deltas` — first-to-last movement of every counter and gauge inside
//!   a time window.
//! * `diff` — alert counts per rule and lag p99 per processor, side by
//!   side for two runs.
//!
//! Exit codes: 0 success, 1 usage/parse error, 2 a `--must-*` guard failed.

use std::process::ExitCode;

use obs::{parse_samples_jsonl, parse_trace_jsonl, Diff, Report, SampleRec, TraceRec};

/// Default incident-timeline half-width, in ticks.
const DEFAULT_WINDOW: u64 = 200;
/// Most trace lines shown per incident timeline.
const TIMELINE_LIMIT: usize = 14;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obsctl report <prefix> [--window TICKS] [--json] [--must-alert RULE] [--must-not-alert]\n\
         \u{20}      obsctl deltas <prefix> --from T --to T [--json]\n\
         \u{20}      obsctl diff <prefixA> <prefixB> [--json]\n\
         \n\
         <prefix> names a pair of exports: <prefix>.trace.jsonl + <prefix>.samples.jsonl"
    );
    ExitCode::from(1)
}

fn load(prefix: &str) -> Result<(Vec<TraceRec>, Vec<SampleRec>), String> {
    let read = |path: String| {
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let trace = parse_trace_jsonl(&read(format!("{prefix}.trace.jsonl"))?)
        .map_err(|e| format!("{prefix}.trace.jsonl: {e}"))?;
    let samples = parse_samples_jsonl(&read(format!("{prefix}.samples.jsonl"))?)
        .map_err(|e| format!("{prefix}.samples.jsonl: {e}"))?;
    Ok((trace, samples))
}

fn print_report(report: &Report, trace: &[TraceRec], window: u64) {
    println!(
        "run: {} procs, {} trace records (head gap {}), {} samples, ticks {}..{}",
        report.procs,
        report.events,
        report.head_gap,
        report.samples,
        report.first_at.map_or("-".to_string(), |t| t.to_string()),
        report.last_at.map_or("-".to_string(), |t| t.to_string()),
    );
    if report.healthy() {
        println!("health: OK — no watchdog fired");
    } else {
        println!("health: {} alert(s)", report.alerts.len());
        for (rule, n) in &report.by_rule {
            println!("  {rule}: {n}");
        }
    }
    for alert in &report.alerts {
        println!(
            "\nincident: {} on P{} at {} (value {} > threshold {}, {} windows)",
            alert.rule, alert.proc, alert.at, alert.value, alert.threshold, alert.windows
        );
        let around = obs::timeline(trace, alert.at, window);
        let shown = around.len().min(TIMELINE_LIMIT);
        for r in around.iter().take(shown) {
            println!(
                "  {:>8}  {:<9} {:>3} -> {:<3} {:<22} {}",
                r.at,
                r.event,
                r.from,
                r.to,
                r.kind,
                if r.detail.len() > 48 {
                    &r.detail[..48]
                } else {
                    &r.detail
                }
            );
        }
        if around.len() > shown {
            println!(
                "  ... {} more within ±{} ticks",
                around.len() - shown,
                window
            );
        }
    }
    if !report.lag.is_empty() {
        println!("\nlazy lag (relay.backlog_age per proc):");
        println!("  proc      p50      p90      p99      max");
        for (p, q) in &report.lag {
            println!(
                "  P{:<4} {:>8} {:>8} {:>8} {:>8}",
                p, q.p50, q.p90, q.p99, q.max
            );
        }
    }
    if !report.slowest.is_empty() {
        println!("\nslowest op chains:");
        for c in &report.slowest {
            println!(
                "  span {:<8} {:>3} hops, {:>6} ticks elapsed, {:>5} queued",
                c.span, c.hops, c.elapsed, c.wait
            );
        }
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    let Some(prefix) = args.first() else {
        return usage();
    };
    let mut window = DEFAULT_WINDOW;
    let mut json = false;
    let mut must_alert: Option<String> = None;
    let mut must_not_alert = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => match it.next().and_then(|v| v.parse().ok()) {
                Some(w) => window = w,
                None => return usage(),
            },
            "--json" => json = true,
            "--must-alert" => match it.next() {
                Some(rule) => must_alert = Some(rule.clone()),
                None => return usage(),
            },
            "--must-not-alert" => must_not_alert = true,
            _ => return usage(),
        }
    }
    let (trace, samples) = match load(prefix) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obsctl: {e}");
            return ExitCode::from(1);
        }
    };
    let report = Report::build(&trace, &samples);
    if json {
        println!("{}", report.to_json());
    } else {
        print_report(&report, &trace, window);
    }
    if let Some(rule) = must_alert {
        if !report.alerts.iter().any(|a| a.rule == rule) {
            eprintln!("obsctl: guard failed — expected a {rule:?} alert, none fired");
            return ExitCode::from(2);
        }
    }
    if must_not_alert && !report.healthy() {
        eprintln!(
            "obsctl: guard failed — expected a clean run, {} alert(s) fired",
            report.alerts.len()
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn cmd_deltas(args: &[String]) -> ExitCode {
    let Some(prefix) = args.first() else {
        return usage();
    };
    let mut from: Option<u64> = None;
    let mut to: Option<u64> = None;
    let mut json = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--from" => from = it.next().and_then(|v| v.parse().ok()),
            "--to" => to = it.next().and_then(|v| v.parse().ok()),
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let (Some(t0), Some(t1)) = (from, to) else {
        return usage();
    };
    let (_, samples) = match load(prefix) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obsctl: {e}");
            return ExitCode::from(1);
        }
    };
    let deltas = obs::window_deltas(&samples, t0, t1);
    if json {
        let body: Vec<String> = deltas
            .iter()
            .map(|d| {
                format!(
                    "{{\"proc\":{},\"name\":\"{}\",\"first\":{},\"last\":{},\"gauge\":{}}}",
                    d.proc, d.name, d.first, d.last, d.gauge
                )
            })
            .collect();
        println!("[{}]", body.join(","));
    } else {
        println!("metric movement in [{t0}, {t1}]:");
        for d in &deltas {
            println!(
                "  P{:<4} {:<28} {:>8} -> {:<8} ({}{})",
                d.proc,
                d.name,
                d.first,
                d.last,
                if d.delta() >= 0 { "+" } else { "" },
                d.delta()
            );
        }
        if deltas.is_empty() {
            println!("  (nothing moved)");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let json = args.iter().any(|x| x == "--json");
    let (ra, rb) = match (load(a), load(b)) {
        (Ok((ta, sa)), Ok((tb, sb))) => (Report::build(&ta, &sa), Report::build(&tb, &sb)),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obsctl: {e}");
            return ExitCode::from(1);
        }
    };
    let diff = Diff::of(&ra, &rb);
    if json {
        println!("{}", diff.to_json());
    } else {
        println!("alerts: A={} B={}", diff.alerts.0, diff.alerts.1);
        for (rule, (na, nb)) in &diff.rules {
            println!("  {rule}: A={na} B={nb}");
        }
        println!("lag p99 (relay.backlog_age):");
        for (p, (qa, qb)) in &diff.lag_p99 {
            println!("  P{p}: A={qa} B={qb}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..]),
        Some("deltas") => cmd_deltas(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => usage(),
    }
}
