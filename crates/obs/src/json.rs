//! A minimal JSON reader for the pinned JSONL export schemas.
//!
//! The vendored `serde` is a no-op stub, so the exports are hand-written —
//! and this, their independent re-parser, is hand-written too. It supports
//! exactly the subset the exports use (objects, arrays, strings with the
//! escapes `json_escape_into` emits, integers, booleans, `null`) and fails
//! loudly on anything else, which is what a schema pin wants.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. The exports only ever write integers (tick counts, ids,
    /// counter values, and `-1` for the external endpoint), so the reader
    /// keeps them exact in an `i64`.
    Num(i64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the schemas pin field order, but lookups
    /// here are by name).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, or an empty slice.
    pub fn members(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(m) => m,
            _ => &[],
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (negative numbers are `None`).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            // The exports never write non-integers; refuse rather than round.
            return Err(format!("non-integer number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the source is a &str, so the
                    // bytes are valid).
                    let rest = std::str::from_utf8(&self.src[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_trace_line() {
        let line = r#"{"seq":3,"at":12,"from":-1,"to":0,"event":"deliver","kind":"client","span":null,"redelivery":false,"wait":0,"detail":"quote \" nl \n","deltas":{"x":1}}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("from").unwrap().as_i64(), Some(-1));
        assert_eq!(v.get("span"), Some(&Json::Null));
        assert_eq!(v.get("redelivery").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("detail").unwrap().as_str(), Some("quote \" nl \n"));
        assert_eq!(
            v.get("deltas").unwrap().members(),
            &[("x".to_string(), Json::Num(1))]
        );
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("{\"a\"").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn nested_arrays_and_unicode_escapes() {
        let v = Json::parse(r#"[{"k":"A"},[true,null,-7]]"#).unwrap();
        if let Json::Arr(items) = &v {
            assert_eq!(items[0].get("k").unwrap().as_str(), Some("A"));
            assert_eq!(
                items[1],
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-7)])
            );
        } else {
            panic!("expected array");
        }
    }
}
