//! Typed records for the three JSONL export streams, re-parsed from their
//! pinned schemas: the causal trace, the per-processor sample series, and
//! the watchdog alert stream.

use crate::json::Json;

/// One causal-trace record (`TraceEntry::to_json` schema).
#[derive(Clone, Debug)]
pub struct TraceRec {
    /// Global sequence number (the first retained record's `seq` names the
    /// ring buffer's head gap).
    pub seq: u64,
    /// Event time in ticks.
    pub at: u64,
    /// Sender (`-1` is the external endpoint).
    pub from: i64,
    /// Receiver (`-1` is the external endpoint).
    pub to: i64,
    /// Event label (`deliver`, `timer`, `alert`, ...).
    pub event: String,
    /// Message/rule kind.
    pub kind: String,
    /// Causal span (operation id), if attributed.
    pub span: Option<u64>,
    /// Whether this delivery was a session-layer retransmission.
    pub redelivery: bool,
    /// Ticks the delivery waited behind a busy node manager.
    pub wait: u64,
    /// Free-form detail.
    pub detail: String,
    /// Per-action protocol counter increases.
    pub deltas: Vec<(String, u64)>,
}

/// One sample-series record (`ProcSample::to_json` schema).
#[derive(Clone, Debug)]
pub struct SampleRec {
    /// Sample time in ticks.
    pub at: u64,
    /// The processor sampled.
    pub proc: u32,
    /// Monotone counter snapshot.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time level gauges.
    pub gauges: Vec<(String, u64)>,
}

/// One watchdog alert (`Alert::to_json` schema, or reconstructed from an
/// `alert` trace record).
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRec {
    /// Firing time in ticks.
    pub at: u64,
    /// The processor whose series tripped the rule.
    pub proc: u32,
    /// The rule name (`backlog_growth`, `parked_write_stall`,
    /// `retransmit_storm`, `suspect_flapping`).
    pub rule: String,
    /// The observed value that tripped the rule.
    pub value: u64,
    /// The configured threshold.
    pub threshold: u64,
    /// How many sample windows the rule looked across.
    pub windows: u64,
}

fn field<'a>(v: &'a Json, name: &str, line_no: usize) -> Result<&'a Json, String> {
    v.get(name)
        .ok_or_else(|| format!("line {line_no}: missing field {name:?}"))
}

fn pairs_of(v: &Json) -> Vec<(String, u64)> {
    v.members()
        .iter()
        .map(|(k, n)| (k.clone(), n.as_u64().unwrap_or(0)))
        .collect()
}

/// Parse a trace JSONL export. Blank lines are skipped; any malformed line
/// is an error naming its line number.
pub fn parse_trace_jsonl(src: &str) -> Result<Vec<TraceRec>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let u = |name: &str| -> Result<u64, String> {
            field(&v, name, n)?
                .as_u64()
                .ok_or_else(|| format!("line {n}: {name} is not a u64"))
        };
        let int = |name: &str| -> Result<i64, String> {
            field(&v, name, n)?
                .as_i64()
                .ok_or_else(|| format!("line {n}: {name} is not an integer"))
        };
        let s = |name: &str| -> Result<String, String> {
            Ok(field(&v, name, n)?
                .as_str()
                .ok_or_else(|| format!("line {n}: {name} is not a string"))?
                .to_string())
        };
        let span = match field(&v, "span", n)? {
            Json::Null => None,
            other => Some(
                other
                    .as_u64()
                    .ok_or_else(|| format!("line {n}: span is not a u64"))?,
            ),
        };
        out.push(TraceRec {
            seq: u("seq")?,
            at: u("at")?,
            from: int("from")?,
            to: int("to")?,
            event: s("event")?,
            kind: s("kind")?,
            span,
            redelivery: field(&v, "redelivery", n)?
                .as_bool()
                .ok_or_else(|| format!("line {n}: redelivery is not a bool"))?,
            wait: u("wait")?,
            detail: s("detail")?,
            deltas: pairs_of(field(&v, "deltas", n)?),
        });
    }
    Ok(out)
}

/// Parse a sample-series JSONL export.
pub fn parse_samples_jsonl(src: &str) -> Result<Vec<SampleRec>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let u = |name: &str| -> Result<u64, String> {
            field(&v, name, n)?
                .as_u64()
                .ok_or_else(|| format!("line {n}: {name} is not a u64"))
        };
        out.push(SampleRec {
            at: u("at")?,
            proc: u("proc")? as u32,
            counters: pairs_of(field(&v, "counters", n)?),
            gauges: pairs_of(field(&v, "gauges", n)?),
        });
    }
    Ok(out)
}

impl SampleRec {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

impl AlertRec {
    /// Reconstruct an alert from its trace record. The trace carries the
    /// rule as `kind` and the numbers in the pinned
    /// `rule=.. value=.. threshold=.. windows=..` detail string, so the
    /// alert stream is recoverable from the trace export alone.
    pub fn from_trace(rec: &TraceRec) -> Option<AlertRec> {
        if rec.event != "alert" {
            return None;
        }
        let mut value = 0;
        let mut threshold = 0;
        let mut windows = 0;
        for part in rec.detail.split_whitespace() {
            if let Some((k, v)) = part.split_once('=') {
                let n = v.parse().unwrap_or(0);
                match k {
                    "value" => value = n,
                    "threshold" => threshold = n,
                    "windows" => windows = n,
                    _ => {}
                }
            }
        }
        Some(AlertRec {
            at: rec.at,
            // Alerts are self-addressed; a negative (external) from can't
            // happen, but saturate rather than wrap if it ever does.
            proc: u32::try_from(rec.from).unwrap_or(u32::MAX),
            rule: rec.kind.clone(),
            value,
            threshold,
            windows,
        })
    }

    /// All alerts in a parsed trace, in firing order.
    pub fn all_from_trace(trace: &[TraceRec]) -> Vec<AlertRec> {
        trace.iter().filter_map(AlertRec::from_trace).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"seq":4,"at":15,"from":2,"to":2,"event":"timer","kind":"timer","span":null,"redelivery":false,"wait":0,"detail":"token=1","deltas":{}}"#,
        "\n",
        r#"{"seq":5,"at":32,"from":1,"to":1,"event":"alert","kind":"backlog_growth","span":null,"redelivery":false,"wait":0,"detail":"rule=backlog_growth value=12 threshold=4 windows=4","deltas":{}}"#,
        "\n",
    );

    #[test]
    fn trace_lines_round_trip() {
        let recs = parse_trace_jsonl(TRACE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 4);
        assert_eq!(recs[0].event, "timer");
        assert_eq!(recs[1].kind, "backlog_growth");
    }

    #[test]
    fn alerts_reconstruct_from_the_trace() {
        let recs = parse_trace_jsonl(TRACE).unwrap();
        let alerts = AlertRec::all_from_trace(&recs);
        assert_eq!(
            alerts,
            vec![AlertRec {
                at: 32,
                proc: 1,
                rule: "backlog_growth".to_string(),
                value: 12,
                threshold: 4,
                windows: 4,
            }]
        );
    }

    #[test]
    fn sample_lines_round_trip() {
        let src =
            r#"{"at":100,"proc":3,"counters":{"x":1,"y":2},"gauges":{"relay.backlog_depth":7}}"#;
        let recs = parse_samples_jsonl(src).unwrap();
        assert_eq!(recs[0].proc, 3);
        assert_eq!(recs[0].counter("y"), Some(2));
        assert_eq!(recs[0].gauge("relay.backlog_depth"), Some(7));
        assert_eq!(recs[0].gauge("missing"), None);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = parse_samples_jsonl("{\"at\":1}\nnot json\n").unwrap_err();
        assert!(
            err.starts_with("line 1:") || err.starts_with("line 2:"),
            "{err}"
        );
    }
}
