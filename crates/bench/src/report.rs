//! Plain-text experiment reports: aligned tables and section headers, so
//! every experiment binary prints rows that paste directly into
//! EXPERIMENTS.md.

/// A simple aligned table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Print an experiment banner.
pub fn section(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Print a one-line note under a section.
pub fn note(text: &str) {
    println!("  {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["proto", "msgs"]);
        t.row(&["semisync", "12"]).row(&["sync", "3000"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("proto"));
        assert!(lines[3].ends_with("3000"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }
}
