//! The continuous benchmark suite: a pinned matrix of workload cells run
//! through the shared [`Driver`](simnet::Driver)/[`Runtime`](simnet::Runtime)
//! abstraction, exported as a schema-pinned `BENCH.json`, and diffed against
//! a committed baseline with per-metric tolerances (the regression gate).
//!
//! A *cell* is one (structure × runtime × drive mode × network) combination
//! with fixed seeds and sizes. Simulator cells are bit-deterministic: an
//! identical binary re-running an identical cell produces an identical
//! `CellResult`, so any drift is a real code change. Threaded cells time
//! against the wall clock and are recorded but never gated
//! (`deterministic: false`).
//!
//! The JSON is hand-rolled (the vendored `serde` is a no-op stub): the
//! writer emits one flat object per cell, one cell per line, and the parser
//! reads exactly that shape back. The field set and encodings are frozen by
//! the golden-file test in `tests/suite.rs` — extending the schema is fine,
//! but do it deliberately and update the golden file in the same commit.

use dbtree::{BuildSpec, ClientOp, DbCluster, DbSubmission, Key, ThreadedDbCluster, TreeConfig};
use dhash::{DirProtocol, HKind, HashCluster, HashConfig, HashOp, HashSpec, ThreadedHashCluster};
use simnet::driver::{DriverStats, OpOutcome};
use simnet::{
    folded_waits, CrashEvent, DetectorConfig, FaultPlan, OpenLoopCfg, ProcId, Profiler,
    RetryPolicy, ServiceTimes, SessionConfig, SimConfig, SimTime,
};
use workload::{KeyDist, Mix, Op, OpKind, WorkloadGen};

use crate::{to_client, to_submission};

/// Which search structure a cell exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structure {
    /// The replicated dB-tree (`dbtree` crate).
    Blink,
    /// The lazy extendible hash table (`dhash` crate).
    Dhash,
}

impl Structure {
    fn label(self) -> &'static str {
        match self {
            Structure::Blink => "blink",
            Structure::Dhash => "dhash",
        }
    }
}

/// Which runtime substrate drives the cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Deterministic discrete-event simulator (virtual ticks).
    Sim,
    /// OS threads and crossbeam channels (wall-clock microseconds).
    Threaded,
}

impl RuntimeKind {
    fn label(self) -> &'static str {
        match self {
            RuntimeKind::Sim => "sim",
            RuntimeKind::Threaded => "threaded",
        }
    }
}

/// How the workload is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriveMode {
    /// Closed loop at the given concurrency.
    Closed(usize),
    /// Open loop with the given fixed inter-arrival period (ticks).
    Open(u64),
}

impl DriveMode {
    fn label(self) -> &'static str {
        match self {
            DriveMode::Closed(_) => "closed",
            DriveMode::Open(_) => "open",
        }
    }
}

/// Network conditions for the cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Network {
    /// The paper's reliable FIFO network.
    Clean,
    /// 3% message loss + 1% duplication; the session layer makes delivery
    /// reliable again, at the cost of retransmissions (sim only).
    Faulty,
    /// 2% loss plus a mid-run crash of one processor (restarted later),
    /// with the failure detector and the client retry layer enabled — the
    /// cost of a full self-healing cycle: suspicion, quarantine, redirected
    /// retries, rejoin, anti-entropy catch-up (sim only).
    Chaos,
}

impl Network {
    fn label(self) -> &'static str {
        match self {
            Network::Clean => "clean",
            Network::Faulty => "faulty",
            Network::Chaos => "chaos",
        }
    }
}

/// The processor the chaos cells crash, and when. Fixed alongside the cell
/// seeds: the whole outage is part of the pinned measurement.
const CHAOS_CRASH: CrashEvent = CrashEvent {
    proc: ProcId(2),
    at: SimTime(150),
    restart_at: Some(SimTime(1_200)),
};

/// Retry policy for chaos cells: deadlines short enough that operations
/// stuck on the dead processor redirect during the outage.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        enabled: true,
        deadline: 600,
        ..RetryPolicy::default()
    }
}

/// The replica-maintenance protocol under test, across both structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// dB-tree §4.1.2 semi-synchronous splits (the paper's lazy protocol).
    SemiSync,
    /// dB-tree available-copies baseline (write-all locking).
    AvailableCopies,
    /// Hash-table lazy directory patches.
    Lazy,
    /// Hash-table synchronous (ack-barrier) directory maintenance.
    DirSync,
}

impl Proto {
    fn label(self) -> &'static str {
        match self {
            Proto::SemiSync => "semisync",
            Proto::AvailableCopies => "availablecopies",
            Proto::Lazy => "lazy",
            Proto::DirSync => "dirsync",
        }
    }

    fn blink(self) -> dbtree::ProtocolKind {
        match self {
            Proto::SemiSync => dbtree::ProtocolKind::SemiSync,
            Proto::AvailableCopies => dbtree::ProtocolKind::AvailableCopies,
            _ => panic!("{self:?} is not a dB-tree protocol"),
        }
    }

    fn dhash(self) -> DirProtocol {
        match self {
            Proto::Lazy => DirProtocol::Lazy,
            Proto::DirSync => DirProtocol::Sync,
            _ => panic!("{self:?} is not a hash-directory protocol"),
        }
    }
}

/// Full specification of one benchmark cell. Everything that affects the
/// run is in here (plus the binary itself), so a cell id names a
/// reproducible measurement.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Stable identifier; baselines are joined on this.
    pub id: &'static str,
    /// Search structure.
    pub structure: Structure,
    /// Runtime substrate.
    pub runtime: RuntimeKind,
    /// Injection mode.
    pub drive: DriveMode,
    /// Network conditions.
    pub network: Network,
    /// Maintenance protocol.
    pub protocol: Proto,
    /// Operations injected.
    pub ops: usize,
    /// Workload + simulator seed.
    pub seed: u64,
    /// Cluster size.
    pub n_procs: u32,
    /// Keys preloaded before driving.
    pub preload: u64,
    /// Replication factor (dB-tree); the hash directory always has
    /// `n_procs` copies.
    pub copies: usize,
    /// Per-action service time (ticks; sim only).
    pub service_time: u64,
    /// One processor's service-time override (a degraded node manager).
    pub service_override: Option<(ProcId, u64)>,
    /// How many processors submit client operations (`0..origins`).
    pub origins: u32,
    /// Search/insert mix.
    pub mix: Mix,
    /// Key space the workload draws from. Delete-churn cells shrink this
    /// to the preloaded window so deletes actually empty leaves.
    pub key_space: u64,
    /// Enable lazy merge-at-empty (dB-tree only): emptied leaves are
    /// retired and their arena slots freed during the drive.
    pub merge: bool,
    /// Node fanout (dB-tree only). The delete-churn cell shrinks it so
    /// leaves hold few live keys and uniform deletes actually empty them.
    pub fanout: usize,
    /// Record a causal trace and run the critical-path profiler. Scale
    /// cells turn this off: tracing every delivery of a 256-processor run
    /// would measure the trace buffer, not the simulator.
    pub profile: bool,
}

/// Everything a cell run produces: the flat result row plus the two
/// folded-stack exports (critical-path chains, per-entry queueing).
#[derive(Clone, Debug)]
pub struct CellOutput {
    /// The measured row.
    pub result: CellResult,
    /// Latency-weighted critical-path chains (`proc.kind;... ticks`);
    /// empty for unprofiled (threaded) cells.
    pub folded_paths: String,
    /// Wait-tick-weighted trace entries (`proc;event;kind ticks`); empty
    /// for unprofiled cells.
    pub folded_waits: String,
}

/// One measured cell — the unit of `BENCH.json` and of the regression
/// gate. All fields are flat scalars so the hand-rolled JSON stays trivial.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellResult {
    /// Cell identifier (join key against the baseline).
    pub id: String,
    /// Structure label (`blink` / `dhash`).
    pub structure: String,
    /// Runtime label (`sim` / `threaded`).
    pub runtime: String,
    /// Drive label (`closed` / `open`).
    pub drive: String,
    /// Network label (`clean` / `faulty`).
    pub network: String,
    /// Protocol label.
    pub protocol: String,
    /// `true` iff re-running the identical binary reproduces this row
    /// bit-for-bit; only deterministic cells are gated.
    pub deterministic: bool,
    /// Cluster size.
    pub n_procs: u64,
    /// Operations injected.
    pub ops: u64,
    /// Operations completed.
    pub completed: u64,
    /// Ticks from first injection to last completion.
    pub makespan: u64,
    /// Completed ops per 1000 ticks.
    pub throughput_kops: f64,
    /// Mean op latency (ticks).
    pub lat_mean: f64,
    /// Latency p50.
    pub lat_p50: u64,
    /// Latency p95.
    pub lat_p95: u64,
    /// Latency p99.
    pub lat_p99: u64,
    /// Worst op latency.
    pub lat_max: u64,
    /// Mean navigation hops per op.
    pub hops_mean: f64,
    /// Total network messages during the drive (0 for threaded cells —
    /// the thread substrate has no message counters).
    pub msgs_total: u64,
    /// Messages per completed op.
    pub msgs_per_op: f64,
    /// Splits performed during the drive.
    pub splits: u64,
    /// Remote split-protocol (or directory-patch) messages.
    pub split_msgs: u64,
    /// Measured maintenance messages per split.
    pub msgs_per_split: f64,
    /// Copies per replicated object (directory copies for dhash).
    pub copies: u64,
    /// The paper's predicted messages per split for this protocol.
    pub paper_msgs_per_split: u64,
    /// Merge-at-empty commits during the drive (0 when merges are off or
    /// the structure has none).
    pub merges: u64,
    /// Node copies live across the cluster when the drive quiesces. Gated
    /// higher-is-worse: under delete churn this is the reclamation bound —
    /// a leak of retired nodes shows up as growth here.
    pub live_nodes: u64,
    /// Critical-path share of latency spent queueing behind busy node
    /// managers.
    pub seg_queueing: f64,
    /// Critical-path share spent on the wire.
    pub seg_transit: f64,
    /// Critical-path share spent executing actions.
    pub seg_service: f64,
    /// Critical-path share spent blocked on the reply side (locks, sync
    /// barriers).
    pub seg_stall: f64,
    /// Off-path (lazy maintenance) actions per profiled op.
    pub offpath_per_op: f64,
    /// Ops the profiler decomposed.
    pub profiled: u64,
    /// Ops skipped (causal chain not reconstructible from the trace).
    pub prof_skipped: u64,
    /// Profiled ops whose segments do not telescope exactly.
    pub prof_inexact: u64,
    /// Simulator events delivered during the drive (deterministic; gated —
    /// an event-count blowup is a protocol or simulator regression).
    pub events_total: u64,
    /// Wall-clock simulator throughput: events delivered per second of
    /// host time. Informational only: never gated, and masked out of the
    /// byte-determinism comparisons (it is the one wall-clock field a sim
    /// cell carries).
    pub events_per_sec: f64,
}

const KEY_SPACE: u64 = 20_000;
const TRACE_CAP: usize = 1 << 16;

/// The pinned cell matrix. `smoke` selects the reduced CI variant:
/// simulator cells only (bit-deterministic, so tolerances can be tight on
/// a noisy runner) with smaller op counts. The committed
/// `BENCH_BASELINE.json` is the smoke matrix; full-matrix baselines are
/// regenerated locally with `--update-baseline`.
pub fn matrix(smoke: bool) -> Vec<CellSpec> {
    let n = |full: usize, small: usize| if smoke { small } else { full };
    let blink = CellSpec {
        id: "",
        structure: Structure::Blink,
        runtime: RuntimeKind::Sim,
        drive: DriveMode::Closed(8),
        network: Network::Clean,
        protocol: Proto::SemiSync,
        ops: 0,
        seed: 11,
        n_procs: 6,
        preload: 80,
        copies: 3,
        service_time: 2,
        service_override: None,
        origins: 6,
        mix: Mix {
            search_fraction: 0.25,
            ..Mix::INSERT_ONLY
        },
        key_space: KEY_SPACE,
        merge: false,
        fanout: 8,
        profile: true,
    };
    let dhash = CellSpec {
        structure: Structure::Dhash,
        protocol: Proto::Lazy,
        preload: 60,
        seed: 13,
        ..blink.clone()
    };
    let mut cells = vec![
        CellSpec {
            id: "blink-sim-closed-clean",
            ops: n(400, 120),
            ..blink.clone()
        },
        CellSpec {
            id: "blink-sim-open-clean",
            drive: DriveMode::Open(30),
            mix: Mix::READ_HEAVY,
            ops: n(300, 100),
            ..blink.clone()
        },
        CellSpec {
            id: "blink-sim-closed-faulty",
            network: Network::Faulty,
            ops: n(250, 80),
            ..blink.clone()
        },
        CellSpec {
            id: "dhash-sim-closed-clean",
            ops: n(400, 120),
            ..dhash.clone()
        },
        CellSpec {
            id: "dhash-sim-open-clean",
            drive: DriveMode::Open(25),
            mix: Mix::READ_HEAVY,
            ops: n(300, 100),
            ..dhash.clone()
        },
        CellSpec {
            id: "dhash-sim-closed-faulty",
            network: Network::Faulty,
            ops: n(250, 80),
            ..dhash.clone()
        },
        // The price of a self-healing cycle: one processor crashes at tick
        // 150 and restarts at 1200, clients keep submitting to it, and the
        // detector + retry + recovery stack absorbs the outage. Gated like
        // every other sim cell — a regression here is a recovery-path
        // slowdown (or, if `completed` drops, a lost operation).
        CellSpec {
            id: "blink-sim-closed-chaos",
            network: Network::Chaos,
            ops: n(250, 80),
            ..blink.clone()
        },
        CellSpec {
            id: "dhash-sim-closed-chaos",
            network: Network::Chaos,
            ops: n(250, 80),
            ..dhash.clone()
        },
        // Delete-heavy churn over a narrow key window with lazy
        // merge-at-empty on: deletes drain the window's leaves to all-
        // tombstone, merges retire them, and the occasional insert refills.
        // The mix is deliberately harsher than `Mix::DELETE_CHURN` (85%
        // deletes vs 45%) and the fanout small, so leaves actually empty
        // within the pinned op budget. `merges` and `live_nodes` are the
        // gated reclamation metrics — if retirement stops committing or
        // stops freeing arena slots, this cell's gate trips. Scans ride
        // along to exercise the leaf-chain walk across retired nodes.
        CellSpec {
            id: "blink-sim-closed-deletes",
            ops: n(300, 200),
            seed: 19,
            mix: Mix {
                search_fraction: 0.05,
                delete_fraction: 0.85,
                scan_fraction: 0.05,
            },
            key_space: 200,
            merge: true,
            fanout: 4,
            profile: false,
            ..blink.clone()
        },
        // Simulator-throughput cell: a 256-processor clean run with
        // tracing and the service-time model off, so virtually all of the
        // wall clock is the event core itself (heap, dispatch, channel
        // bookkeeping). Its sim metrics are deterministic and gated like
        // any other cell; `events_per_sec` is the one wall-clock reading.
        CellSpec {
            id: "blink-sim-scale-tput",
            drive: DriveMode::Closed(64),
            ops: n(40000, 15000),
            seed: 17,
            n_procs: 256,
            preload: 4000,
            service_time: 0,
            origins: 256,
            mix: Mix {
                search_fraction: 0.5,
                ..Mix::INSERT_ONLY
            },
            profile: false,
            ..blink.clone()
        },
    ];
    if !smoke {
        cells.extend([
            CellSpec {
                id: "blink-thr-closed-clean",
                runtime: RuntimeKind::Threaded,
                ops: 200,
                ..blink.clone()
            },
            CellSpec {
                id: "blink-thr-open-clean",
                runtime: RuntimeKind::Threaded,
                drive: DriveMode::Open(50),
                ops: 200,
                ..blink.clone()
            },
            CellSpec {
                id: "dhash-thr-closed-clean",
                runtime: RuntimeKind::Threaded,
                ops: 200,
                ..dhash.clone()
            },
            CellSpec {
                id: "dhash-thr-open-clean",
                runtime: RuntimeKind::Threaded,
                drive: DriveMode::Open(50),
                ops: 200,
                ..dhash.clone()
            },
        ]);
    }
    cells
}

/// Run one cell to completion and measure it.
pub fn run_cell(spec: &CellSpec) -> CellOutput {
    match (spec.structure, spec.runtime) {
        (Structure::Blink, RuntimeKind::Sim) => run_blink_sim(spec),
        (Structure::Blink, RuntimeKind::Threaded) => run_blink_threaded(spec),
        (Structure::Dhash, RuntimeKind::Sim) => run_dhash_sim(spec),
        (Structure::Dhash, RuntimeKind::Threaded) => run_dhash_threaded(spec),
    }
}

fn sim_cfg(spec: &CellSpec) -> SimConfig {
    let mut cfg = SimConfig::jittery(spec.seed, 2, 25);
    cfg.trace_capacity = if spec.profile { TRACE_CAP } else { 0 };
    cfg.service_time = spec.service_time;
    if let Some(o) = spec.service_override {
        cfg.service_overrides.push(o);
    }
    match spec.network {
        Network::Clean => {}
        Network::Faulty => cfg.faults = FaultPlan::lossy(0.03).with_dup(0.01),
        Network::Chaos => cfg.faults = FaultPlan::lossy(0.02).with_crash(CHAOS_CRASH),
    }
    cfg
}

/// Session layer for the cell: chaos cells run the failure detector on top
/// of the reliable session; everything else takes the builder's default
/// (reliable iff the fault plan needs it).
fn chaos_session() -> SessionConfig {
    SessionConfig::reliable().with_detector(DetectorConfig::on())
}

fn service_times(spec: &CellSpec) -> ServiceTimes {
    let svc = ServiceTimes::uniform(spec.service_time);
    match spec.service_override {
        Some((p, t)) => svc.with_override(p, t),
        None => svc,
    }
}

fn workload_ops(spec: &CellSpec) -> Vec<Op> {
    WorkloadGen::new(
        KeyDist::Uniform { n: spec.key_space },
        spec.mix,
        spec.origins,
        spec.seed ^ 0x9E37,
    )
    .batch(spec.ops)
}

fn to_hash(op: &Op) -> HashOp {
    HashOp {
        origin: ProcId(op.origin),
        key: op.key,
        kind: match op.kind {
            OpKind::Search => HKind::Search,
            OpKind::Insert => HKind::Insert(op.value),
            OpKind::Delete => HKind::Delete,
            // The hash has no range order, so a scan degenerates to a point
            // lookup (no pinned dhash cell uses a scan-bearing mix).
            OpKind::Scan => HKind::Search,
        },
    }
}

/// Summary block shared by every cell kind.
struct Timing {
    completed: u64,
    makespan: u64,
    throughput_kops: f64,
    lat_mean: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    max: u64,
    hops_mean: f64,
}

fn timing<Op, O: OpOutcome>(s: &DriverStats<Op, O>) -> Timing {
    Timing {
        completed: s.records.len() as u64,
        makespan: s.makespan,
        throughput_kops: s.throughput_per_kilotick(),
        lat_mean: s.mean_latency(),
        p50: s.latency_quantile(0.5),
        p95: s.latency_quantile(0.95),
        p99: s.latency_quantile(0.99),
        max: s.latency_histogram().max(),
        hops_mean: s.mean_hops(),
    }
}

fn base_result(spec: &CellSpec, t: &Timing) -> CellResult {
    CellResult {
        id: spec.id.to_string(),
        structure: spec.structure.label().to_string(),
        runtime: spec.runtime.label().to_string(),
        drive: spec.drive.label().to_string(),
        network: spec.network.label().to_string(),
        protocol: spec.protocol.label().to_string(),
        deterministic: spec.runtime == RuntimeKind::Sim,
        n_procs: spec.n_procs as u64,
        ops: spec.ops as u64,
        completed: t.completed,
        makespan: t.makespan,
        throughput_kops: t.throughput_kops,
        lat_mean: t.lat_mean,
        lat_p50: t.p50,
        lat_p95: t.p95,
        lat_p99: t.p99,
        lat_max: t.max,
        hops_mean: t.hops_mean,
        ..CellResult::default()
    }
}

/// Fill the critical-path segment fields from a profiled run.
fn fill_profile(r: &mut CellResult, prof: &simnet::RunProfile) {
    let t = prof.totals();
    r.seg_queueing = t.share(t.queueing);
    r.seg_transit = t.share(t.transit);
    r.seg_service = t.share(t.service);
    r.seg_stall = t.share(t.stall);
    r.offpath_per_op = if t.ops == 0 {
        0.0
    } else {
        t.off_path_actions as f64 / t.ops as f64
    };
    r.profiled = t.ops;
    r.prof_skipped = prof.skipped;
    r.prof_inexact = prof.inexact();
}

fn run_blink_sim(spec: &CellSpec) -> CellOutput {
    let cfg = TreeConfig {
        record_history: false,
        merge_at_empty: spec.merge,
        fanout: spec.fanout,
        ..TreeConfig::fixed_copies(spec.protocol.blink(), spec.copies)
    };
    let keys: Vec<Key> = (0..spec.preload).map(|k| k * 10).collect();
    let bspec = BuildSpec::new(keys, spec.n_procs, cfg);
    let mut cluster = if spec.network == Network::Chaos {
        let mut c = DbCluster::build_with_session(&bspec, sim_cfg(spec), chaos_session());
        c.set_retry(chaos_retry());
        c
    } else {
        DbCluster::build(&bspec, sim_cfg(spec))
    };
    let before = cluster.sim.stats().clone();
    let events_before = cluster.sim.events_delivered();
    let wall = std::time::Instant::now();
    // Scan-bearing mixes go through the mixed submission path (scans are a
    // different submission type); pure point mixes keep the original
    // closed/open entry points so their pinned measurements don't move.
    let wl = workload_ops(spec);
    let stats = if spec.mix.scan_fraction > 0.0 {
        let items: Vec<DbSubmission> = wl.iter().map(to_submission).collect();
        match spec.drive {
            DriveMode::Closed(c) => cluster.run_closed_loop_mixed(&items, c),
            DriveMode::Open(_) => panic!("open-loop scan cells are not wired up"),
        }
    } else {
        let ops: Vec<ClientOp> = wl.iter().map(to_client).collect();
        match spec.drive {
            DriveMode::Closed(c) => cluster.run_closed_loop(&ops, c),
            DriveMode::Open(p) => cluster.run_open_loop(&ops, &OpenLoopCfg::fixed(p)),
        }
    };
    let wall = wall.elapsed();
    let delta = cluster.sim.stats().delta_since(&before);
    let splits = crate::sum_metric(&cluster, |m| m.splits_initiated);
    let split_msgs = delta.remote_matching(|k| k.starts_with("split."));

    let mut r = base_result(spec, &timing(&stats));
    r.events_total = cluster.sim.events_delivered() - events_before;
    r.events_per_sec = r.events_total as f64 / wall.as_secs_f64().max(1e-9);
    r.msgs_total = delta.total_messages();
    r.msgs_per_op = r.msgs_total as f64 / r.completed.max(1) as f64;
    r.splits = splits;
    r.split_msgs = split_msgs;
    r.msgs_per_split = split_msgs as f64 / splits.max(1) as f64;
    r.copies = spec.copies as u64;
    // §4.1.2: a semisync split relays to the R-1 other copies; available
    // copies pays the same relay fan-out (its overhead is locking, not
    // split messages).
    r.paper_msgs_per_split = (spec.copies as u64).saturating_sub(1);
    r.merges = crate::sum_metric(&cluster, |m| m.merges_completed);
    r.live_nodes = cluster.sim.procs().map(|(_, p)| p.store.len() as u64).sum();

    if !spec.profile {
        return CellOutput {
            result: r,
            folded_paths: String::new(),
            folded_waits: String::new(),
        };
    }
    let obs = cluster.take_obs();
    let prof = Profiler::new(service_times(spec)).profile_stats(&obs.trace, &stats);
    fill_profile(&mut r, &prof);
    CellOutput {
        result: r,
        folded_paths: prof.folded_paths(),
        folded_waits: folded_waits(&obs.trace),
    }
}

fn run_blink_threaded(spec: &CellSpec) -> CellOutput {
    let cfg = TreeConfig {
        record_history: false,
        merge_at_empty: spec.merge,
        fanout: spec.fanout,
        ..TreeConfig::fixed_copies(spec.protocol.blink(), spec.copies)
    };
    let keys: Vec<Key> = (0..spec.preload).map(|k| k * 10).collect();
    let bspec = BuildSpec::new(keys, spec.n_procs, cfg);
    let mut cluster = ThreadedDbCluster::build_threaded(&bspec);
    let ops: Vec<ClientOp> = workload_ops(spec).iter().map(to_client).collect();
    let stats = match spec.drive {
        DriveMode::Closed(c) => cluster.run_closed_loop(&ops, c),
        DriveMode::Open(p) => cluster.run_open_loop(&ops, &OpenLoopCfg::fixed(p)),
    };
    let mut r = base_result(spec, &timing(&stats));
    r.copies = spec.copies as u64;
    r.paper_msgs_per_split = (spec.copies as u64).saturating_sub(1);
    // The thread substrate counts no messages; splits are still visible in
    // the recovered process state.
    r.splits = cluster
        .into_procs()
        .iter()
        .map(|p| p.metrics.splits_initiated)
        .sum();
    CellOutput {
        result: r,
        folded_paths: String::new(),
        folded_waits: String::new(),
    }
}

fn run_dhash_sim(spec: &CellSpec) -> CellOutput {
    let hspec = HashSpec {
        preload: (0..spec.preload).map(|k| k * 7).collect(),
        n_procs: spec.n_procs,
        cfg: HashConfig {
            protocol: spec.protocol.dhash(),
            record_history: false,
            ..HashConfig::default()
        },
    };
    let mut cluster = if spec.network == Network::Chaos {
        let mut c = HashCluster::build_with_session(&hspec, sim_cfg(spec), chaos_session());
        c.set_retry(chaos_retry());
        c
    } else {
        HashCluster::build(&hspec, sim_cfg(spec))
    };
    let before = cluster.sim.stats().clone();
    let events_before = cluster.sim.events_delivered();
    let wall = std::time::Instant::now();
    let ops: Vec<HashOp> = workload_ops(spec).iter().map(to_hash).collect();
    let stats = match spec.drive {
        DriveMode::Closed(c) => cluster
            .try_run_closed_loop_stats(&ops, c)
            .expect("dhash cell failed to quiesce"),
        DriveMode::Open(p) => cluster
            .try_run_open_loop_stats(&ops, &OpenLoopCfg::fixed(p))
            .expect("dhash cell failed to quiesce"),
    };
    let wall = wall.elapsed();
    let delta = cluster.sim.stats().delta_since(&before);
    let splits: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.splits).sum();
    let split_msgs = delta.remote_matching(|k| k.starts_with("dir."));

    let mut r = base_result(spec, &timing(&stats));
    r.events_total = cluster.sim.events_delivered() - events_before;
    r.events_per_sec = r.events_total as f64 / wall.as_secs_f64().max(1e-9);
    r.msgs_total = delta.total_messages();
    r.msgs_per_op = r.msgs_total as f64 / r.completed.max(1) as f64;
    r.splits = splits;
    r.split_msgs = split_msgs;
    r.msgs_per_split = split_msgs as f64 / splits.max(1) as f64;
    // The directory is replicated on every processor: a lazy split
    // broadcasts one patch to each of the P-1 peers.
    r.copies = spec.n_procs as u64;
    r.paper_msgs_per_split = (spec.n_procs as u64).saturating_sub(1);

    if !spec.profile {
        return CellOutput {
            result: r,
            folded_paths: String::new(),
            folded_waits: String::new(),
        };
    }
    let obs = cluster.take_obs();
    let prof = Profiler::new(service_times(spec)).profile_stats(&obs.trace, &stats);
    fill_profile(&mut r, &prof);
    CellOutput {
        result: r,
        folded_paths: prof.folded_paths(),
        folded_waits: folded_waits(&obs.trace),
    }
}

fn run_dhash_threaded(spec: &CellSpec) -> CellOutput {
    let hspec = HashSpec {
        preload: (0..spec.preload).map(|k| k * 7).collect(),
        n_procs: spec.n_procs,
        cfg: HashConfig {
            protocol: spec.protocol.dhash(),
            record_history: false,
            ..HashConfig::default()
        },
    };
    let mut cluster = ThreadedHashCluster::build_threaded(&hspec);
    let ops: Vec<HashOp> = workload_ops(spec).iter().map(to_hash).collect();
    let stats = match spec.drive {
        DriveMode::Closed(c) => cluster
            .try_run_closed_loop_stats(&ops, c)
            .expect("dhash cell failed to quiesce"),
        DriveMode::Open(p) => cluster
            .try_run_open_loop_stats(&ops, &OpenLoopCfg::fixed(p))
            .expect("dhash cell failed to quiesce"),
    };
    let mut r = base_result(spec, &timing(&stats));
    r.copies = spec.n_procs as u64;
    r.paper_msgs_per_split = (spec.n_procs as u64).saturating_sub(1);
    r.splits = cluster
        .into_procs()
        .iter()
        .map(|p| p.metrics.splits)
        .sum::<u64>();
    CellOutput {
        result: r,
        folded_paths: String::new(),
        folded_waits: String::new(),
    }
}

// ---------------------------------------------------------------------------
// BENCH.json

/// The schema tag written into every report; bump on breaking changes.
pub const SCHEMA: &str = "bench-v1";

/// A full suite run: the schema tag plus one row per cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Measured cells, in matrix order.
    pub cells: Vec<CellResult>,
}

/// Format an `f64` metric: fixed four decimal places, so output is
/// byte-stable across runs and platforms.
fn f(x: f64) -> String {
    format!("{x:.4}")
}

impl CellResult {
    /// One flat JSON object (no trailing newline). Field order is frozen
    /// by the golden-file test.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"structure\":\"{}\",\"runtime\":\"{}\",\"drive\":\"{}\",\
             \"network\":\"{}\",\"protocol\":\"{}\",\"deterministic\":{},\"n_procs\":{},\
             \"ops\":{},\"completed\":{},\"makespan\":{},\"throughput_kops\":{},\
             \"lat_mean\":{},\"lat_p50\":{},\"lat_p95\":{},\"lat_p99\":{},\"lat_max\":{},\
             \"hops_mean\":{},\"msgs_total\":{},\"msgs_per_op\":{},\"splits\":{},\
             \"split_msgs\":{},\"msgs_per_split\":{},\"copies\":{},\"paper_msgs_per_split\":{},\
             \"merges\":{},\"live_nodes\":{},\
             \"seg_queueing\":{},\"seg_transit\":{},\"seg_service\":{},\"seg_stall\":{},\
             \"offpath_per_op\":{},\"profiled\":{},\"prof_skipped\":{},\"prof_inexact\":{},\
             \"events_total\":{},\"events_per_sec\":{}}}",
            self.id,
            self.structure,
            self.runtime,
            self.drive,
            self.network,
            self.protocol,
            self.deterministic,
            self.n_procs,
            self.ops,
            self.completed,
            self.makespan,
            f(self.throughput_kops),
            f(self.lat_mean),
            self.lat_p50,
            self.lat_p95,
            self.lat_p99,
            self.lat_max,
            f(self.hops_mean),
            self.msgs_total,
            f(self.msgs_per_op),
            self.splits,
            self.split_msgs,
            f(self.msgs_per_split),
            self.copies,
            self.paper_msgs_per_split,
            self.merges,
            self.live_nodes,
            f(self.seg_queueing),
            f(self.seg_transit),
            f(self.seg_service),
            f(self.seg_stall),
            f(self.offpath_per_op),
            self.profiled,
            self.prof_skipped,
            self.prof_inexact,
            self.events_total,
            f(self.events_per_sec),
        )
    }

    /// Parse one cell object written by [`CellResult::to_json`].
    pub fn from_json(s: &str) -> Result<CellResult, String> {
        fn field<'a>(s: &'a str, name: &str) -> Result<&'a str, String> {
            let pat = format!("\"{name}\":");
            let i = s
                .find(&pat)
                .ok_or_else(|| format!("missing field {name:?}"))?
                + pat.len();
            let rest = &s[i..];
            let end = rest
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated field {name:?}"))?;
            Ok(rest[..end].trim_matches('"'))
        }
        fn num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
            field(s, name)?
                .parse()
                .map_err(|_| format!("bad value for {name:?}"))
        }
        Ok(CellResult {
            id: field(s, "id")?.to_string(),
            structure: field(s, "structure")?.to_string(),
            runtime: field(s, "runtime")?.to_string(),
            drive: field(s, "drive")?.to_string(),
            network: field(s, "network")?.to_string(),
            protocol: field(s, "protocol")?.to_string(),
            deterministic: num(s, "deterministic")?,
            n_procs: num(s, "n_procs")?,
            ops: num(s, "ops")?,
            completed: num(s, "completed")?,
            makespan: num(s, "makespan")?,
            throughput_kops: num(s, "throughput_kops")?,
            lat_mean: num(s, "lat_mean")?,
            lat_p50: num(s, "lat_p50")?,
            lat_p95: num(s, "lat_p95")?,
            lat_p99: num(s, "lat_p99")?,
            lat_max: num(s, "lat_max")?,
            hops_mean: num(s, "hops_mean")?,
            msgs_total: num(s, "msgs_total")?,
            msgs_per_op: num(s, "msgs_per_op")?,
            splits: num(s, "splits")?,
            split_msgs: num(s, "split_msgs")?,
            msgs_per_split: num(s, "msgs_per_split")?,
            copies: num(s, "copies")?,
            paper_msgs_per_split: num(s, "paper_msgs_per_split")?,
            merges: num(s, "merges")?,
            live_nodes: num(s, "live_nodes")?,
            seg_queueing: num(s, "seg_queueing")?,
            seg_transit: num(s, "seg_transit")?,
            seg_service: num(s, "seg_service")?,
            seg_stall: num(s, "seg_stall")?,
            offpath_per_op: num(s, "offpath_per_op")?,
            profiled: num(s, "profiled")?,
            prof_skipped: num(s, "prof_skipped")?,
            prof_inexact: num(s, "prof_inexact")?,
            events_total: num(s, "events_total")?,
            events_per_sec: num(s, "events_per_sec")?,
        })
    }
}

impl BenchReport {
    /// The full `BENCH.json` document: schema tag + one cell per line.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SCHEMA}\",\"cells\":[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&c.to_json());
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a document written by [`BenchReport::to_json`].
    pub fn parse(s: &str) -> Result<BenchReport, String> {
        let tag = format!("\"schema\":\"{SCHEMA}\"");
        if !s.contains(&tag) {
            return Err(format!("not a {SCHEMA} document"));
        }
        let mut cells = Vec::new();
        for line in s.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.starts_with("{\"id\"") {
                cells.push(CellResult::from_json(line)?);
            }
        }
        Ok(BenchReport { cells })
    }
}

// ---------------------------------------------------------------------------
// Regression gate

/// Per-metric tolerances for the regression gate. A metric regresses when
/// it worsens beyond `rel` (fraction of the baseline) *plus* `abs`
/// (ticks/units) — the absolute slack keeps tiny baselines (p50 of 3
/// ticks) from flagging one-tick quantization moves.
#[derive(Clone, Copy, Debug)]
pub struct GateCfg {
    /// Relative tolerance (fraction of baseline).
    pub rel: f64,
    /// Absolute tolerance (same unit as the metric).
    pub abs: f64,
}

impl Default for GateCfg {
    fn default() -> Self {
        GateCfg {
            rel: 0.25,
            abs: 2.0,
        }
    }
}

/// One gated metric that worsened past its tolerance.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Which cell.
    pub cell: String,
    /// Which metric.
    pub metric: &'static str,
    /// The committed baseline value.
    pub baseline: f64,
    /// The measured value.
    pub current: f64,
    /// The limit the measurement crossed.
    pub allowed: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            fm,
            "{}: {} regressed — baseline {:.2}, now {:.2} (allowed {:.2})",
            self.cell, self.metric, self.baseline, self.current, self.allowed
        )
    }
}

/// Diff `current` against `baseline`. Only cells marked deterministic in
/// *both* reports are gated; threaded (wall-clock) cells are informational.
/// A baseline cell missing from the current run, or run with a different
/// op count, is itself a regression (the matrix drifted — re-run with
/// `--update-baseline` if the change is intentional).
pub fn compare(current: &BenchReport, baseline: &BenchReport, gate: &GateCfg) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in &baseline.cells {
        let Some(cur) = current.cells.iter().find(|c| c.id == base.id) else {
            out.push(Regression {
                cell: base.id.clone(),
                metric: "present",
                baseline: 1.0,
                current: 0.0,
                allowed: 1.0,
            });
            continue;
        };
        if !(base.deterministic && cur.deterministic) {
            continue;
        }
        if cur.ops != base.ops {
            out.push(Regression {
                cell: base.id.clone(),
                metric: "ops",
                baseline: base.ops as f64,
                current: cur.ops as f64,
                allowed: base.ops as f64,
            });
            continue;
        }
        // Completed ops may not drop at all: losing an op is a
        // correctness event, not a perf wobble.
        if cur.completed < base.completed {
            out.push(Regression {
                cell: base.id.clone(),
                metric: "completed",
                baseline: base.completed as f64,
                current: cur.completed as f64,
                allowed: base.completed as f64,
            });
        }
        let mut check = |metric: &'static str, curv: f64, basev: f64, higher_is_worse: bool| {
            let allowed = if higher_is_worse {
                basev * (1.0 + gate.rel) + gate.abs
            } else {
                (basev * (1.0 - gate.rel) - gate.abs).max(0.0)
            };
            let bad = if higher_is_worse {
                curv > allowed
            } else {
                curv < allowed
            };
            if bad {
                out.push(Regression {
                    cell: base.id.clone(),
                    metric,
                    baseline: basev,
                    current: curv,
                    allowed,
                });
            }
        };
        check(
            "throughput_kops",
            cur.throughput_kops,
            base.throughput_kops,
            false,
        );
        check("lat_mean", cur.lat_mean, base.lat_mean, true);
        check("lat_p50", cur.lat_p50 as f64, base.lat_p50 as f64, true);
        check("lat_p95", cur.lat_p95 as f64, base.lat_p95 as f64, true);
        check("lat_p99", cur.lat_p99 as f64, base.lat_p99 as f64, true);
        check("hops_mean", cur.hops_mean, base.hops_mean, true);
        check("msgs_per_op", cur.msgs_per_op, base.msgs_per_op, true);
        // The reclamation bound: node copies live at quiesce may not grow
        // past tolerance (retired leaves must actually free their slots),
        // and merge commits may not quietly stop happening.
        check(
            "live_nodes",
            cur.live_nodes as f64,
            base.live_nodes as f64,
            true,
        );
        check("merges", cur.merges as f64, base.merges as f64, false);
        // `events_per_sec` is wall-clock and deliberately ungated.
        check(
            "events_total",
            cur.events_total as f64,
            base.events_total as f64,
            true,
        );
    }
    out
}
