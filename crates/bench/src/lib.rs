//! Shared harness for the experiment binaries (`src/bin/e*.rs`) and the
//! Criterion benches.
//!
//! Each experiment binary regenerates one figure or quantitative claim from
//! the paper; see `EXPERIMENTS.md` at the repository root for the mapping
//! and recorded results.

#![warn(missing_docs)]

pub mod reclaim;
pub mod report;
pub mod suite;

use std::collections::BTreeSet;

use dbtree::{
    BuildSpec, ClientOp, DbCluster, DbSubmission, DriverStats, Intent, Key, ScanSpec, TreeConfig,
};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, Op, OpKind, WorkloadGen};

/// Entries a generated scan asks for (small: scans ride along in mixed
/// workloads to exercise the leaf-chain walk, not to dump the tree).
pub const SCAN_LIMIT: u32 = 16;

/// Convert a workload op into a driver op. Scans are a different submission
/// type — route mixed workloads through [`to_submission`] instead.
pub fn to_client(op: &Op) -> ClientOp {
    ClientOp {
        origin: ProcId(op.origin),
        key: op.key,
        intent: match op.kind {
            OpKind::Search => Intent::Search,
            OpKind::Insert => Intent::Insert(op.value),
            OpKind::Delete => Intent::Delete,
            OpKind::Scan => unreachable!("scan ops go through to_submission"),
        },
    }
}

/// Convert a workload op into a mixed-workload submission (point ops and
/// range scans both).
pub fn to_submission(op: &Op) -> DbSubmission {
    match op.kind {
        OpKind::Scan => DbSubmission::Scan(ScanSpec {
            origin: ProcId(op.origin),
            from: op.key,
            limit: SCAN_LIMIT,
        }),
        _ => DbSubmission::Op(to_client(op)),
    }
}

/// Standard experiment setup: preloaded cluster on a jittery network.
pub fn build_cluster(cfg: TreeConfig, n_procs: u32, preload: u64, seed: u64) -> DbCluster {
    let keys: Vec<Key> = (0..preload).map(|k| k * 10).collect();
    let spec = BuildSpec::new(keys, n_procs, cfg);
    DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25))
}

/// The keys a standard preload installs.
pub fn preload_keys(preload: u64) -> BTreeSet<Key> {
    (0..preload).map(|k| k * 10).collect()
}

/// Drive a generated workload closed-loop; returns driver stats and the set
/// of keys expected to be findable afterwards.
pub fn drive(
    cluster: &mut DbCluster,
    preload: u64,
    n_ops: usize,
    mix: Mix,
    key_space: u64,
    seed: u64,
    concurrency: usize,
) -> (DriverStats, BTreeSet<Key>) {
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: key_space },
        mix,
        cluster.n_procs(),
        seed ^ 0x9E37,
    );
    let ops: Vec<ClientOp> = gen.batch(n_ops).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, concurrency);
    let mut expected = preload_keys(preload);
    for r in &stats.records {
        match r.op.intent {
            Intent::Insert(_) => {
                expected.insert(r.op.key);
            }
            Intent::Delete => {
                expected.remove(&r.op.key);
            }
            Intent::Search => {}
        }
    }
    (stats, expected)
}

/// Drive a generated mixed workload (point ops *and* scans) closed-loop;
/// scans complete through the driver's scan channel
/// ([`DbCluster::take_scans`]) and open window slots like any op.
pub fn drive_mixed(
    cluster: &mut DbCluster,
    n_ops: usize,
    mix: Mix,
    key_space: u64,
    seed: u64,
    concurrency: usize,
) -> DriverStats {
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: key_space },
        mix,
        cluster.n_procs(),
        seed ^ 0x9E37,
    );
    let items: Vec<DbSubmission> = gen.batch(n_ops).iter().map(to_submission).collect();
    cluster.run_closed_loop_mixed(&items, concurrency)
}

/// Sum a per-processor metric over the cluster.
pub fn sum_metric(cluster: &DbCluster, f: impl Fn(&dbtree::ProcMetrics) -> u64) -> u64 {
    cluster.sim.procs().map(|(_, p)| f(&p.metrics)).sum()
}

/// Format a float to 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float to 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}
