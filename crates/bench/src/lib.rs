//! Shared harness for the experiment binaries (`src/bin/e*.rs`) and the
//! Criterion benches.
//!
//! Each experiment binary regenerates one figure or quantitative claim from
//! the paper; see `EXPERIMENTS.md` at the repository root for the mapping
//! and recorded results.

#![warn(missing_docs)]

pub mod report;
pub mod suite;

use std::collections::BTreeSet;

use dbtree::{BuildSpec, ClientOp, DbCluster, DriverStats, Intent, Key, TreeConfig};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, Op, OpKind, WorkloadGen};

/// Convert a workload op into a driver op.
pub fn to_client(op: &Op) -> ClientOp {
    ClientOp {
        origin: ProcId(op.origin),
        key: op.key,
        intent: match op.kind {
            OpKind::Search => Intent::Search,
            OpKind::Insert => Intent::Insert(op.value),
        },
    }
}

/// Standard experiment setup: preloaded cluster on a jittery network.
pub fn build_cluster(cfg: TreeConfig, n_procs: u32, preload: u64, seed: u64) -> DbCluster {
    let keys: Vec<Key> = (0..preload).map(|k| k * 10).collect();
    let spec = BuildSpec::new(keys, n_procs, cfg);
    DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25))
}

/// The keys a standard preload installs.
pub fn preload_keys(preload: u64) -> BTreeSet<Key> {
    (0..preload).map(|k| k * 10).collect()
}

/// Drive a generated workload closed-loop; returns driver stats and the set
/// of keys expected to be findable afterwards.
pub fn drive(
    cluster: &mut DbCluster,
    preload: u64,
    n_ops: usize,
    mix: Mix,
    key_space: u64,
    seed: u64,
    concurrency: usize,
) -> (DriverStats, BTreeSet<Key>) {
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: key_space },
        mix,
        cluster.n_procs(),
        seed ^ 0x9E37,
    );
    let ops: Vec<ClientOp> = gen.batch(n_ops).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, concurrency);
    let mut expected = preload_keys(preload);
    for r in &stats.records {
        if let Intent::Insert(_) = r.op.intent {
            expected.insert(r.op.key);
        }
    }
    (stats, expected)
}

/// Sum a per-processor metric over the cluster.
pub fn sum_metric(cluster: &DbCluster, f: impl Fn(&dbtree::ProcMetrics) -> u64) -> u64 {
    cluster.sim.procs().map(|(_, p)| f(&p.metrics)).sum()
}

/// Format a float to 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float to 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}
