//! The E20 reclamation workloads (see `bin/e20_reclaim.rs` for the full
//! experiment narrative), as library functions so tests can replay the
//! exact `--smoke` configuration and pin its digest.
//!
//! Everything here is simulator-only and seed-fixed, so each phase row —
//! and therefore [`digest`] over the whole experiment — is bit-identical
//! across runs and across machines. A digest change means the protocol,
//! the simulator, or the workload changed behaviour, never noise; the
//! pinned-digest test turns silent drift in the reclamation path into a
//! loud diff.

use crate::{sum_metric, to_client};
use dbtree::{BuildSpec, ClientOp, DbCluster, Key, ProtocolKind, TreeConfig};
use simnet::SimConfig;
use workload::{Op, OpKind};

/// Keys per band.
pub const BAND: u64 = 48;
/// Key stride inside a band (matches the standard preload spacing).
pub const STRIDE: u64 = 10;
/// Bands in Part A's fixed wrapping domain.
pub const DOMAIN_BANDS: u64 = 4;
/// Part A laps in `--smoke` mode.
pub const SMOKE_LAPS: u64 = 3;
/// Part B phases in `--smoke` mode.
pub const SMOKE_PHASES: u64 = 6;

fn tree_cfg(merge: bool) -> TreeConfig {
    TreeConfig {
        record_history: false,
        merge_at_empty: merge,
        fanout: 4,
        ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3)
    }
}

fn band_keys(band: u64) -> impl Iterator<Item = Key> {
    (0..BAND).map(move |i| (band * BAND + i) * STRIDE)
}

fn delete_op(k: Key) -> Op {
    Op {
        kind: OpKind::Delete,
        key: k,
        value: 0,
        origin: (k / STRIDE % 6) as u32,
    }
}

fn insert_op(k: Key) -> Op {
    Op {
        kind: OpKind::Insert,
        key: k,
        value: k.wrapping_mul(31).wrapping_add(7),
        origin: (k / STRIDE % 6) as u32,
    }
}

/// Cluster-wide (leaf copies, interior copies, live slots, slab capacity).
fn census(cluster: &DbCluster) -> (usize, usize, usize, usize) {
    let mut leaves = 0;
    let mut interiors = 0;
    let mut slots = 0;
    let mut capacity = 0;
    for (_, p) in cluster.sim.procs() {
        slots += p.store.len();
        capacity += p.store.slot_capacity();
        for c in p.store.iter() {
            if c.is_leaf() {
                leaves += 1;
            } else {
                interiors += 1;
            }
        }
    }
    (leaves, interiors, slots, capacity)
}

/// One measured phase of either workload. Every field is deterministic.
pub struct Row {
    /// Cumulative client operations injected.
    pub ops_total: usize,
    /// Live leaf copies across the cluster.
    pub leaves: usize,
    /// Live interior copies across the cluster.
    pub interiors: usize,
    /// Occupied arena slots across the cluster.
    pub slots: usize,
    /// Arena slab capacity (high-water mark) across the cluster.
    pub capacity: usize,
    /// Merge-at-empty commits so far.
    pub merges: u64,
    /// Splits initiated so far.
    pub splits: u64,
}

fn measure(cluster: &DbCluster, ops_total: usize) -> Row {
    let (leaves, interiors, slots, capacity) = census(cluster);
    Row {
        ops_total,
        leaves,
        interiors,
        slots,
        capacity,
        merges: sum_metric(cluster, |m| m.merges_completed),
        splits: sum_metric(cluster, |m| m.splits_initiated),
    }
}

/// Part A: a retention window sliding over a *wrapping* fixed domain,
/// merging on. Phase `p` ingests band `p mod DOMAIN_BANDS`, expires the
/// band behind it, and re-sweeps the one behind that (the merge-retry
/// trigger). Later laps re-ingest merged-away bands, reviving skeleton
/// leaves and re-splitting into the slots the merges freed.
pub fn run_wrapping(phases: u64) -> Vec<Row> {
    let keys: Vec<Key> = band_keys(0).collect();
    let spec = BuildSpec::new(keys, 6, tree_cfg(true));
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(31, 2, 25));

    let mut rows = Vec::new();
    let mut ops_total = 0usize;
    for phase in 1..=phases {
        let ingest = phase % DOMAIN_BANDS;
        let expire = (phase + DOMAIN_BANDS - 1) % DOMAIN_BANDS;
        let sweep = (phase + DOMAIN_BANDS - 2) % DOMAIN_BANDS;
        let ops: Vec<ClientOp> = band_keys(ingest)
            .map(insert_op)
            .chain(band_keys(expire).map(delete_op))
            .chain(band_keys(sweep).map(delete_op))
            .map(|op| to_client(&op))
            .collect();
        ops_total += ops.len();
        cluster.run_closed_loop(&ops, 8);
        rows.push(measure(&cluster, ops_total));
    }
    rows
}

/// Part B: sliding-window retention churn (fresh increasing bands, expiry
/// two phases deep), merge off or on.
pub fn run_sliding(merge: bool, phases: u64) -> Vec<Row> {
    let keys: Vec<Key> = band_keys(0).collect();
    let spec = BuildSpec::new(keys, 6, tree_cfg(merge));
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(29, 2, 25));

    let mut rows = Vec::new();
    let mut ops_total = 0usize;
    for phase in 1..=phases {
        let ops: Vec<ClientOp> = band_keys(phase)
            .map(insert_op)
            .chain(band_keys(phase - 1).map(delete_op))
            .chain(band_keys(phase.saturating_sub(2)).map(delete_op))
            .map(|op| to_client(&op))
            .collect();
        ops_total += ops.len();
        cluster.run_closed_loop(&ops, 8);
        rows.push(measure(&cluster, ops_total));
    }
    rows
}

/// FNV-1a over every field of every row, labelled per part, so any change
/// anywhere in the experiment's deterministic output moves the digest.
pub fn digest(parts: &[(&str, &[Row])]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (label, rows) in parts {
        fold(label.as_bytes());
        for r in *rows {
            for v in [
                r.ops_total as u64,
                r.leaves as u64,
                r.interiors as u64,
                r.slots as u64,
                r.capacity as u64,
                r.merges,
                r.splits,
            ] {
                fold(&v.to_le_bytes());
            }
        }
    }
    h
}

/// Replay exactly what `e20_reclaim --smoke` runs and digest it.
pub fn smoke_digest() -> u64 {
    let wrap = run_wrapping(SMOKE_LAPS * DOMAIN_BANDS);
    let off = run_sliding(false, SMOKE_PHASES);
    let on = run_sliding(true, SMOKE_PHASES);
    digest(&[("wrap", &wrap), ("off", &off), ("on", &on)])
}
