//! E13 — fault tolerance: lazy updates over a network that actually fails.
//!
//! The paper assumes exactly-once FIFO channels and reliable processors
//! (§4), noting that the queue managers are "stable" (§1.1) so the
//! structure survives crashes. This experiment measures what it costs to
//! *earn* those assumptions:
//!
//! 1. **Drop sweep** — the same insert workload over networks losing
//!    0%–20% of messages (plus 5% duplication). The reliable-delivery
//!    session layer retransmits and deduplicates until every operation
//!    completes and every copy converges; the price is retransmissions and
//!    latency, never correctness.
//! 2. **Without the session layer** — the same lossy network with raw
//!    channels: operations hang and updates are silently lost, the Fig 4
//!    failure mode writ large.
//! 3. **Crash/recovery** — a processor crashes mid-storm and restarts; its
//!    volatile interior copies are re-acquired through the §4.3 join
//!    protocol and the tree ends converged.
//!
//! Deterministic: every table is a pure function of the seeds below.

use bench::report::{note, section, Table};
use bench::{f1, f2};
use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, TreeConfig};
use simnet::{CrashEvent, FaultPlan, ProcId, SessionConfig, SessionStats, SimConfig, SimTime};

const N_PROCS: u32 = 4;
const N_OPS: u64 = 300;
const SEED: u64 = 13;

fn spec() -> BuildSpec {
    BuildSpec::new(
        (0..100).map(|k| k * 20).collect(),
        N_PROCS,
        TreeConfig::default(),
    )
}

fn sim_cfg(faults: FaultPlan) -> SimConfig {
    SimConfig {
        faults,
        ..SimConfig::jittery(SEED, 2, 20)
    }
}

fn workload(avoid: Option<ProcId>) -> Vec<ClientOp> {
    let origins: Vec<ProcId> = (0..N_PROCS)
        .map(ProcId)
        .filter(|p| Some(*p) != avoid)
        .collect();
    (0..N_OPS)
        .map(|i| ClientOp {
            origin: origins[i as usize % origins.len()],
            key: 7 * i + 3,
            intent: Intent::Insert(i),
        })
        .collect()
}

fn session_totals(cluster: &DbCluster) -> SessionStats {
    let mut total = SessionStats::default();
    for (_, p) in cluster.sim.procs() {
        total.merge(p.session_stats());
    }
    total
}

fn drop_sweep() {
    let mut table = Table::new(&[
        "drop rate",
        "dup rate",
        "lost+duped",
        "retransmits",
        "dups suppressed",
        "mean latency",
        "p99",
        "violations",
    ]);
    for drop_pct in [0u32, 5, 10, 15, 20] {
        let plan = FaultPlan::lossy(drop_pct as f64 / 100.0).with_dup(0.05);
        let mut cluster = DbCluster::build(&spec(), sim_cfg(plan));
        let ops = workload(None);
        let stats = cluster.run_closed_loop(&ops, 3);
        assert_eq!(stats.records.len(), ops.len(), "an op never completed");

        let mut expected = bench::preload_keys(0);
        expected.extend((0..100).map(|k| k * 20));
        for r in &stats.records {
            expected.insert(r.op.key);
        }
        let violations = checker::check_all(&mut cluster, &expected);

        let faults = *cluster.sim.stats().faults();
        let session = session_totals(&cluster);
        table.row(&[
            format!("{drop_pct}%"),
            "5%".to_string(),
            format!("{}+{}", faults.total_lost(), faults.duplicated),
            session.retransmissions.to_string(),
            session.dup_suppressed.to_string(),
            f1(stats.mean_latency()),
            stats.latency_quantile(0.99).to_string(),
            violations.len().to_string(),
        ]);
    }
    table.print();
    note("every run completes all 300 inserts with zero violations; the drop rate");
    note("buys latency (retransmission round-trips), never correctness");
}

fn without_session() {
    let mut table = Table::new(&["drop rate", "completed of 300", "history violations"]);
    for drop_pct in [5u32, 15] {
        let plan = FaultPlan::lossy(drop_pct as f64 / 100.0);
        // Explicitly disable the session layer: raw lossy channels.
        let mut cluster =
            DbCluster::build_with_session(&spec(), sim_cfg(plan), SessionConfig::default());
        let ops = workload(None);
        // Open-loop: a closed loop would stall on the first lost reply.
        for op in &ops {
            cluster.submit(*op);
        }
        let records = cluster.run_to_quiescence();
        let violations = cluster.log().lock().check().len();
        table.row(&[
            format!("{drop_pct}%"),
            format!("{}", records.len()),
            violations.to_string(),
        ]);
    }
    table.print();
    note("raw channels: operations vanish mid-descent and relays are lost —");
    note("the history checker catches the damage the session layer prevents");
}

fn crash_recovery() {
    let crashed = ProcId(2);
    let crash_at = 300u64;
    let mut table = Table::new(&[
        "restart at",
        "recoveries",
        "rejoins",
        "retransmits",
        "makespan",
        "violations",
    ]);
    for restart_at in [600u64, 1_200, 2_400] {
        let plan = FaultPlan::lossy(0.02).with_crash(CrashEvent {
            proc: crashed,
            at: SimTime(crash_at),
            restart_at: Some(SimTime(restart_at)),
        });
        let mut cluster = DbCluster::build(&spec(), sim_cfg(plan));
        let ops = workload(Some(crashed));
        let stats = cluster.run_closed_loop(&ops, 3);
        assert_eq!(stats.records.len(), ops.len(), "an op never completed");

        let mut expected: std::collections::BTreeSet<u64> = (0..100).map(|k| k * 20).collect();
        for r in &stats.records {
            expected.insert(r.op.key);
        }
        let violations = checker::check_all(&mut cluster, &expected);
        let recoveries = bench::sum_metric(&cluster, |m| m.recoveries);
        let rejoins = bench::sum_metric(&cluster, |m| m.recovery_rejoins);
        let session = session_totals(&cluster);
        table.row(&[
            format!("t={restart_at}"),
            recoveries.to_string(),
            rejoins.to_string(),
            session.retransmissions.to_string(),
            stats.makespan.to_string(),
            violations.len().to_string(),
        ]);
    }
    table.print();
    note("the restarted processor drops its volatile interior copies and rejoins");
    note("each one through the §4.3 version-numbered join protocol; peers' session");
    note("endpoints retransmit everything it missed, and the tree ends converged");
}

fn zero_overhead() {
    // The fault machinery must cost nothing when unused: a FaultPlan::none()
    // run is message-for-message identical to the pre-fault simulator.
    let run = |faults: FaultPlan| {
        let mut cluster = DbCluster::build(&spec(), sim_cfg(faults));
        let ops = workload(None);
        let stats = cluster.run_closed_loop(&ops, 3);
        (
            cluster.sim.events_delivered(),
            cluster.sim.stats().total_messages(),
            f2(stats.mean_latency()),
        )
    };
    let (events, msgs, lat) = run(FaultPlan::none());
    let (events2, msgs2, lat2) = run(FaultPlan::none());
    assert_eq!((events, msgs, &lat), (events2, msgs2, &lat2));
    note(&format!(
        "fault-free baseline: {events} deliveries, {msgs} messages, mean latency {lat} \
         (session layer pass-through, zero overhead)"
    ));
}

fn main() {
    section(
        "E13",
        "fault tolerance — earning the paper's network assumptions (§1.1, §4, §4.3)",
    );
    drop_sweep();
    without_session();
    crash_recovery();
    zero_overhead();
}
