//! E17 — critical-path anatomy of the slow-replica scenario (E12 revisited).
//!
//! E12 showed *that* a degraded replica slows every operation under
//! available-copies locking but none under semisync relays. The
//! critical-path profiler shows *where the time goes*: we degrade one of
//! four processors' node manager (20× service time — a slow CPU, not a
//! slow link), drive inserts from the three healthy processors, and
//! decompose each op's latency into queueing / transit / service / stall.
//!
//! The paper's claim, refined: the straggler hurts through **queueing** —
//! messages pile up behind its busy node manager — not through transit.
//! Under semisync the straggler's queueing is *off the critical path*
//! (relays to it are fire-and-forget); under available-copies every
//! write's lock round trips through the straggler, putting that queue on
//! every op's path.
//!
//! This binary is deliberately two-phase: phase 1 runs the cells and
//! writes `target/e17/BENCH.json` + folded stacks; phase 2 **re-reads
//! only those artifacts** and derives every number it prints from them —
//! demonstrating that the exports carry the full analysis.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use bench::report::{note, section, Table};
use bench::suite::{
    run_cell, BenchReport, CellSpec, DriveMode, Network, Proto, RuntimeKind, Structure,
};
use bench::{f1, f2};
use simnet::ProcId;
use workload::Mix;

const SLOW: ProcId = ProcId(3);

fn cell(id: &'static str, protocol: Proto) -> CellSpec {
    CellSpec {
        id,
        structure: Structure::Blink,
        runtime: RuntimeKind::Sim,
        drive: DriveMode::Closed(6),
        network: Network::Clean,
        protocol,
        ops: 600,
        seed: 12,
        n_procs: 4,
        preload: 100,
        copies: 4,
        service_time: 4,
        service_override: Some((SLOW, 80)),
        // Healthy processors only submit; P3 is the degraded replica.
        origins: 3,
        mix: Mix::INSERT_ONLY,
        key_space: 20_000,
        merge: false,
        fanout: 8,
        profile: true,
    }
}

/// Sum folded-stack weights by their leading frame's processor
/// (`"P2;deliver;relay 37"` → P2 += 37).
fn weight_by_proc(folded: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in folded.lines() {
        let Some((stack, w)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(w) = w.parse::<u64>() else { continue };
        let proc = stack.split(';').next().unwrap_or("?").to_string();
        *out.entry(proc).or_insert(0) += w;
    }
    out
}

fn main() {
    section(
        "E17",
        "critical-path anatomy of a degraded replica — queueing, not transit (§1)",
    );
    let dir = Path::new("target/e17");
    fs::create_dir_all(dir).expect("create target/e17");

    // Phase 1: run the cells, write the artifacts, drop everything else.
    let mut report = BenchReport::default();
    for spec in [
        cell("e17-semisync-degraded", Proto::SemiSync),
        cell("e17-availablecopies-degraded", Proto::AvailableCopies),
    ] {
        eprintln!("running {} ...", spec.id);
        let out = run_cell(&spec);
        fs::write(
            dir.join(format!("{}.paths.folded", spec.id)),
            &out.folded_paths,
        )
        .expect("write paths.folded");
        fs::write(
            dir.join(format!("{}.waits.folded", spec.id)),
            &out.folded_waits,
        )
        .expect("write waits.folded");
        report.cells.push(out.result);
    }
    fs::write(dir.join("BENCH.json"), report.to_json()).expect("write BENCH.json");

    // Phase 2: the analysis consumes only the written artifacts.
    let report =
        BenchReport::parse(&fs::read_to_string(dir.join("BENCH.json")).expect("read BENCH.json"))
            .expect("parse BENCH.json");

    let mut table = Table::new(&[
        "protocol",
        "lat mean",
        "p99",
        "queueing",
        "transit",
        "service",
        "stall",
        "off-path acts/op",
    ]);
    for c in &report.cells {
        table.row(&[
            c.protocol.clone(),
            f1(c.lat_mean),
            c.lat_p99.to_string(),
            f2(c.seg_queueing),
            f2(c.seg_transit),
            f2(c.seg_service),
            f2(c.seg_stall),
            f2(c.offpath_per_op),
        ]);
    }
    table.print();

    // Where does the queueing happen? The waits export attributes every
    // queued tick to the processor whose node manager was busy.
    let mut table = Table::new(&["cell", "proc", "queued ticks", "share"]);
    for c in &report.cells {
        let folded = fs::read_to_string(dir.join(format!("{}.waits.folded", c.id)))
            .expect("read waits.folded");
        let by_proc = weight_by_proc(&folded);
        let total: u64 = by_proc.values().sum::<u64>().max(1);
        for (proc, w) in &by_proc {
            table.row(&[
                c.id.clone(),
                proc.clone(),
                w.to_string(),
                format!("{:.0}%", 100.0 * *w as f64 / total as f64),
            ]);
        }
        let slow_share = *by_proc.get("P3").unwrap_or(&0) as f64 / total as f64;
        assert!(
            slow_share > 0.5,
            "{}: the degraded processor should dominate queueing (got {:.0}%)",
            c.id,
            100.0 * slow_share
        );
    }
    table.print();

    let semi = &report.cells[0];
    let avail = &report.cells[1];
    assert!(
        avail.lat_mean > semi.lat_mean,
        "available-copies must import the straggler's latency"
    );
    note("both protocols queue almost exclusively at P3 (the degraded node manager) —");
    note("but semisync keeps that queue OFF the critical path (relays are fire-and-forget,");
    note("visible as off-path actions), while available-copies' lock round trip puts P3's");
    note("queue on every insert's path: queueing — not transit — is what a slow replica costs");
}
