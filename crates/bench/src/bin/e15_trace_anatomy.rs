//! E15 — causal op anatomy: where does an operation's latency go?
//!
//! The observability layer stamps every runtime event with the span of the
//! operation it is causally attributable to, and the JSONL export is the
//! only input this experiment consumes — proving an injected operation is
//! reconstructible end-to-end from the trace alone.
//!
//! A replicated tree is driven closed-loop under jittery latency *with the
//! service-time model on*, so operations genuinely queue behind busy node
//! managers. The trace then decomposes each op's latency into:
//!
//! * **queueing** — ticks the op's own navigation hops spent waiting for a
//!   busy node manager (the `wait` field on on-path deliveries),
//! * **transit** — the remainder: link latency between hops,
//!
//! and separates the op's **off-path** work — relays, split rounds, copy
//! installs attributed to its span — which executes *after* the reply left
//! (the paper's lazy-update claim, visible per operation).
//!
//! The slowest operations are printed hop by hop, with the protocol-counter
//! deltas each hop caused (link chases and relays made visible per-hop).

use std::collections::BTreeMap;

use bench::report::{note, section, Table};
use bench::{f1, to_client};
use dbtree::{BuildSpec, ClientOp, DbCluster, ProtocolKind, TreeConfig};
use simnet::{SimConfig, SimTime};
use workload::{KeyDist, Mix, WorkloadGen};

const N_PROCS: u32 = 4;
const SERVICE_TIME: u64 = 4;
const SAMPLE_INTERVAL: u64 = 250;

/// One trace record, re-parsed from its JSONL line (the export is
/// hand-rolled, so the consumer is too).
struct Rec {
    at: u64,
    from: i64,
    to: i64,
    event: String,
    kind: String,
    span: Option<u64>,
    wait: u64,
    deltas: Vec<(String, u64)>,
}

fn field<'a>(line: &'a str, name: &str) -> &'a str {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag).expect("field present") + tag.len();
    let rest = &line[start..];
    if let Some(r) = rest.strip_prefix('"') {
        &r[..r.find('"').expect("closing quote")]
    } else {
        let end = rest.find([',', '}']).expect("value terminator");
        &rest[..end]
    }
}

fn parse(line: &str) -> Rec {
    let span = match field(line, "span") {
        "null" => None,
        s => Some(s.parse().expect("span")),
    };
    // The deltas object is the final field: `"deltas":{"name":n,...}}`.
    let deltas_src = &line[line.find("\"deltas\":{").expect("deltas") + 10..];
    let deltas = deltas_src
        .trim_end_matches(['}'])
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|pair| {
            let (name, v) = pair.split_once(':').expect("name:value");
            (
                name.trim_matches('"').to_string(),
                v.parse().expect("delta value"),
            )
        })
        .collect();
    Rec {
        at: field(line, "at").parse().expect("at"),
        from: field(line, "from").parse().expect("from"),
        to: field(line, "to").parse().expect("to"),
        event: field(line, "event").to_string(),
        kind: field(line, "kind").to_string(),
        span,
        wait: field(line, "wait").parse().expect("wait"),
        deltas,
    }
}

/// Message kinds on an operation's critical path: the request injection and
/// the navigation hops that carry it to its reply. Everything else a span
/// owns (relays, split rounds, installs) is off-path fan-out.
const ON_PATH: &[&str] = &["client", "descend", "scan"];

struct Anatomy {
    latency: u64,
    /// Ticks on-path deliveries waited for a busy node manager.
    queueing: u64,
    /// Executed on-path actions (hops).
    hops: u64,
    /// Executed off-path actions attributed to the span.
    off_path: u64,
    /// Ticks the off-path actions spent queued (never on the op's clock).
    off_queueing: u64,
    chases: u64,
    relays: u64,
}

fn anatomy(chain: &[&Rec], latency: u64) -> Anatomy {
    let actions: Vec<&&Rec> = chain.iter().filter(|r| r.event == "deliver").collect();
    let delta_sum = |name: &str| {
        actions
            .iter()
            .flat_map(|r| &r.deltas)
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v)
            .sum()
    };
    let chases = delta_sum("link_chases");
    let relays = delta_sum("relays_applied");
    let (on, off): (Vec<&&Rec>, Vec<&&Rec>) = actions
        .into_iter()
        .partition(|r| ON_PATH.contains(&r.kind.as_str()));
    Anatomy {
        latency,
        queueing: on.iter().map(|r| r.wait).sum(),
        hops: on.len() as u64,
        off_path: off.len() as u64,
        off_queueing: off.iter().map(|r| r.wait).sum(),
        chases,
        relays,
    }
}

fn main() {
    section(
        "E15",
        "trace anatomy — per-op hop chains and latency decomposition from the JSONL export",
    );

    let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3);
    let spec = BuildSpec::new((0..100).map(|k| k * 10).collect(), N_PROCS, cfg);
    let sim_cfg = SimConfig {
        trace_capacity: 1 << 20,
        sample_interval: SAMPLE_INTERVAL,
        service_time: SERVICE_TIME,
        ..SimConfig::jittery(15, 2, 25)
    };
    let mut cluster = DbCluster::build(&spec, sim_cfg);

    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 4000 },
        Mix {
            search_fraction: 0.5,
            ..Mix::INSERT_ONLY
        },
        N_PROCS,
        15,
    );
    let ops: Vec<ClientOp> = gen.batch(400).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, 4);
    let obs = cluster.take_obs();

    // Everything below reads only the exports.
    let trace_jsonl = obs.trace_jsonl();
    let series_jsonl = obs.series_jsonl();
    let recs: Vec<Rec> = trace_jsonl.lines().map(parse).collect();
    let mut by_span: BTreeMap<u64, Vec<&Rec>> = BTreeMap::new();
    for r in &recs {
        if let Some(sp) = r.span {
            by_span.entry(sp).or_default().push(r);
        }
    }
    note(&format!(
        "trace: {} records ({} spans); series: {} samples",
        recs.len(),
        by_span.len(),
        series_jsonl.lines().count()
    ));

    // Latency per span from the driver's completion records.
    let latency_of: BTreeMap<u64, u64> = stats
        .records
        .iter()
        .map(|r| (r.outcome.op.0, r.latency()))
        .collect();

    // Aggregate decomposition over every completed op.
    let mut total = Anatomy {
        latency: 0,
        queueing: 0,
        hops: 0,
        off_path: 0,
        off_queueing: 0,
        chases: 0,
        relays: 0,
    };
    for (span, latency) in &latency_of {
        let Some(chain) = by_span.get(span) else {
            continue;
        };
        let a = anatomy(chain, *latency);
        total.latency += a.latency;
        total.queueing += a.queueing;
        total.hops += a.hops;
        total.off_path += a.off_path;
        total.off_queueing += a.off_queueing;
        total.chases += a.chases;
        total.relays += a.relays;
    }
    let n = latency_of.len() as f64;
    let pct = |x: u64| format!("{:.0}%", 100.0 * x as f64 / total.latency as f64);
    let mut table = Table::new(&["phase", "ticks/op", "share of latency"]);
    table.row(&[
        "queueing (wait for node manager)".to_string(),
        f1(total.queueing as f64 / n),
        pct(total.queueing),
    ]);
    table.row(&[
        "transit (link latency between hops)".to_string(),
        f1(total.latency.saturating_sub(total.queueing) as f64 / n),
        pct(total.latency - total.queueing.min(total.latency)),
    ]);
    table.row(&[
        "total (mean latency)".to_string(),
        f1(stats.mean_latency()),
        "100%".to_string(),
    ]);
    table.print();
    note(&format!(
        "per op: {:.1} on-path hops ({:.0} ticks of server occupancy), {:.2} link chases",
        total.hops as f64 / n,
        total.hops as f64 * SERVICE_TIME as f64 / n,
        total.chases as f64 / n,
    ));
    note(&format!(
        "off the critical path: {:.1} actions/op ({:.2} relays applied), {:.1} queued \
         ticks/op that never touched the op's latency",
        total.off_path as f64 / n,
        total.relays as f64 / n,
        total.off_queueing as f64 / n,
    ));
    let h = stats.latency_histogram();
    note(&format!(
        "latency histogram: p50<={} p90<={} p99<={} max={}",
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.max()
    ));

    // Hop-chain anatomy of the slowest operations.
    let mut slowest: Vec<(&u64, &u64)> = latency_of.iter().collect();
    slowest.sort_by_key(|(_, l)| std::cmp::Reverse(**l));
    for (span, latency) in slowest.into_iter().take(2) {
        let chain = &by_span[span];
        let a = anatomy(chain, *latency);
        let submitted = SimTime(chain.first().map_or(0, |r| r.at));
        println!(
            "\nslowest op: span {span}, latency {latency} \
             (queueing {}, transit {})",
            a.queueing,
            latency.saturating_sub(a.queueing)
        );
        for r in chain.iter() {
            let deltas = if r.deltas.is_empty() {
                String::new()
            } else {
                format!(
                    "  [{}]",
                    r.deltas
                        .iter()
                        .map(|(n, v)| format!("{n}+{v}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            };
            println!(
                "  +{:<5} {:<9} {:>2} -> {:<2} {:<20} wait={}{}",
                r.at - submitted.ticks(),
                r.event,
                r.from,
                r.to,
                r.kind,
                r.wait,
                deltas
            );
        }
    }
    note("every line above was reconstructed from the JSONL trace export alone");
}
