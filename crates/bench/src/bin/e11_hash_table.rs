//! E11 — §5: lazy updates generalize to other search structures.
//!
//! The paper's conclusion: "We will apply lazy updates to other distributed
//! data structures, such as hash tables \[5\]." This experiment runs the
//! `dhash` crate's distributed extendible hash table — replicated
//! directories maintained by lazy patches, buckets recovering stale routes
//! through split-image links — and compares the lazy protocol against a
//! synchronous ack-barrier baseline and the link-less naive variant.

use bench::report::{note, section, Table};
use bench::{f1, f2};
use dhash::{check_hash_cluster, DirProtocol, HKind, HashCluster, HashConfig, HashSpec};
use simnet::{ProcId, SimConfig};
use std::collections::BTreeMap;

fn main() {
    section(
        "E11",
        "lazy updates on a distributed extendible hash table (§5)",
    );
    let mut table = Table::new(&[
        "protocol",
        "splits",
        "dir msgs/split",
        "blocked ops",
        "recoveries",
        "ops dropped",
        "mean latency",
        "violations",
    ]);

    let n_procs = 8u32;
    let n_ops = 3000u64;
    for protocol in [
        DirProtocol::Lazy,
        DirProtocol::Sync,
        DirProtocol::NaiveNoLinks,
    ] {
        let spec = HashSpec {
            preload: (0..100).map(|k| k * 7).collect(),
            n_procs,
            cfg: HashConfig {
                capacity: 8,
                protocol,
                spread_images: true,
                record_history: true,
            },
        };
        let mut cluster = HashCluster::build(&spec, SimConfig::jittery(17, 2, 30));
        let mut expected: BTreeMap<u64, u64> = (0..100).map(|k| (k * 7, k * 7)).collect();
        for i in 0..n_ops {
            let key = 100_000 + i;
            cluster.submit(ProcId((i % n_procs as u64) as u32), key, HKind::Insert(key));
            expected.insert(key, key);
        }
        let stats = cluster.run_to_quiescence();

        let splits: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.splits).sum();
        let blocked: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.blocked).sum();
        let dir_msgs = cluster
            .sim
            .stats()
            .remote_matching(|k| k.starts_with("dir."));
        let violations = if protocol == DirProtocol::NaiveNoLinks {
            // The naive variant is *supposed* to fail; count without
            // asserting.
            check_hash_cluster(&mut cluster, &expected).len()
        } else {
            let v = check_hash_cluster(&mut cluster, &expected);
            assert!(v.is_empty(), "{protocol:?}: {v:?}");
            0
        };
        table.row(&[
            protocol.label().to_string(),
            splits.to_string(),
            f2(dir_msgs as f64 / splits.max(1) as f64),
            blocked.to_string(),
            stats.recoveries().to_string(),
            stats.lost().to_string(),
            f1(stats.mean_latency()),
            violations.to_string(),
        ]);
    }
    table.print();
    note("lazy: P-1 patch messages per split, zero blocking, stale routes recovered via links;");
    note(
        "sync: 2(P-1) messages + ops stalled behind the ack barrier; naive (no links): ops lost —",
    );
    note("the same trichotomy the dB-tree exhibits, confirming the §3 theory generalizes");
}
