//! E7 — §1: "if the root node is not replicated, it becomes a bottleneck".
//!
//! Closed-loop search-heavy workload while sweeping the processor count.
//! With an unreplicated tree (every node, root included, on one processor
//! each) all descents start at the single root copy and throughput stops
//! scaling; with path replication every processor starts operations at its
//! local root copy. We also report the busiest processor's share of message
//! traffic — near 1/P when balanced, near 100% at a bottleneck.

use bench::report::{note, section, Table};
use bench::{drive, f1, f2};
use dbtree::{Placement, TreeConfig};
use workload::Mix;

fn main() {
    section(
        "E7",
        "root bottleneck — throughput vs processors, replicated root or not",
    );
    let mut table = Table::new(&[
        "procs",
        "placement",
        "ops/kilotick",
        "speedup vs P=1",
        "mean latency",
        "hottest proc traffic %",
    ]);

    for (label, placement) in [
        ("unreplicated", Placement::Uniform { copies: 1 }),
        ("path-replicated", Placement::PathReplication),
    ] {
        let mut base = None;
        for &procs in &[1u32, 2, 4, 8, 16] {
            let cfg = TreeConfig {
                placement,
                record_history: false,
                ..Default::default()
            };
            // Service-time model on: each processor is a single node
            // manager executing one action at a time (the paper's model),
            // so a hot root processor genuinely saturates.
            let keys: Vec<u64> = (0..2000).map(|k| k * 10).collect();
            let spec = dbtree::BuildSpec::new(keys, procs, cfg);
            let mut sim_cfg = simnet::SimConfig::jittery(11, 2, 25);
            sim_cfg.service_time = 3;
            let mut cluster = dbtree::DbCluster::build(&spec, sim_cfg);
            let (stats, _) = drive(&mut cluster, 2000, 3000, Mix::READ_HEAVY, 20_000, 11, 4);
            let tput = stats.throughput_per_kilotick();
            let base_tput = *base.get_or_insert(tput);
            let recv = cluster.sim.stats().per_proc_received();
            let total: u64 = recv.iter().sum();
            let hottest = recv.iter().max().copied().unwrap_or(0);
            table.row(&[
                procs.to_string(),
                label.to_string(),
                f1(tput),
                f2(tput / base_tput),
                f1(stats.mean_latency()),
                f1(100.0 * hottest as f64 / total.max(1) as f64),
            ]);
        }
    }
    table.print();
    note("unreplicated: the root's processor absorbs most traffic and speedup flattens;");
    note("path replication keeps the hottest processor near 1/P and scales with P (§1, Fig 2)");
}
