//! E9 — lazy updates vs the vigorous available-copies baseline \[2\].
//!
//! Sweeps the replication factor under insert-heavy and read-heavy mixes,
//! comparing remote messages per operation, latency, and how many actions
//! had to wait behind locks — the synchronization the paper's lazy updates
//! eliminate. Reads never wait under semisync; under available-copies they
//! queue behind every write-all lock.

use bench::report::{note, section, Table};
use bench::{build_cluster, drive, f1, f2};
use dbtree::{ProtocolKind, TreeConfig};
use workload::Mix;

fn main() {
    section("E9", "lazy (semisync) vs vigorous (available-copies)");
    let mut table = Table::new(&[
        "mix",
        "copies",
        "protocol",
        "remote msgs/op",
        "mean latency",
        "p99 latency",
        "actions queued behind locks",
        "blocked ticks",
    ]);

    for (mix_label, mix) in [
        (
            "insert-heavy",
            Mix {
                search_fraction: 0.2,
                ..Mix::INSERT_ONLY
            },
        ),
        (
            "read-heavy",
            Mix {
                search_fraction: 0.9,
                ..Mix::INSERT_ONLY
            },
        ),
    ] {
        for &copies in &[2usize, 4, 8] {
            for protocol in [ProtocolKind::SemiSync, ProtocolKind::AvailableCopies] {
                let cfg = TreeConfig {
                    record_history: false,
                    ..TreeConfig::fixed_copies(protocol, copies)
                };
                let mut cluster = build_cluster(cfg, 8, 100, 31);
                let (stats, _) = drive(&mut cluster, 100, 1500, mix, 10_000, 31, 4);
                let msgs =
                    cluster.sim.stats().remote_messages() as f64 / stats.records.len() as f64;
                let queued = bench::sum_metric(&cluster, |m| m.lock_queued);
                let blocked_ticks = bench::sum_metric(&cluster, |m| m.blocked_ticks);
                table.row(&[
                    mix_label.to_string(),
                    copies.to_string(),
                    protocol.label().to_string(),
                    f2(msgs),
                    f1(stats.mean_latency()),
                    stats.latency_quantile(0.99).to_string(),
                    queued.to_string(),
                    blocked_ticks.to_string(),
                ]);
            }
        }
    }
    table.print();
    note("the gap widens with the replication factor: write-all pays 3 rounds per update and");
    note("queues concurrent reads; lazy relays cost one message per copy and never block reads");
}
