//! E6 — Fig 6: incomplete histories from concurrent joins and inserts.
//!
//! When a processor joins an interior node's replication while an insert is
//! being relayed, the insert's initial copy did not know the new member and
//! never relays to it. §4.3's fix: relays carry the sender's version, and
//! the PC re-relays to any member that joined at a later version. We run
//! migration-heavy workloads (every migration triggers joins) with the fix
//! on and off, counting §3 violations at the new copies.

use bench::report::{note, section, Table};
use bench::to_client;
use dbtree::{checker, BuildSpec, DbCluster, Placement, TreeConfig};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, OpKind, WorkloadGen};

fn run(join_version_relay: bool, seed: u64) -> (usize, usize, u64) {
    let cfg = TreeConfig {
        placement: Placement::PathReplication,
        variable_copies: true,
        join_version_relay,
        ..Default::default()
    };
    let preload: Vec<u64> = (0..200).map(|k| k * 10).collect();
    let spec = BuildSpec::new(preload.clone(), 4, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25));
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 2000 },
        Mix {
            search_fraction: 0.2,
            ..Mix::INSERT_ONLY
        },
        4,
        seed,
    );
    let mut expected: std::collections::BTreeSet<u64> = preload.into_iter().collect();
    for (i, op) in gen.batch(300).iter().enumerate() {
        cluster.submit(to_client(op));
        if op.kind == OpKind::Insert {
            expected.insert(op.key);
        }
        if i % 4 == 3 {
            // Migrate a leaf mid-traffic: the destination joins the path.
            let leaves = cluster.leaves();
            if !leaves.is_empty() {
                let (leaf, owner) = leaves[i % leaves.len()];
                cluster.migrate(leaf, owner, ProcId((owner.0 + 1) % 4));
            }
            for _ in 0..25 {
                if !cluster.sim.step() {
                    break;
                }
            }
        }
    }
    cluster.run_to_quiescence();
    cluster.record_final_digests();
    let history = cluster.log().lock().check().len();
    let diverged = checker::check_convergence(&cluster.sim).len();
    let joins = bench::sum_metric(&cluster, |m| m.joins);
    let _ = expected;
    (history, diverged, joins)
}

fn main() {
    section(
        "E6",
        "Fig 6 — concurrent joins and inserts (version-relay fix)",
    );
    let mut table = Table::new(&[
        "seed",
        "version relay",
        "joins",
        "history violations",
        "diverged nodes",
    ]);
    let mut broken = 0;
    for seed in 0..8u64 {
        for fix in [true, false] {
            let (h, d, joins) = run(fix, seed);
            if !fix {
                broken += h + d;
            }
            table.row(&[
                seed.to_string(),
                if fix { "on (paper)" } else { "off" }.to_string(),
                joins.to_string(),
                h.to_string(),
                d.to_string(),
            ]);
        }
    }
    table.print();
    note(&format!(
        "with the relay off, {broken} violations accumulated across seeds; with it on, zero —"
    ));
    note("the PC's version-numbered re-relay delivers concurrent inserts to late joiners (§4.3)");
}
