//! E20 — node reclamation under delete churn (lazy merge-at-empty).
//!
//! The merge-at-empty protocol exists so a long-running tree under
//! insert/delete churn does not leak node-manager storage: a leaf whose
//! entries are all tombstones is retired, its parent edge is stamped dead,
//! its range is absorbed by the left sibling, and its **arena slot is
//! freed and reused** by the next split. Two workloads probe the claim
//! from both sides (the workloads themselves live in [`bench::reclaim`] so
//! the deterministic row output can be digest-pinned by tests).
//!
//! **Part A — wrapping churn, the boundedness claim.** A retention window
//! slides over a *fixed* domain of four key bands, wrapping around: each
//! phase ingests one band, expires the band behind it, and re-sweeps the
//! one behind that (merging is opportunistic — a request that loses a race
//! is only re-armed by the next tombstone write). Expired bands merge away;
//! on the next lap their keys are re-ingested into the surviving skeleton
//! leaves, which revive past the fanout and re-split into the freed slots.
//! The binary asserts that across many laps the cluster-wide live-slot
//! count and the slab high-water mark plateau (within 2x of the lap-1
//! level) while cumulative ops keep growing and merges/splits continue
//! past lap one: reclamation is real and the arena reuses freed slots.
//!
//! **Part B — sliding-window churn, the contrast.** The retention pattern
//! (time-series ingest with expiry): phase `p` inserts a band of fresh
//! increasing keys and expires band `p − 1`. With merging off every
//! drained leaf persists; with merging on each drained band collapses to
//! the interior *skeleton* — leaf merges stop at the leftmost live edge of
//! each interior node, and interior nodes are outside the merge family
//! (see DESIGN.md), so roughly one stuck leaf per interior survives. The
//! binary asserts the merged run carries at least 2× fewer leaf copies
//! than the unmerged run and reports the skeleton explicitly.

use bench::f1;
use bench::reclaim::{run_sliding, run_wrapping, Row, DOMAIN_BANDS, SMOKE_LAPS, SMOKE_PHASES};
use bench::report::{note, section, Table};

fn print_rows(label: &str, unit: &str, rows: &[Row]) {
    let mut t = Table::new(&[
        unit,
        "ops",
        "leaves",
        "interiors",
        "slots",
        "slab cap",
        "merges",
        "splits",
    ]);
    for (i, r) in rows.iter().enumerate() {
        t.row(&[
            (i + 1).to_string(),
            r.ops_total.to_string(),
            r.leaves.to_string(),
            r.interiors.to_string(),
            r.slots.to_string(),
            r.capacity.to_string(),
            r.merges.to_string(),
            r.splits.to_string(),
        ]);
    }
    note(label);
    t.print();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let laps: u64 = if smoke { SMOKE_LAPS } else { 6 };
    let phases: u64 = if smoke { SMOKE_PHASES } else { 16 };
    section(
        "E20",
        "node reclamation: merge-at-empty frees and reuses arena slots",
    );

    // -- Part A ------------------------------------------------------------
    let wrap = run_wrapping(laps * DOMAIN_BANDS);
    print_rows(
        "Part A: retention window wrapping a fixed domain (merge on)",
        "phase",
        &wrap,
    );
    // The first lap populates the domain; measure from its end onward.
    let early = &wrap[DOMAIN_BANDS as usize - 1];
    let last = wrap.last().unwrap();
    note(&format!(
        "lap 1 end -> phase {}: ops {} -> {}, slots {} -> {}, slab cap {} -> {}, \
         merges {} -> {}, splits {} -> {}",
        wrap.len(),
        early.ops_total,
        last.ops_total,
        early.slots,
        last.slots,
        early.capacity,
        last.capacity,
        early.merges,
        last.merges,
        early.splits,
        last.splits,
    ));
    // Churn never stalls: later laps keep merging and keep re-splitting the
    // revived skeleton leaves.
    assert!(
        last.merges > early.merges && last.splits > early.splits,
        "churn stalled: merges {} -> {}, splits {} -> {}",
        early.merges,
        last.merges,
        early.splits,
        last.splits
    );
    // The boundedness claim: cumulative ops grew by laps, live slots did not.
    let slot_peak = wrap.iter().map(|r| r.slots).max().unwrap();
    assert!(
        slot_peak <= early.slots * 2,
        "live slots not bounded: peak {} vs lap-1 {}",
        slot_peak,
        early.slots
    );
    // The reuse claim: the slab high-water mark plateaus even though every
    // lap's re-splits mint fresh node ids — those installs landed in slots
    // the merges freed.
    let cap_peak = wrap.iter().map(|r| r.capacity).max().unwrap();
    assert!(
        cap_peak <= early.capacity * 2,
        "slab capacity tracked cumulative installs (no slot reuse): \
         peak {} vs lap-1 {}",
        cap_peak,
        early.capacity
    );

    // -- Part B ------------------------------------------------------------
    let off = run_sliding(false, phases);
    let on = run_sliding(true, phases);
    print_rows(
        "Part B: sliding-window retention, merge off (drained leaves leak)",
        "phase",
        &off,
    );
    print_rows(
        "Part B: sliding-window retention, merge on (bands collapse to the skeleton)",
        "phase",
        &on,
    );
    let last_off = off.last().unwrap();
    let last_on = on.last().unwrap();
    note(&format!(
        "after {} ops: leaf copies {} -> {} ({}x), slab cap {} -> {}, {} merges; \
         residual = interior skeleton (leaf merges stop at each interior's \
         leftmost live edge; interior reclamation is out of scope)",
        last_on.ops_total,
        last_off.leaves,
        last_on.leaves,
        f1(last_off.leaves as f64 / last_on.leaves.max(1) as f64),
        last_off.capacity,
        last_on.capacity,
        last_on.merges,
    ));
    assert!(
        last_on.merges > 0,
        "the sliding window never committed a merge"
    );
    assert!(
        last_off.leaves >= 2 * last_on.leaves,
        "merging should at least halve the leaked leaf copies ({} vs {})",
        last_off.leaves,
        last_on.leaves
    );
    assert!(
        last_on.capacity < last_off.capacity,
        "slab capacity shows no reclamation ({} vs {})",
        last_on.capacity,
        last_off.capacity
    );
    note("reclamation holds: slots bounded under wrapping churn, leak halved+ under retention");
}
