//! E19 — cluster scale: the hot path at P = 8 … 1024.
//!
//! The paper argues the dB-tree's lazy-update design is what lets it scale:
//! path replication keeps descents local, semi-sync splits touch only a
//! node's copy set, and no operation ever involves more than a handful of
//! processors regardless of cluster size. This experiment stresses that
//! claim directly by sweeping the processor count across two orders of
//! magnitude — P ∈ {8, 64, 256, 1024} — under a Zipf-hotspot workload
//! (θ = 0.99, unscattered: hot ranks collide on the same leaves, the
//! contention adversary) with the preloaded key count growing with P, up to
//! 10⁵ keys at P = 1024.
//!
//! Reported per cell:
//! * the path-replication gradient (per-level nodes / copies / copies-per-
//!   node) — root everywhere, leaves once, interior in between — which is
//!   what keeps both storage and split fan-out bounded as P grows;
//! * msgs/op and mean hops (should stay roughly flat in P);
//! * splits, split messages, and msgs/split against the §4.1.2 claim that a
//!   semi-sync split relays to `copies − 1` peers (leaves are single-copy
//!   under path replication, so the fan-out comes from parent-level
//!   updates — the parent copies/node column is the reference);
//! * raw simulator throughput (events/sec wall) — the number the indexed
//!   event core, arena node store, and batched delivery buy.
//!
//! `--smoke` runs the same P sweep (including P = 1024) with reduced op
//! counts so the release-mode CI job stays inside its time budget.

use bench::report::{note, section, Table};
use bench::{f1, f2, to_client};
use dbtree::{
    BuildSpec, ClientOp, DbCluster, GlobalView, Key, Placement, ProtocolKind, TreeConfig,
};
use simnet::SimConfig;
use workload::{KeyDist, Mix, WorkloadGen, Zipf};

/// One point of the scale sweep.
struct Cell {
    procs: u32,
    preload: u64,
    ops: usize,
    concurrency: usize,
}

fn sweep(smoke: bool) -> Vec<Cell> {
    // Preload grows with P (≈100 keys/processor, floor 2000) so the tree
    // is genuinely distributed at every scale; the ISSUE floor is 10⁵ keys
    // at P = 1024. Op counts grow sublinearly — the measured quantities
    // (msgs/op, msgs/split, hops) are per-op rates and converge quickly.
    let full = [
        (8u32, 2_000u64, 40_000usize, 32usize),
        (64, 8_000, 60_000, 64),
        (256, 30_000, 80_000, 128),
        (1024, 100_000, 120_000, 256),
    ];
    full.iter()
        .map(|&(procs, preload, ops, concurrency)| Cell {
            procs,
            preload,
            // Smoke keeps every P (the whole point is P = 1024 in CI) but
            // cuts the drive to a tenth.
            ops: if smoke { ops / 10 } else { ops },
            concurrency,
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    section(
        "E19",
        if smoke {
            "cluster scale, P = 8..1024 (smoke)"
        } else {
            "cluster scale, P = 8..1024"
        },
    );

    let mut gradient = Table::new(&["P", "level", "nodes", "copies", "copies/node"]);
    let mut results = Table::new(&[
        "P",
        "preload",
        "ops",
        "thr (op/ktick)",
        "hops",
        "msgs/op",
        "splits",
        "msgs/split",
        "parent copies-1",
        "Mev/s",
        "wall s",
    ]);

    for cell in sweep(smoke) {
        eprintln!("running P={} ...", cell.procs);
        let cfg = TreeConfig {
            placement: Placement::PathReplication,
            protocol: ProtocolKind::SemiSync,
            record_history: false,
            ..Default::default()
        };
        let keys: Vec<Key> = (0..cell.preload).map(|k| k * 10).collect();
        let spec = BuildSpec::new(keys, cell.procs, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(19, 2, 25));

        // Per-level replication gradient before traffic, and the mean
        // copies/node one level above the leaves — the fan-out a leaf
        // split's parent update actually pays under path replication.
        let parent_fanout = {
            let view = GlobalView::new(&cluster.sim);
            let nodes = view.nodes_per_level();
            let copies = view.copies_per_level();
            for (level, n) in nodes.iter().rev() {
                let c = copies.get(level).copied().unwrap_or(0);
                gradient.row(&[
                    cell.procs.to_string(),
                    level.to_string(),
                    n.to_string(),
                    c.to_string(),
                    f2(c as f64 / (*n).max(1) as f64),
                ]);
            }
            let parent = nodes
                .get(&1)
                .map(|n| copies.get(&1).copied().unwrap_or(0) as f64 / (*n).max(1) as f64)
                .unwrap_or(1.0);
            parent - 1.0
        };

        // Zipf-hotspot drive: unscattered ranks, so the popular keys sit on
        // the same few leaves and splits concentrate where contention does.
        let mut gen = WorkloadGen::new(
            KeyDist::Zipfian {
                zipf: Zipf::new((cell.preload * 10) as usize, 0.99),
                scatter: false,
            },
            Mix {
                search_fraction: 0.5,
                ..Mix::INSERT_ONLY
            },
            cell.procs,
            0x19 ^ cell.procs as u64,
        );
        let ops: Vec<ClientOp> = gen.batch(cell.ops).iter().map(to_client).collect();

        let before = cluster.sim.stats().clone();
        let events_before = cluster.sim.events_delivered();
        let wall = std::time::Instant::now();
        let stats = cluster.run_closed_loop(&ops, cell.concurrency);
        let wall = wall.elapsed();

        let delta = cluster.sim.stats().delta_since(&before);
        let splits = bench::sum_metric(&cluster, |m| m.splits_initiated);
        let split_msgs = delta.remote_matching(|k| k.starts_with("split."));
        let events = cluster.sim.events_delivered() - events_before;
        let completed = stats.records.len();
        assert_eq!(completed, cell.ops, "closed loop lost operations");

        results.row(&[
            cell.procs.to_string(),
            cell.preload.to_string(),
            completed.to_string(),
            f2(stats.throughput_per_kilotick()),
            f2(stats.mean_hops()),
            f2(delta.total_messages() as f64 / completed.max(1) as f64),
            splits.to_string(),
            f2(split_msgs as f64 / splits.max(1) as f64),
            f2(parent_fanout),
            f2(events as f64 / wall.as_secs_f64().max(1e-9) / 1e6),
            f1(wall.as_secs_f64()),
        ]);
    }

    gradient.print();
    println!();
    results.print();
    note("path replication keeps the gradient: root everywhere, leaves once —");
    note("so msgs/op and msgs/split stay bounded while P grows 128x");
}
