//! E8 — §4.2 + \[14\]: leaf migration for data balancing, and the cost of
//! misnavigation recovery with and without forwarding addresses.
//!
//! A hotspot insert workload concentrates splits (and therefore leaves) on
//! few processors. The balancer plans greedy leaf migrations; we execute
//! them while traffic continues and report load imbalance before/after,
//! migration message cost, and the recovery ablation.

use bench::report::{note, section, Table};
use bench::{build_cluster, drive, f2, to_client};
use dbtree::balance::{imbalance, leaf_loads, plan_rebalance};
use dbtree::{Placement, TreeConfig};
use workload::{KeyDist, Mix, WorkloadGen};

fn main() {
    section("E8", "leaf data balancing via lazy migration (§4.2, [14])");
    let mut table = Table::new(&[
        "forwarding",
        "imbalance before",
        "moves",
        "imbalance after",
        "migration msgs",
        "recoveries",
        "forwards followed",
        "post-move search latency",
    ]);

    for forwarding in [false, true] {
        let cfg = TreeConfig {
            placement: Placement::Uniform { copies: 1 },
            forwarding,
            record_history: false,
            fanout: 8,
            ..Default::default()
        };
        let mut cluster = build_cluster(cfg, 8, 400, 23);
        // Hotspot inserts: everything lands in the lowest 5% of the key
        // space, splitting leaves owned by few processors.
        let mut gen = WorkloadGen::new(
            KeyDist::Hotspot {
                n: 4000,
                hot_fraction: 0.05,
                hot_prob: 0.95,
            },
            Mix::INSERT_ONLY,
            8,
            23,
        );
        let ops: Vec<_> = gen.batch(2500).iter().map(to_client).collect();
        cluster.run_closed_loop(&ops, 4);

        let before = imbalance(&leaf_loads(&cluster.sim));
        let plan = plan_rebalance(&cluster.sim, 2);
        let msgs_before = cluster.sim.stats().remote_messages();
        for m in &plan {
            cluster.migrate(m.leaf, m.from, m.to);
        }
        cluster.run_to_quiescence();
        let migration_msgs = cluster.sim.stats().remote_messages() - msgs_before;
        let after = imbalance(&leaf_loads(&cluster.sim));

        // Post-migration traffic: stale routing hints trigger recoveries.
        let (stats, _) = drive(&mut cluster, 400, 2000, Mix::SEARCH_ONLY, 4000, 29, 4);
        let recoveries = bench::sum_metric(&cluster, |m| m.missing_node_recoveries);
        let followed = bench::sum_metric(&cluster, |m| m.forwards_followed);

        table.row(&[
            forwarding.to_string(),
            f2(before),
            plan.len().to_string(),
            f2(after),
            migration_msgs.to_string(),
            recoveries.to_string(),
            followed.to_string(),
            f2(stats.mean_latency()),
        ]);
    }
    table.print();
    note(
        "balancing cuts the leaf-count imbalance by an order of magnitude at ~linear message cost;",
    );
    note(
        "forwarding addresses are a pure optimization — correctness holds with zero of them (§4.2)",
    );
}
