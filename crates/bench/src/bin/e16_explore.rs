//! E16 — schedule exploration: budget vs bugs found.
//!
//! §3's correctness argument quantifies over *all* schedules; the explorer
//! searches that space. This experiment measures the search's power on the
//! known bug (the naive protocol's lost insert, Fig 4): how big an
//! iteration budget does it take to catch the race, how small does the
//! shrinker make the repro, and — the control — does the oracle stack stay
//! silent on the correct protocol under the same budgets.

use dbtree::ProtocolKind;
use explore::{blink_scenario, explore, Budget};
use simnet::FaultPlan;

const TRIALS: u64 = 20;
const MAX_ITERS: u64 = 40;

fn main() {
    println!("E16: schedule exploration — budget vs bugs found");
    println!(
        "  naive (Fig 4) protocol, {TRIALS} workload seeds per row, budget {MAX_ITERS} schedules"
    );
    println!();
    println!("  ops  caught  mean schedules-to-catch  mean shrunk ops  mean shrunk choices");
    println!("  ---------------------------------------------------------------------------");

    for n_ops in [4usize, 8, 12, 16] {
        let mut caught = 0u64;
        let mut runs_sum = 0u64;
        let mut ops_sum = 0u64;
        let mut choices_sum = 0u64;
        for seed in 0..TRIALS {
            let scenario = blink_scenario(ProtocolKind::Naive, seed, n_ops, FaultPlan::none());
            let budget = Budget {
                iterations: MAX_ITERS,
                ..Budget::default()
            };
            let report = explore(&scenario, seed, &budget);
            if let Some(failure) = report.failures.first() {
                caught += 1;
                runs_sum += report.runs;
                ops_sum += failure.scenario.ops.len() as u64;
                choices_sum += failure.choices.len() as u64;
            }
        }
        if caught == 0 {
            println!("  {n_ops:>3}   0/{TRIALS}                        —                —                    —");
            continue;
        }
        println!(
            "  {n_ops:>3}  {caught:>2}/{TRIALS}  {:>23.1}  {:>15.1}  {:>19.1}",
            runs_sum as f64 / caught as f64,
            ops_sum as f64 / caught as f64,
            choices_sum as f64 / caught as f64,
        );
    }

    // Control: the correct protocol under the same budgets — the oracle
    // stack (structural + §3 history + sequence) must stay silent.
    let mut clean_schedules = 0u64;
    for seed in 0..5u64 {
        let scenario = blink_scenario(ProtocolKind::SemiSync, seed, 8, FaultPlan::none());
        let report = explore(
            &scenario,
            seed,
            &Budget {
                iterations: 30,
                ..Budget::default()
            },
        );
        assert!(
            report.failures.is_empty(),
            "false positive on semisync: {:?}",
            report.failures[0].violations
        );
        clean_schedules += report.runs;
    }
    println!();
    println!(
        "  control: semisync, same workloads — {clean_schedules} schedules, 0 oracle violations"
    );
}
