//! The continuous benchmark suite runner.
//!
//! Runs the pinned cell matrix (see `bench::suite::matrix`), prints a
//! summary table, writes the schema-pinned `BENCH.json`, and — with
//! `--check` — diffs the run against a committed baseline and exits
//! non-zero on any regression.
//!
//! ```text
//! benchsuite [--smoke] [--only SUBSTR] [--out PATH] [--folded DIR]
//!            [--check] [--baseline PATH] [--update-baseline PATH]
//!            [--gate-rel F] [--gate-abs F]
//! ```
//!
//! * `--smoke` — the reduced CI matrix: simulator cells only (deterministic,
//!   so tight tolerances survive noisy runners), smaller op counts.
//! * `--only SUBSTR` — run only cells whose id contains the substring
//!   (e.g. `--only scale` for the throughput cell alone).
//! * `--folded DIR` — also write per-cell folded-stack exports
//!   (`<id>.paths.folded`, `<id>.waits.folded`) for flamegraph tooling.
//! * `--check` — compare against `--baseline` (default
//!   `BENCH_BASELINE.json`); regressions print and the process exits 1.
//! * `--update-baseline PATH` — write this run as the new baseline (use
//!   after an intentional performance change, in the same commit).

use std::path::PathBuf;
use std::process::ExitCode;
use std::{env, fs};

use bench::report::{note, section, Table};
use bench::suite::{compare, matrix, run_cell, BenchReport, GateCfg};
use bench::{f1, f2};

struct Args {
    smoke: bool,
    only: Option<String>,
    out: PathBuf,
    folded: Option<PathBuf>,
    check: bool,
    baseline: PathBuf,
    update_baseline: Option<PathBuf>,
    gate: GateCfg,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        only: None,
        out: PathBuf::from("BENCH.json"),
        folded: None,
        check: false,
        baseline: PathBuf::from("BENCH_BASELINE.json"),
        update_baseline: None,
        gate: GateCfg::default(),
    };
    let mut it = env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--only" => args.only = Some(val("--only")),
            "--check" => args.check = true,
            "--out" => args.out = PathBuf::from(val("--out")),
            "--folded" => args.folded = Some(PathBuf::from(val("--folded"))),
            "--baseline" => args.baseline = PathBuf::from(val("--baseline")),
            "--update-baseline" => {
                args.update_baseline = Some(PathBuf::from(val("--update-baseline")))
            }
            "--gate-rel" => args.gate.rel = val("--gate-rel").parse().expect("--gate-rel"),
            "--gate-abs" => args.gate.abs = val("--gate-abs").parse().expect("--gate-abs"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut specs = matrix(args.smoke);
    if let Some(only) = &args.only {
        specs.retain(|s| s.id.contains(only.as_str()));
        assert!(!specs.is_empty(), "--only {only:?} matched no cell");
    }
    section(
        "BENCH",
        if args.smoke {
            "continuous benchmark suite (smoke matrix)"
        } else {
            "continuous benchmark suite (full matrix)"
        },
    );

    let mut report = BenchReport::default();
    let mut table = Table::new(&[
        "cell",
        "ops",
        "thr (op/ktick)",
        "lat mean",
        "p99",
        "hops",
        "msgs/op",
        "msgs/split (paper)",
        "Mev/s",
        "queue/transit/serve/stall",
    ]);
    for spec in &specs {
        eprintln!("running {} ...", spec.id);
        let out = run_cell(spec);
        let r = &out.result;
        table.row(&[
            r.id.clone(),
            format!("{}/{}", r.completed, r.ops),
            f2(r.throughput_kops),
            f1(r.lat_mean),
            r.lat_p99.to_string(),
            f2(r.hops_mean),
            f2(r.msgs_per_op),
            format!("{} ({})", f2(r.msgs_per_split), r.paper_msgs_per_split),
            if r.events_per_sec > 0.0 {
                f2(r.events_per_sec / 1e6)
            } else {
                "-".to_string()
            },
            if r.profiled > 0 {
                format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}%",
                    100.0 * r.seg_queueing,
                    100.0 * r.seg_transit,
                    100.0 * r.seg_service,
                    100.0 * r.seg_stall
                )
            } else {
                "-".to_string()
            },
        ]);
        if let Some(dir) = &args.folded {
            fs::create_dir_all(dir).expect("create folded dir");
            if !out.folded_paths.is_empty() {
                fs::write(
                    dir.join(format!("{}.paths.folded", r.id)),
                    &out.folded_paths,
                )
                .expect("write folded paths");
            }
            if !out.folded_waits.is_empty() {
                fs::write(
                    dir.join(format!("{}.waits.folded", r.id)),
                    &out.folded_waits,
                )
                .expect("write folded waits");
            }
        }
        report.cells.push(out.result);
    }
    table.print();

    if let Some(parent) = args.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent).expect("create output dir");
    }
    fs::write(&args.out, report.to_json()).expect("write BENCH.json");
    note(&format!("wrote {}", args.out.display()));
    if let Some(p) = &args.update_baseline {
        fs::write(p, report.to_json()).expect("write baseline");
        note(&format!("baseline updated: {}", p.display()));
    }

    if args.check {
        let text = match fs::read_to_string(&args.baseline) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", args.baseline.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot parse baseline {}: {e}", args.baseline.display());
                return ExitCode::FAILURE;
            }
        };
        let regressions = compare(&report, &baseline, &args.gate);
        if regressions.is_empty() {
            note(&format!(
                "regression gate: OK ({} gated cells, rel {:.0}% + abs {})",
                baseline.cells.iter().filter(|c| c.deterministic).count(),
                100.0 * args.gate.rel,
                args.gate.abs
            ));
        } else {
            eprintln!("regression gate: {} failure(s)", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            eprintln!(
                "if the change is intentional, re-run with --update-baseline {}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
