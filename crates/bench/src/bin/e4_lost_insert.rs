//! E4 — Fig 4: the lost-insert problem.
//!
//! The naive lazy protocol (PC silently ignores out-of-range relayed
//! inserts) loses keys whenever an insert performed at one copy races a
//! split at the primary: the copies discard the key when they apply the
//! relayed split, and the PC drops the relay — the key vanishes from the
//! structure. The semisync protocol's history rewrite (re-issuing the relay
//! toward the sibling) closes the window. Identical workloads and seeds for
//! both protocols.

use bench::report::{note, section, Table};
use bench::{build_cluster, drive};
use dbtree::{checker, ProtocolKind, TreeConfig};
use workload::Mix;

fn main() {
    section("E4", "Fig 4 — lost inserts: naive lazy vs semisync");
    let mut table = Table::new(&[
        "seed",
        "protocol",
        "inserts",
        "splits",
        "relays fwd'd",
        "relays dropped@PC",
        "keys lost",
    ]);

    let mut naive_total = 0usize;
    let mut semi_total = 0usize;
    for seed in 0..10u64 {
        for protocol in [ProtocolKind::SemiSync, ProtocolKind::Naive] {
            let cfg = TreeConfig {
                fanout: 6,
                ..TreeConfig::fixed_copies(protocol, 3)
            };
            let mut cluster = build_cluster(cfg, 4, 30, seed);
            let (stats, expected) = drive(&mut cluster, 30, 500, Mix::INSERT_ONLY, 2000, seed, 4);
            cluster.record_final_digests();
            let lost = checker::check_keys(&cluster.sim, &expected).len();
            match protocol {
                ProtocolKind::Naive => naive_total += lost,
                _ => semi_total += lost,
            }
            let fwd = bench::sum_metric(&cluster, |m| m.relays_forwarded);
            let dropped = bench::sum_metric(&cluster, |m| m.relays_discarded);
            let splits = bench::sum_metric(&cluster, |m| m.splits_initiated);
            table.row(&[
                seed.to_string(),
                protocol.label().to_string(),
                stats.records.len().to_string(),
                splits.to_string(),
                fwd.to_string(),
                dropped.to_string(),
                lost.to_string(),
            ]);
        }
    }
    table.print();
    note(&format!(
        "totals over 10 seeds — semisync lost {semi_total} keys, naive lost {naive_total}"
    ));
    note("every loss coincides with a relay the naive PC dropped; semisync forwards those instead");
}
