//! E2 — Fig 2: the dB-tree replication policy.
//!
//! Path replication stores the root everywhere, leaves once, and interior
//! nodes in between. This experiment reports, per level, the average number
//! of copies per node under three placements (path replication, no
//! replication, full replication), the total storage overhead, and the
//! fraction of descent traffic that stayed processor-local under a
//! search-only workload — the locality the policy buys.

use bench::report::{note, section, Table};
use bench::{build_cluster, drive, f2};
use dbtree::{GlobalView, Placement, ProtocolKind, TreeConfig};
use workload::Mix;

fn main() {
    section("E2", "Fig 2 — dB-tree replication policy");
    let procs = 8u32;
    let preload = 2000u64;

    let placements: Vec<(&str, Placement)> = vec![
        ("path", Placement::PathReplication),
        ("none (1 copy)", Placement::Uniform { copies: 1 }),
        (
            "full (P copies)",
            Placement::Uniform {
                copies: procs as usize,
            },
        ),
    ];

    let mut per_level = Table::new(&["placement", "level", "nodes", "copies", "copies/node"]);
    let mut summary = Table::new(&[
        "placement",
        "total copies",
        "overhead vs none",
        "local descend %",
        "remote msgs/op",
        "mean hops",
    ]);

    for (label, placement) in placements {
        let cfg = TreeConfig {
            placement,
            protocol: ProtocolKind::SemiSync,
            record_history: false,
            ..Default::default()
        };
        let mut cluster = build_cluster(cfg, procs, preload, 7);

        // Per-level copy counts before traffic.
        let (nodes_per_level, copies_per_level, total_copies, total_nodes) = {
            let view = GlobalView::new(&cluster.sim);
            let n = view.nodes_per_level();
            let c = view.copies_per_level();
            let tc: usize = c.values().sum();
            let tn: usize = n.values().sum();
            (n, c, tc, tn)
        };
        for (level, nodes) in nodes_per_level.iter().rev() {
            let copies = copies_per_level.get(level).copied().unwrap_or(0);
            per_level.row(&[
                label.to_string(),
                level.to_string(),
                nodes.to_string(),
                copies.to_string(),
                f2(copies as f64 / *nodes as f64),
            ]);
        }

        // Search-only workload: measure locality.
        let (stats, _) = drive(
            &mut cluster,
            preload,
            4000,
            Mix::SEARCH_ONLY,
            preload * 10,
            99,
            4,
        );
        let descend = cluster.sim.stats().kind("descend");
        let local_pct = 100.0 * descend.local as f64 / descend.total().max(1) as f64;
        let remote_per_op =
            cluster.sim.stats().remote_messages() as f64 / stats.records.len() as f64;
        summary.row(&[
            label.to_string(),
            total_copies.to_string(),
            f2(total_copies as f64 / total_nodes as f64),
            f2(local_pct),
            f2(remote_per_op),
            f2(stats.mean_hops()),
        ]);
    }

    per_level.print();
    println!();
    summary.print();
    note("path replication ≈ full replication's locality at a fraction of the copies;");
    note("leaves stay single-copy so update relays stay cheap (Fig 2's design point)");
}
