//! E21 — lazy lag under load, and catching a relay-suppression incident.
//!
//! The paper's lazy-update pitch is that replica maintenance can trail the
//! initial update arbitrarily — but a *healthy* deployment keeps that lag
//! bounded by the piggyback flush interval, and an operator needs to see
//! when it is not. This experiment measures the lag directly and proves the
//! online watchdogs catch its failure mode:
//!
//! * **Clean run** — a mixed workload over a replicated tree with
//!   piggybacked relays and the health watchdogs armed. The
//!   `relay.backlog_age` gauge (oldest buffered relay's age at each sample)
//!   stays bounded by the flush interval on every processor, and **zero**
//!   alerts fire.
//! * **Faulted run** — identical except `relay_suppress_proc` injects the
//!   seeded E21 fault on one processor: it keeps buffering relays but never
//!   sends a batch and never arms the flush timer. Its backlog depth and
//!   age grow monotonically, the `backlog_growth` watchdog fires on exactly
//!   that processor, and no other rule (and no other processor) alerts.
//!
//! Per-`OpKind` latency quantiles come from `DriverStats::split_by` — the
//! lazy protocol's reads are not paying for the injected write backlog.
//!
//! `--export DIR` writes the four JSONL exports
//! (`e21_{clean,faulted}.{trace,samples}.jsonl`) for `obsctl`; CI
//! post-mortems them with `obsctl report --must-alert backlog_growth` /
//! `--must-not-alert`. `--smoke` shrinks the op count.

use bench::report::{note, section, Table};
use bench::to_client;
use dbtree::{BuildSpec, ClientOp, DbCluster, Intent, PiggybackCfg, ProtocolKind, TreeConfig};
use simnet::{HealthConfig, Obs, SimConfig};
use workload::{KeyDist, Mix, WorkloadGen};

const N_PROCS: u32 = 4;
/// The processor the faulted run suppresses relays on.
const FAULT_PROC: u32 = 1;
const SAMPLE_INTERVAL: u64 = 100;
const SEED: u64 = 21;

fn config(faulted: bool) -> TreeConfig {
    TreeConfig {
        piggyback: Some(PiggybackCfg::default()),
        relay_suppress_proc: faulted.then_some(FAULT_PROC),
        ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3)
    }
}

fn run(faulted: bool, n_ops: usize) -> (dbtree::DriverStats, Obs) {
    let spec = BuildSpec::new((0..200).map(|k| k * 10).collect(), N_PROCS, config(faulted));
    let sim_cfg = SimConfig {
        trace_capacity: 1 << 16,
        sample_interval: SAMPLE_INTERVAL,
        health: HealthConfig::watchdogs(),
        ..SimConfig::jittery(SEED, 2, 25)
    };
    let mut cluster = DbCluster::build(&spec, sim_cfg);
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 4000 },
        Mix {
            search_fraction: 0.4,
            delete_fraction: 0.1,
            scan_fraction: 0.0,
        },
        N_PROCS,
        SEED,
    );
    let ops: Vec<ClientOp> = gen.batch(n_ops).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, 8);
    (stats, cluster.take_obs())
}

/// Per-processor max of one gauge across the series.
fn gauge_max(obs: &Obs, name: &str) -> Vec<(u32, u64)> {
    let mut max = vec![0u64; N_PROCS as usize];
    for s in &obs.series {
        if let Some(&(_, v)) = s.gauges.iter().find(|(n, _)| *n == name) {
            max[s.proc.index()] = max[s.proc.index()].max(v);
        }
    }
    max.into_iter()
        .enumerate()
        .map(|(p, v)| (p as u32, v))
        .collect()
}

fn kind_of(op: &ClientOp) -> &'static str {
    match op.intent {
        Intent::Search => "search",
        Intent::Insert(_) => "insert",
        Intent::Delete => "delete",
    }
}

fn export(dir: &str, label: &str, obs: &Obs) {
    std::fs::create_dir_all(dir).expect("create export dir");
    let write = |suffix: &str, body: String| {
        let path = format!("{dir}/e21_{label}.{suffix}.jsonl");
        std::fs::write(&path, body).expect("write export");
        note(&format!("wrote {path}"));
    };
    write("trace", obs.trace_jsonl());
    write("samples", obs.series_jsonl());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let export_dir = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--export")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let n_ops = if smoke { 600 } else { 2000 };
    section(
        "E21",
        "lazy lag under load — bounded when healthy, alarmed when relays are suppressed",
    );

    // -- clean control ------------------------------------------------------
    let (clean_stats, clean_obs) = run(false, n_ops);
    let clean_report = clean_obs.health_report();
    // The lag bound: a buffered relay lives at most `flush_interval` ticks
    // before the timer flushes it, plus one sampling window of slack for the
    // sample landing between buffering and flush.
    let bound = PiggybackCfg::default().flush_interval + SAMPLE_INTERVAL;
    let clean_age = gauge_max(&clean_obs, "relay.backlog_age");
    let mut t = Table::new(&["proc", "max backlog age (clean)", "bound"]);
    for (p, v) in &clean_age {
        t.row(&[format!("P{p}"), v.to_string(), bound.to_string()]);
    }
    t.print();
    assert!(
        clean_report.healthy(),
        "clean run must not alert, got {:?}",
        clean_obs.alerts
    );
    for (p, v) in &clean_age {
        assert!(
            v <= &bound,
            "P{p}: clean backlog age {v} exceeds the lazy bound {bound}"
        );
    }
    note("clean: zero alerts; lazy lag bounded by the piggyback flush interval on every proc");

    // -- injected relay suppression ----------------------------------------
    let (faulted_stats, faulted_obs) = run(true, n_ops);
    let report = faulted_obs.health_report();
    let faulted_age = gauge_max(&faulted_obs, "relay.backlog_age");
    let faulted_depth = gauge_max(&faulted_obs, "relay.backlog_depth");
    let mut t = Table::new(&["proc", "max backlog age", "max backlog depth"]);
    for ((p, age), (_, depth)) in faulted_age.iter().zip(&faulted_depth) {
        t.row(&[format!("P{p}"), age.to_string(), depth.to_string()]);
    }
    t.print();
    assert!(
        !report.healthy(),
        "the injected suppression must trip a watchdog"
    );
    for a in &faulted_obs.alerts {
        assert_eq!(a.rule, "backlog_growth", "unexpected rule: {a:?}");
        assert_eq!(a.proc.0, FAULT_PROC, "alert on the wrong processor: {a:?}");
    }
    let suppressed_age = faulted_age[FAULT_PROC as usize].1;
    assert!(
        suppressed_age > bound,
        "suppressed proc's lag ({suppressed_age}) should blow through the bound ({bound})"
    );
    note(&format!(
        "faulted: {} backlog_growth alert(s), all on P{FAULT_PROC}; its lag reached {} ticks \
         (clean bound: {bound})",
        faulted_obs.alerts.len(),
        suppressed_age,
    ));

    // -- per-kind latency (split_by) ----------------------------------------
    let mut t = Table::new(&["kind", "ops", "mean", "p50", "p99", "(faulted) mean", "p99"]);
    let clean_kinds = clean_stats.split_by(kind_of);
    let faulted_kinds = faulted_stats.split_by(kind_of);
    for (kind, part) in &clean_kinds {
        let f = faulted_kinds.get(kind);
        t.row(&[
            kind.to_string(),
            part.records.len().to_string(),
            format!("{:.1}", part.mean_latency()),
            part.latency_quantile(0.5).to_string(),
            part.latency_quantile(0.99).to_string(),
            f.map_or("-".to_string(), |s| format!("{:.1}", s.mean_latency())),
            f.map_or("-".to_string(), |s| s.latency_quantile(0.99).to_string()),
        ]);
    }
    t.print();
    note("suppressed relays are off every op's critical path: per-kind latency is unmoved");

    if let Some(dir) = export_dir {
        export(&dir, "clean", &clean_obs);
        export(&dir, "faulted", &faulted_obs);
    }
}
