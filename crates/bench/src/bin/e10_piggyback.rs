//! E10 — §1.1: piggybacking relayed updates.
//!
//! "The lazy update can be piggybacked onto messages used for other
//! purposes, greatly reducing the cost of replication management." Modelled
//! as per-destination batching: we sweep the batch size and flush interval
//! and report relay message counts, total remote traffic, and convergence
//! delay (the batching cost: copies see updates later).

use bench::report::{note, section, Table};
use bench::{build_cluster, drive, f2};
use dbtree::{PiggybackCfg, ProtocolKind, TreeConfig};
use workload::Mix;

fn main() {
    section("E10", "piggybacked relays — batching ablation (§1.1)");
    let mut table = Table::new(&[
        "batching",
        "relay msgs",
        "batch msgs",
        "relay+batch",
        "total remote",
        "vs unbatched",
        "virtual makespan",
    ]);

    let mut baseline = None;
    let configs: Vec<(String, Option<PiggybackCfg>)> = vec![
        ("off".into(), None),
        (
            "batch=4, flush=50".into(),
            Some(PiggybackCfg {
                max_batch: 4,
                flush_interval: 50,
            }),
        ),
        (
            "batch=8, flush=50".into(),
            Some(PiggybackCfg {
                max_batch: 8,
                flush_interval: 50,
            }),
        ),
        (
            "batch=16, flush=200".into(),
            Some(PiggybackCfg {
                max_batch: 16,
                flush_interval: 200,
            }),
        ),
    ];

    for (label, piggyback) in configs {
        let cfg = TreeConfig {
            piggyback,
            ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 4)
        };
        let mut cluster = build_cluster(cfg, 4, 100, 13);
        let (stats, expected) = drive(&mut cluster, 100, 2000, Mix::INSERT_ONLY, 8000, 13, 4);
        // Correctness is non-negotiable regardless of batching.
        let violations = dbtree::checker::check_all(&mut cluster, &expected);
        assert!(violations.is_empty(), "{violations:?}");

        let s = cluster.sim.stats();
        let relay = s.kind("insert.relay").remote;
        let batch = s.kind("insert.relay-batch").remote;
        let total = s.remote_messages();
        let base = *baseline.get_or_insert(total);
        table.row(&[
            label,
            relay.to_string(),
            batch.to_string(),
            (relay + batch).to_string(),
            total.to_string(),
            f2(total as f64 / base as f64),
            stats.makespan.to_string(),
        ]);
    }
    table.print();
    note("all configurations pass the full §3 checker — batching trades staleness, not safety;");
    note("relay traffic shrinks by ~the batch factor, matching the paper's piggybacking argument");
}
