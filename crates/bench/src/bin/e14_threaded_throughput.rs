//! E14 — every protocol on real threads: wall-clock throughput.
//!
//! The simulator experiments (E1–E13) measure virtual-tick costs; this one
//! runs the *same* protocol state machines on `simnet::threaded::Cluster` —
//! one OS thread per processor, crossbeam channels, a wall-clock timer
//! thread — through the same `DbCluster` facade and closed-loop driver, and
//! reports real operations per second. The point is not the absolute
//! numbers (this is a message-passing toy, not a tuned server) but that
//! the protocol ranking survives the move to real concurrency: lazy
//! protocols never block operations on replica maintenance, so semisync
//! keeps its lead over sync splits and available-copies locking when the
//! nondeterminism is real.

use std::time::Instant;

use bench::report::{note, section, Table};
use bench::{f1, to_client};
use dbtree::{BuildSpec, ClientOp, ProtocolKind, ThreadedDbCluster, TreeConfig};
use workload::{KeyDist, Mix, WorkloadGen};

const N_OPS: usize = 2_000;
const CONCURRENCY: usize = 8;

fn run(protocol: ProtocolKind, n_procs: u32) -> (f64, f64, u64, usize) {
    let cfg = TreeConfig::fixed_copies(protocol, (n_procs as usize).min(3));
    let spec = BuildSpec::new((0..500u64).map(|k| k * 10).collect(), n_procs, cfg);
    let mut cluster = ThreadedDbCluster::build_threaded(&spec);

    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 20_000 },
        Mix {
            search_fraction: 0.5,
            ..Mix::INSERT_ONLY
        },
        n_procs,
        41 + n_procs as u64,
    );
    let ops: Vec<ClientOp> = gen.batch(N_OPS).iter().map(to_client).collect();

    let t0 = Instant::now();
    let stats = cluster.run_closed_loop(&ops, CONCURRENCY);
    let wall = t0.elapsed();

    let done = stats.records.len();
    let ops_per_sec = done as f64 / wall.as_secs_f64();
    // Threaded ticks are wall-clock microseconds, so latencies read as µs.
    let mean_us = stats.mean_latency();
    let p99_us = stats.latency_quantile(0.99);
    cluster.into_procs(); // join every thread before the next run
    (ops_per_sec, mean_us, p99_us, done)
}

fn main() {
    section(
        "E14",
        "threaded throughput — the same protocols on real OS threads",
    );
    let mut table = Table::new(&[
        "threads",
        "protocol",
        "ops/s (wall clock)",
        "mean latency (µs)",
        "p99 (µs)",
        "completed",
    ]);
    for &n_procs in &[2u32, 4, 8] {
        for protocol in [
            ProtocolKind::SemiSync,
            ProtocolKind::Sync,
            ProtocolKind::AvailableCopies,
            ProtocolKind::Naive,
        ] {
            let (ops_per_sec, mean_us, p99_us, done) = run(protocol, n_procs);
            table.row(&[
                n_procs.to_string(),
                protocol.label().to_string(),
                format!("{ops_per_sec:.0}"),
                f1(mean_us),
                p99_us.to_string(),
                format!("{done}/{N_OPS}"),
            ]);
        }
    }
    table.print();
    note("same state machines, same driver as E1-E13 — only the runtime differs;");
    note(
        "naive may complete <100%: its Fig 4 lost inserts are real losses, not simulator artifacts",
    );
}
