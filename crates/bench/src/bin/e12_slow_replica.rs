//! E12 — §1: "a slow operation never blocks a fast operation".
//!
//! The paper motivates lazy updates as the distributed analogue of
//! non-blocking shared-memory structures. We degrade one of four
//! processors (all its remote channels 10x slower) and drive writes from
//! the three healthy processors through a 4-copy replicated tree:
//!
//! * Under **semisync**, relays to the slow replica are fire-and-forget:
//!   healthy-processor operations complete at full speed; the slow copy
//!   just converges later.
//! * Under **available-copies**, every write-all lock waits for the slow
//!   replica's grant: the slow replica's latency is imposed on *every*
//!   operation in the system.

use bench::report::{note, section, Table};
use bench::{f1, to_client};
use dbtree::{checker, BuildSpec, ClientOp, DbCluster, ProtocolKind, TreeConfig};
use simnet::{LatencyModel, ProcId, SimConfig};
use workload::{KeyDist, Mix, WorkloadGen};

fn run(protocol: ProtocolKind, factor: u64) -> (f64, u64, usize) {
    let cfg = TreeConfig {
        ..TreeConfig::fixed_copies(protocol, 4)
    };
    let spec = BuildSpec::new((0..100).map(|k| k * 10).collect(), 4, cfg);
    let sim_cfg = SimConfig {
        latency: LatencyModel::SlowProc {
            local: 1,
            remote: 10,
            slow: ProcId(3),
            factor,
        },
        ..SimConfig::seeded(7)
    };
    let mut cluster = DbCluster::build(&spec, sim_cfg);
    // Healthy processors only submit (P3 is the straggler replica).
    let mut gen = WorkloadGen::new(KeyDist::Uniform { n: 5000 }, Mix::INSERT_ONLY, 3, 7);
    let ops: Vec<ClientOp> = gen.batch(900).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, 3);
    let mean = stats.mean_latency();
    let p99 = stats.latency_quantile(0.99);
    // Correctness is identical in both cases.
    cluster.record_final_digests();
    let diverged = checker::check_convergence(&cluster.sim).len();
    assert_eq!(diverged, 0);
    (mean, p99, stats.records.len())
}

fn main() {
    section(
        "E12",
        "slow-replica tolerance — \"a slow operation never blocks a fast operation\" (§1)",
    );
    let mut table = Table::new(&[
        "slowdown of P3",
        "protocol",
        "healthy-op mean latency",
        "p99",
        "slowdown vs healthy cluster",
    ]);
    for &factor in &[1u64, 4, 10, 25] {
        for protocol in [ProtocolKind::SemiSync, ProtocolKind::AvailableCopies] {
            let (mean, p99, _n) = run(protocol, factor);
            let (base, _, _) = run(protocol, 1);
            table.row(&[
                format!("{factor}x"),
                protocol.label().to_string(),
                f1(mean),
                p99.to_string(),
                format!("{:.2}x", mean / base),
            ]);
        }
    }
    table.print();
    note("semisync: relays to the straggler are asynchronous — healthy operations are untouched;");
    note("available-copies: every write-all lock waits on the straggler, importing its latency");
}
