//! Run every experiment binary's logic in sequence (convenience wrapper for
//! regenerating EXPERIMENTS.md: `cargo run --release -p bench --bin
//! all_experiments`).

use std::process::Command;

fn main() {
    let bins = [
        "e1_half_split",
        "e2_replication_policy",
        "e3_lazy_convergence",
        "e4_lost_insert",
        "e5_split_cost",
        "e6_join_race",
        "e7_root_bottleneck",
        "e8_mobility",
        "e9_lazy_vs_vigorous",
        "e10_piggyback",
        "e11_hash_table",
        "e12_slow_replica",
        "e13_fault_tolerance",
        "e14_threaded_throughput",
        "e15_trace_anatomy",
        "e16_explore",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
}
