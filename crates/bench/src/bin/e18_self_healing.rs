//! E18 — self-healing: detection latency vs false suspects vs op latency.
//!
//! The failure detector's one real tunable is *how long silence means
//! dead* (`ping_interval × suspect_after`). Setting it low detects a
//! crash fast — and mistakes every lossy-network hiccup for one; setting
//! it high never errs — and leaves clients hammering a corpse until
//! their own deadlines fire. This experiment sweeps that threshold over
//! a crash-restart run (one processor dies at t=150, restarts at t=1200,
//! clients keep submitting to it, client retry enabled) and measures all
//! three costs at once, then repeats the endpoints on the threaded
//! runtime where the crash is a real envelope into a live worker.
//!
//! The simulator tables are pure functions of `SEED`.

use bench::f1;
use bench::report::{note, section, Table};
use dbtree::{BuildSpec, ClientOp, DbCluster, Intent, ThreadedDbCluster, TreeConfig};
use simnet::{
    CrashEvent, DetectorConfig, FaultPlan, ProcId, RetryPolicy, SessionConfig, SimConfig, SimTime,
    TraceEvent,
};

const N_PROCS: u32 = 4;
const N_OPS: u64 = 160;
const CRASHED: ProcId = ProcId(2);
const CRASH_AT: u64 = 150;
const RESTART_AT: u64 = 1_200;
const SEED: u64 = 0xE18;

fn spec() -> BuildSpec {
    BuildSpec::new(
        (0..240).map(|k| k * 20).collect(),
        N_PROCS,
        TreeConfig::default(),
    )
}

/// Origins cycle over all processors — the crasher included; the retry
/// layer, not the workload, is responsible for answering those ops.
fn workload() -> Vec<ClientOp> {
    (0..N_OPS)
        .map(|i| ClientOp {
            origin: ProcId((i % N_PROCS as u64) as u32),
            key: 7 * i + 3,
            intent: if i % 4 == 3 {
                Intent::Search
            } else {
                Intent::Insert(i)
            },
        })
        .collect()
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        enabled: true,
        deadline: 600,
        ..RetryPolicy::default()
    }
}

fn build(faults: FaultPlan, detector: Option<DetectorConfig>) -> DbCluster {
    let sim_cfg = SimConfig {
        faults,
        trace_capacity: 1 << 17,
        ..SimConfig::jittery(SEED, 2, 20)
    };
    let session = match detector {
        Some(d) => SessionConfig::reliable().with_detector(d),
        None => SessionConfig::reliable(),
    };
    let mut cluster = DbCluster::build_with_session(&spec(), sim_cfg, session);
    cluster.set_retry(retry());
    cluster
}

fn crash_plan() -> FaultPlan {
    FaultPlan::lossy(0.02).with_crash(CrashEvent {
        proc: CRASHED,
        at: SimTime(CRASH_AT),
        restart_at: Some(SimTime(RESTART_AT)),
    })
}

/// Split the run's suspect transitions into (first true detection tick,
/// true count, false count): a suspicion is *true* iff it names the
/// crashed processor during its outage. With `outage: None` (no crash in
/// the run) every suspicion is a mistake.
fn suspect_stats(cluster: &mut DbCluster, outage: Option<(u64, u64)>) -> (Option<u64>, u64, u64) {
    let tag = format!("{CRASHED:?} ");
    let obs = cluster.take_obs();
    assert_eq!(obs.trace.dropped(), 0, "trace ring buffer overflowed");
    let (mut first, mut truthy, mut falsy) = (None, 0u64, 0u64);
    for e in obs.trace.iter() {
        if e.event != TraceEvent::Suspect {
            continue;
        }
        let of_crashed = outage
            .map(|(from, to)| e.detail.starts_with(&tag) && e.at.0 >= from && e.at.0 <= to)
            .unwrap_or(false);
        if of_crashed {
            truthy += 1;
            if first.is_none() {
                first = Some(e.at.0);
            }
        } else {
            falsy += 1;
        }
    }
    (first, truthy, falsy)
}

/// The sweep: detection latency, false suspects, and op latency as the
/// silence threshold moves. The detector-off row is the degraded
/// baseline — the client deadline is then the only failure signal.
fn detection_sweep() {
    let mut table = Table::new(&[
        "threshold (ticks)",
        "detect after",
        "true/false suspects",
        "lat mean",
        "p99",
        "timeouts",
        "retries",
        "completed",
    ]);
    let mut configs: Vec<(String, Option<DetectorConfig>)> = vec![("off".into(), None)];
    for suspect_after in [1u32, 2, 3, 5] {
        let d = DetectorConfig {
            suspect_after,
            ..DetectorConfig::on()
        };
        configs.push((
            format!("{}", d.ping_interval * suspect_after as u64),
            Some(d),
        ));
    }
    for (label, detector) in configs {
        let mut cluster = build(crash_plan(), detector);
        let ops = workload();
        let stats = cluster.run_closed_loop(&ops, 3);
        assert_eq!(stats.records.len(), ops.len(), "an op never completed");
        let (first, truthy, falsy) = suspect_stats(&mut cluster, Some((CRASH_AT, RESTART_AT)));
        table.row(&[
            label,
            match first {
                Some(at) => format!("{} ticks", at - CRASH_AT),
                None => "—".to_string(),
            },
            format!("{truthy}/{falsy}"),
            f1(stats.mean_latency()),
            stats.latency_quantile(0.99).to_string(),
            stats.timeouts.to_string(),
            stats.retries.to_string(),
            format!("{}/{}", stats.records.len(), ops.len()),
        ]);
    }
    table.print();
    note("every row completes 100% of accepted ops — the threshold trades how soon");
    note("peers stop relaying to the corpse (quarantine) against misfires; the");
    note("client's own deadline keeps ops moving even with the detector off");
}

/// False-suspect rate without any crash: the same thresholds on an
/// increasingly lossy (but fully live) network. Every suspicion here is
/// a mistake.
fn false_suspect_control() {
    let mut table = Table::new(&["threshold (ticks)", "5% loss", "15% loss", "25% loss"]);
    for suspect_after in [1u32, 2, 3, 5] {
        let d = DetectorConfig {
            suspect_after,
            ..DetectorConfig::on()
        };
        let mut row = vec![format!("{}", d.ping_interval * suspect_after as u64)];
        for loss in [0.05, 0.15, 0.25] {
            let mut cluster = build(FaultPlan::lossy(loss), Some(d));
            let ops = workload();
            let stats = cluster.run_closed_loop(&ops, 3);
            assert_eq!(stats.records.len(), ops.len());
            let (_, truthy, falsy) = suspect_stats(&mut cluster, None);
            assert_eq!(truthy, 0, "nothing crashed");
            row.push(falsy.to_string());
        }
        table.row(&row);
    }
    table.print();
    note("false suspicions (suspect events with every processor live): pings are");
    note("unsequenced, so heavy loss can silence a peer past a short threshold;");
    note("each misfire costs one quarantine + one catch-up push when it clears");
}

/// The threaded endpoints: detector on vs off around a real crash/restart
/// envelope pair, wall-clock latency in microseconds.
fn threaded() {
    let mut table = Table::new(&[
        "detector",
        "suspects",
        "timeouts",
        "lat mean (us)",
        "completed",
    ]);
    for detector in [true, false] {
        let session = if detector {
            SessionConfig::reliable().with_detector(DetectorConfig::on())
        } else {
            SessionConfig::reliable()
        };
        let mut cluster = ThreadedDbCluster::build_threaded_with_session(&spec(), session);
        cluster.set_retry(RetryPolicy {
            enabled: true,
            deadline: 50_000,
            backoff_base: 1_000,
            backoff_max: 20_000,
            max_attempts: 20,
            ..RetryPolicy::default()
        });
        let ops = workload();
        let (before, rest) = ops.split_at(40);
        let (during, after) = rest.split_at(80);

        let mut records = cluster.run_closed_loop(before, 3).records;
        cluster.sim.crash(CRASHED);
        for op in during {
            cluster.submit(*op);
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        cluster.sim.restart(CRASHED);
        records.extend(cluster.run_to_quiescence());
        let stats = cluster.run_closed_loop(after, 3);
        records.extend(stats.records.iter().cloned());

        let mean = records
            .iter()
            .map(|r| (r.completed.0 - r.submitted.0) as f64)
            .sum::<f64>()
            / records.len().max(1) as f64;
        let final_procs = cluster.into_procs();
        let suspects: u64 = final_procs.iter().map(|p| p.session_stats().suspects).sum();
        table.row(&[
            if detector { "on" } else { "off" }.to_string(),
            suspects.to_string(),
            stats.timeouts.to_string(),
            f1(mean),
            format!("{}/{}", records.len(), ops.len()),
        ]);
    }
    table.print();
    note("same stack on OS threads: the 30ms outage is long enough for the peers'");
    note("detectors to suspect the silence; either way every op completes and the");
    note("final states pass the oracle stack (asserted in tests/recovery.rs)");
}

fn main() {
    section(
        "E18",
        "self-healing — detection latency vs false suspects vs op latency under crash-restart",
    );
    detection_sweep();
    false_suspect_control();
    threaded();
}
