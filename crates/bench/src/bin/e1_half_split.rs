//! E1 — Fig 1: the half-split keeps the tree navigable at all times.
//!
//! Drives an ascending-key insert storm (every insert splits the rightmost
//! leaf region) interleaved 1:1 with searches for already-acknowledged keys.
//! If the structure were ever un-navigable mid-split, a search would fail;
//! instead every search succeeds and misnavigations are absorbed by
//! right-link chases, which we count. The sequential B-link tree is run on
//! the same workload as the shared-memory reference point.

use bench::report::{note, section, Table};
use bench::{f2, sum_metric};
use blink::BLinkTree;
use dbtree::{BuildSpec, ClientOp, DbCluster, Intent, TreeConfig};
use simnet::{ProcId, SimConfig};

fn main() {
    section("E1", "Fig 1 — half-split navigability");
    let mut table = Table::new(&[
        "procs",
        "inserts",
        "searches",
        "found",
        "not-found",
        "splits",
        "chases",
        "chases/op",
    ]);

    for &procs in &[2u32, 4, 8] {
        let cfg = TreeConfig {
            fanout: 8,
            ..Default::default()
        };
        let spec = BuildSpec::new(vec![0], procs, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(42, 2, 25));

        let n = 600u64;
        // Phase 1: settle keys 1..n/2.
        let settle: Vec<ClientOp> = (1..n / 2)
            .map(|k| ClientOp {
                origin: ProcId((k % procs as u64) as u32),
                key: k,
                intent: Intent::Insert(k),
            })
            .collect();
        cluster.run_closed_loop(&settle, 2);
        // Phase 2: a split storm on the right edge (ascending inserts),
        // interleaved with searches for settled keys — every search runs
        // while splits are in flight and must still succeed.
        let mut ops = Vec::new();
        for k in n / 2..n {
            ops.push(ClientOp {
                origin: ProcId((k % procs as u64) as u32),
                key: k,
                intent: Intent::Insert(k),
            });
            ops.push(ClientOp {
                origin: ProcId(((k + 1) % procs as u64) as u32),
                key: 1 + k % (n / 2 - 1),
                intent: Intent::Search,
            });
        }
        let stats = cluster.run_closed_loop(&ops, 1);
        let searches: Vec<_> = stats
            .records
            .iter()
            .filter(|r| matches!(r.op.intent, Intent::Search))
            .collect();
        let found = searches
            .iter()
            .filter(|r| r.outcome.found.is_some())
            .count();
        let not_found = searches.len() - found;
        let splits = sum_metric(&cluster, |m| m.splits_initiated);
        let chases = stats.total_chases();
        table.row(&[
            procs.to_string(),
            (n / 2).to_string(),
            searches.len().to_string(),
            found.to_string(),
            not_found.to_string(),
            splits.to_string(),
            chases.to_string(),
            f2(chases as f64 / stats.records.len() as f64),
        ]);
    }
    table.print();

    // Sequential reference: same ascending workload on the local B-link tree.
    let mut t = BLinkTree::new(8);
    for k in 1..600u64 {
        t.insert(k, k);
        if k > 4 {
            assert!(t.get(k / 2).is_some());
        }
    }
    let s = t.stats();
    note(&format!(
        "sequential B-link reference: {} splits, {} link chases, height {}",
        s.splits,
        s.link_chases,
        t.height()
    ));
    note("every search issued mid-split succeeded; misnavigation is absorbed by right-link chases");
}
