//! E3 — Fig 3: lazy inserts commute.
//!
//! Reproduces the paper's running example: nodes A and B (two leaves under
//! one replicated parent) split "at about the same time"; the pointer to A's
//! sibling is inserted at one copy of the parent and the pointer to B's
//! sibling at the other. The copies transiently disagree, yet no navigation
//! fails and the copies converge without any synchronization.

use std::collections::BTreeSet;

use bench::report::{note, section, Table};
use dbtree::{
    checker, BuildSpec, ClientOp, DbCluster, GlobalView, Intent, ProtocolKind, TreeConfig,
};
use simnet::{ProcId, SimConfig};

fn main() {
    section(
        "E3",
        "Fig 3 — concurrent lazy inserts at different copies converge",
    );

    let mut table = Table::new(&[
        "seed",
        "parent copies",
        "initial@P0",
        "initial@P1",
        "relays applied",
        "converged",
        "history ok",
    ]);

    for seed in 0..8u64 {
        // Two processors; every node on both (fixed copies). Two leaves,
        // each nearly full, under one parent. One insert into each leaf —
        // submitted to different processors at the same instant — forces
        // simultaneous splits whose completions race at the parent copies.
        let cfg = TreeConfig {
            fanout: 4,
            ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 2)
        };
        let spec = BuildSpec {
            keys: vec![10, 20, 30, 40, 110, 120, 130, 140],
            n_procs: 2,
            cfg,
            fill: 4, // both leaves exactly at fanout
        };
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 30));

        // Insert into leaf A from P0 and leaf B from P1 simultaneously.
        cluster.submit(ClientOp {
            origin: ProcId(0),
            key: 15,
            intent: Intent::Insert(15),
        });
        cluster.submit(ClientOp {
            origin: ProcId(1),
            key: 115,
            intent: Intent::Insert(115),
        });
        cluster.run_to_quiescence();

        // Find the parent (level 1) and compare copies.
        let (copies, converged) = {
            let view = GlobalView::new(&cluster.sim);
            let parent = view
                .copies
                .iter()
                .find(|(_, v)| v.first().map(|(_, c)| c.level) == Some(1))
                .expect("parent exists");
            let digests: BTreeSet<u64> = parent.1.iter().map(|(_, c)| c.digest()).collect();
            (parent.1.len(), digests.len() == 1)
        };
        let m0 = cluster.sim.proc(ProcId(0)).metrics;
        let m1 = cluster.sim.proc(ProcId(1)).metrics;
        cluster.record_final_digests();
        let history_ok = cluster.log().lock().check().is_empty();
        let expected: BTreeSet<u64> = [10, 20, 30, 40, 110, 120, 130, 140, 15, 115]
            .into_iter()
            .collect();
        let lost = checker::check_keys(&cluster.sim, &expected).len();

        table.row(&[
            seed.to_string(),
            copies.to_string(),
            m0.splits_initiated.to_string(),
            m1.splits_initiated.to_string(),
            (m0.relays_applied + m1.relays_applied).to_string(),
            format!("{}", converged && lost == 0),
            history_ok.to_string(),
        ]);
    }
    table.print();
    note("splits initiated on both processors => the parent's copies were updated concurrently;");
    note("no AAS, no blocking — the copies converge because lazy inserts commute (§4.1 rule 1)");
}
