//! E5 — Fig 5 + §4.1 claims: split cost and blocking, sync vs semisync.
//!
//! The paper: the synchronous protocol needs `3·|copies(n)|` messages per
//! split (start/ack/end rounds) and blocks initial inserts for the AAS's
//! duration; the semisync protocol needs `|copies(n)|` messages (optimal)
//! and never blocks. We sweep the replication factor and measure both.

use bench::report::{note, section, Table};
use bench::{build_cluster, drive, f2};
use dbtree::{ProtocolKind, TreeConfig};
use workload::Mix;

fn main() {
    section(
        "E5",
        "Fig 5 — messages per split and insert blocking, sync vs semisync",
    );
    let mut table = Table::new(&[
        "copies",
        "protocol",
        "splits",
        "split msgs/split",
        "paper predicts",
        "blocked inserts",
        "mean block ticks",
    ]);

    for &copies in &[2usize, 3, 4, 6, 8] {
        for protocol in [ProtocolKind::Sync, ProtocolKind::SemiSync] {
            let cfg = TreeConfig {
                fanout: 8,
                record_history: false,
                ..TreeConfig::fixed_copies(protocol, copies)
            };
            let mut cluster = build_cluster(cfg, 8, 50, 5);
            drive(&mut cluster, 50, 1500, Mix::INSERT_ONLY, 20_000, 5, 4);

            let splits = bench::sum_metric(&cluster, |m| m.splits_initiated).max(1);
            let s = cluster.sim.stats();
            // Split-protocol messages only (sibling InstallCopy is common to
            // both protocols and excluded, as in the paper's count).
            let split_msgs = s.remote_matching(|k| k.starts_with("split."));
            let blocked = bench::sum_metric(&cluster, |m| m.blocked_initial);
            let block_ticks = bench::sum_metric(&cluster, |m| m.blocked_ticks);
            let predict = match protocol {
                ProtocolKind::Sync => format!("3(R-1) = {}", 3 * (copies - 1)),
                _ => format!("R-1 = {}", copies - 1),
            };
            table.row(&[
                copies.to_string(),
                protocol.label().to_string(),
                splits.to_string(),
                f2(split_msgs as f64 / splits as f64),
                predict,
                blocked.to_string(),
                f2(block_ticks as f64 / blocked.max(1) as f64),
            ]);
        }
    }
    table.print();
    note(
        "R = copies per node; measured msgs/split counts remote split.start/ack/end/relay traffic;",
    );
    note("semisync is 3x cheaper per split and never blocks an initial insert (its column is 0)");
}
