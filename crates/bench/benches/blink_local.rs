//! Criterion microbenches for the sequential substrate: B-link tree vs the
//! classic B+-tree baseline (the half-split discipline costs nothing
//! sequentially, which is why it is the right base for distribution).

use blink::{BLinkTree, BPlusTree};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn scrambled(n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(|k| k.wrapping_mul(0x9E3779B97F4A7C15) >> 16)
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_insert");
    for &n in &[1_000u64, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("blink", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BLinkTree::new(32);
                for k in scrambled(n) {
                    t.insert(black_box(k), k);
                }
                t.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("bplus", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BPlusTree::new(32);
                for k in scrambled(n) {
                    t.insert(black_box(k), k);
                }
                t.len()
            })
        });
    }
    g.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_get");
    let n = 100_000u64;
    let mut blink = BLinkTree::new(32);
    let mut bplus = BPlusTree::new(32);
    for k in scrambled(n) {
        blink.insert(k, k);
        bplus.insert(k, k);
    }
    g.bench_function("blink", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % n;
            let k = i.wrapping_mul(0x9E3779B97F4A7C15) >> 16;
            black_box(blink.get(k))
        })
    });
    g.bench_function("bplus", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % n;
            let k = i.wrapping_mul(0x9E3779B97F4A7C15) >> 16;
            black_box(bplus.get(k))
        })
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_scan");
    let n = 100_000u64;
    let mut blink = BLinkTree::new(32);
    for k in 0..n {
        blink.insert(k, k);
    }
    g.bench_function("blink_1k", |b| {
        let mut from = 0u64;
        b.iter(|| {
            from = (from + 997) % n;
            black_box(blink.range_scan(from, Some(from + 1000)).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_get, bench_scan);
criterion_main!(benches);
