//! Criterion microbench for trace span lookup: the naive linear scan
//! (`Trace::of_span`, O(entries) per query) vs building a `SpanIndex` once
//! and querying it — the access pattern of the critical-path profiler,
//! which resolves *every* op's span against the same trace.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::{ProcId, SimTime, Trace, TraceEntry, TraceEvent};

/// A synthetic trace shaped like a profiler input: `spans` operations,
/// each leaving a short causal chain of entries, interleaved in time.
fn synthetic(spans: u64, per_span: u64) -> Trace {
    let mut t = Trace::with_capacity((spans * per_span) as usize);
    for step in 0..per_span {
        for span in 0..spans {
            t.record(TraceEntry {
                seq: 0,
                at: SimTime(step * spans + span),
                from: ProcId((span % 4) as u32),
                to: ProcId(((span + 1) % 4) as u32),
                event: TraceEvent::Deliver,
                kind: "descend",
                span: Some(span),
                redelivery: false,
                wait: 0,
                detail: String::new(),
                deltas: Vec::new(),
            });
        }
    }
    t
}

fn bench_of_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("of_span_all_spans");
    for &spans in &[64u64, 512] {
        let trace = synthetic(spans, 8);
        g.bench_with_input(BenchmarkId::new("linear", spans), &spans, |b, &spans| {
            b.iter(|| {
                let mut total = 0usize;
                for s in 0..spans {
                    total += trace.of_span(black_box(s)).count();
                }
                total
            })
        });
        g.bench_with_input(BenchmarkId::new("indexed", spans), &spans, |b, &spans| {
            b.iter(|| {
                let idx = trace.span_index();
                let mut total = 0usize;
                for s in 0..spans {
                    total += idx.of_span(black_box(s)).len();
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_of_span);
criterion_main!(benches);
