//! Criterion benches for the simulated dB-tree: end-to-end cost of driving
//! a fixed workload through each replica-maintenance protocol. Measures
//! simulator wall time — a proxy for total protocol work (events × handler
//! cost) — alongside the virtual-time metrics the experiment binaries
//! report.

use bench::{build_cluster, drive};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbtree::{ProtocolKind, TreeConfig};
use workload::Mix;

fn protocol_cfg(p: ProtocolKind) -> TreeConfig {
    TreeConfig {
        record_history: false,
        ..TreeConfig::fixed_copies(p, 3)
    }
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbtree_insert_workload");
    g.sample_size(20);
    for protocol in [
        ProtocolKind::SemiSync,
        ProtocolKind::Sync,
        ProtocolKind::AvailableCopies,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, &p| {
                b.iter(|| {
                    let mut cluster = build_cluster(protocol_cfg(p), 4, 100, 3);
                    let (stats, _) = drive(&mut cluster, 100, 400, Mix::INSERT_ONLY, 4000, 3, 4);
                    stats.records.len()
                })
            },
        );
    }
    g.finish();
}

fn bench_path_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbtree_path_replication");
    g.sample_size(20);
    for &procs in &[2u32, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter(|| {
                let cfg = TreeConfig {
                    record_history: false,
                    ..Default::default()
                };
                let mut cluster = build_cluster(cfg, procs, 200, 9);
                let (stats, _) = drive(
                    &mut cluster,
                    200,
                    400,
                    Mix {
                        search_fraction: 0.8,
                        ..Mix::INSERT_ONLY
                    },
                    4000,
                    9,
                    4,
                );
                stats.records.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols, bench_path_replication);
criterion_main!(benches);
