//! Seed-determinism guards for the E20 reclamation experiment.
//!
//! `e20_reclaim --smoke` runs entirely on the simulator with fixed seeds,
//! so every row it prints is a pure function of the code. The digest test
//! pins the whole `--smoke` output (every field of every phase row across
//! Part A and both Part B runs) to a single value: if it moves, a code
//! change altered the protocol's observable reclamation behaviour — either
//! update the pin deliberately or investigate the drift. Noise cannot move
//! it; two in-process runs must already agree bit-for-bit, which the
//! repeatability test checks independently of the pin.

use bench::reclaim::{digest, run_sliding, run_wrapping, smoke_digest, DOMAIN_BANDS, SMOKE_LAPS};

/// The pinned digest of the full `--smoke` configuration. Update this
/// value (and say why in the commit) when a deliberate protocol or
/// workload change moves it.
const PINNED_SMOKE_DIGEST: u64 = 0xff77_58a0_7c54_8e64;

#[test]
fn e20_smoke_digest_is_pinned() {
    assert_eq!(
        smoke_digest(),
        PINNED_SMOKE_DIGEST,
        "the e20_reclaim --smoke rows changed; if intentional, update the pin"
    );
}

#[test]
fn e20_runs_are_repeatable_in_process() {
    // Two fresh clusters, same seeds — the row streams must agree exactly,
    // independent of what the pinned value happens to be.
    let wrap_a = run_wrapping(SMOKE_LAPS * DOMAIN_BANDS);
    let wrap_b = run_wrapping(SMOKE_LAPS * DOMAIN_BANDS);
    assert_eq!(
        digest(&[("wrap", &wrap_a)]),
        digest(&[("wrap", &wrap_b)]),
        "wrapping-churn rows differ across identical runs"
    );
    let on_a = run_sliding(true, 4);
    let on_b = run_sliding(true, 4);
    assert_eq!(
        digest(&[("on", &on_a)]),
        digest(&[("on", &on_b)]),
        "sliding-window rows differ across identical runs"
    );
}
