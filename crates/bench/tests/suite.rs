//! Tests of the benchmark suite: the pinned `BENCH.json` schema, the
//! JSON roundtrip, the regression gate's tolerances and direction rules,
//! and an end-to-end run of a real (tiny) cell on the simulator —
//! including the acceptance checks: an identical re-run gates clean, and
//! an injected 2× latency regression is caught.

use bench::suite::{
    compare, matrix, run_cell, BenchReport, CellResult, CellSpec, DriveMode, GateCfg, Network,
    Proto, RuntimeKind, Structure,
};
use workload::Mix;

const GOLDEN: &str = include_str!("golden/bench_schema.json");

/// A fully-populated row with values that are exact in four decimals, so
/// the golden bytes and the parse roundtrip are both stable.
fn golden_cell() -> CellResult {
    CellResult {
        id: "golden-cell".into(),
        structure: "blink".into(),
        runtime: "sim".into(),
        drive: "closed".into(),
        network: "clean".into(),
        protocol: "semisync".into(),
        deterministic: true,
        n_procs: 6,
        ops: 400,
        completed: 400,
        makespan: 12345,
        throughput_kops: 32.5,
        lat_mean: 44.25,
        lat_p50: 40,
        lat_p95: 90,
        lat_p99: 120,
        lat_max: 250,
        hops_mean: 2.5,
        msgs_total: 4000,
        msgs_per_op: 10.0,
        splits: 12,
        split_msgs: 24,
        msgs_per_split: 2.0,
        copies: 3,
        paper_msgs_per_split: 2,
        merges: 3,
        live_nodes: 42,
        seg_queueing: 0.5,
        seg_transit: 0.25,
        seg_service: 0.125,
        seg_stall: 0.125,
        offpath_per_op: 1.5,
        profiled: 400,
        prof_skipped: 0,
        prof_inexact: 0,
        events_total: 48000,
        events_per_sec: 1500000.5,
    }
}

/// The `BENCH.json` schema is frozen by a golden file, exactly like the
/// trace schema: changing the field set, order, or encodings must be a
/// deliberate commit that updates `tests/golden/bench_schema.json`.
#[test]
fn bench_json_schema_is_pinned() {
    let report = BenchReport {
        cells: vec![golden_cell()],
    };
    assert_eq!(
        report.to_json(),
        GOLDEN,
        "BENCH.json schema drifted; if intentional, update \
         tests/golden/bench_schema.json in the same commit"
    );
}

#[test]
fn report_roundtrips_through_json() {
    let mut other = golden_cell();
    other.id = "golden-threaded".into();
    other.runtime = "threaded".into();
    other.deterministic = false;
    other.profiled = 0;
    let report = BenchReport {
        cells: vec![golden_cell(), other],
    };
    let parsed = BenchReport::parse(&report.to_json()).expect("parse own output");
    assert_eq!(parsed, report);
}

#[test]
fn parse_rejects_foreign_documents() {
    assert!(BenchReport::parse("{\"schema\":\"other\",\"cells\":[]}").is_err());
    assert!(CellResult::from_json("{\"id\":\"x\"}").is_err());
}

#[test]
fn gate_is_quiet_on_identical_reports() {
    let report = BenchReport {
        cells: vec![golden_cell()],
    };
    assert!(compare(&report, &report, &GateCfg::default()).is_empty());
}

#[test]
fn gate_catches_each_regression_direction() {
    let base = BenchReport {
        cells: vec![golden_cell()],
    };
    let gate = GateCfg::default();

    // 2x latency: over any sane tolerance.
    let mut slow = base.clone();
    slow.cells[0].lat_mean *= 2.0;
    slow.cells[0].lat_p99 *= 2;
    let regs = compare(&slow, &base, &gate);
    assert!(regs.iter().any(|r| r.metric == "lat_mean"), "{regs:?}");
    assert!(regs.iter().any(|r| r.metric == "lat_p99"), "{regs:?}");

    // Halved throughput (lower-is-worse direction).
    let mut starved = base.clone();
    starved.cells[0].throughput_kops /= 2.0;
    assert!(compare(&starved, &base, &gate)
        .iter()
        .any(|r| r.metric == "throughput_kops"));

    // A lost op is a regression with zero tolerance.
    let mut lossy = base.clone();
    lossy.cells[0].completed -= 1;
    assert!(compare(&lossy, &base, &gate)
        .iter()
        .any(|r| r.metric == "completed"));

    // Small wobbles within rel+abs pass.
    let mut wobble = base.clone();
    wobble.cells[0].lat_mean *= 1.1;
    wobble.cells[0].throughput_kops *= 0.95;
    assert!(compare(&wobble, &base, &gate).is_empty());

    // A missing cell and an op-count drift are both flagged.
    let empty = BenchReport::default();
    assert!(compare(&empty, &base, &gate)
        .iter()
        .any(|r| r.metric == "present"));
    let mut drifted = base.clone();
    drifted.cells[0].ops += 1;
    assert!(compare(&drifted, &base, &gate)
        .iter()
        .any(|r| r.metric == "ops"));
}

#[test]
fn nondeterministic_cells_are_not_gated() {
    let mut base = golden_cell();
    base.deterministic = false;
    let base = BenchReport { cells: vec![base] };
    let mut noisy = base.clone();
    noisy.cells[0].lat_mean *= 10.0;
    noisy.cells[0].throughput_kops /= 10.0;
    assert!(compare(&noisy, &base, &GateCfg::default()).is_empty());
}

fn tiny_cell(structure: Structure) -> CellSpec {
    CellSpec {
        id: "tiny",
        structure,
        runtime: RuntimeKind::Sim,
        drive: DriveMode::Closed(4),
        network: Network::Clean,
        protocol: match structure {
            Structure::Blink => Proto::SemiSync,
            Structure::Dhash => Proto::Lazy,
        },
        ops: 60,
        seed: 21,
        n_procs: 4,
        preload: 40,
        copies: 3,
        service_time: 2,
        service_override: None,
        origins: 4,
        mix: Mix {
            search_fraction: 0.25,
            ..Mix::INSERT_ONLY
        },
        key_space: 20_000,
        merge: false,
        fanout: 8,
        profile: true,
    }
}

/// A cell row with the one wall-clock field zeroed, for byte-determinism
/// comparisons: everything else in a sim cell must reproduce exactly.
fn masked(mut r: CellResult) -> CellResult {
    r.events_per_sec = 0.0;
    r
}

/// ACCEPTANCE: a real simulator cell re-runs bit-identically (so the gate
/// passes against itself exactly), and injecting a 2x latency regression
/// into the measurements trips the gate.
#[test]
fn real_cell_is_deterministic_and_gateable() {
    let spec = tiny_cell(Structure::Blink);
    let a = run_cell(&spec);
    let b = run_cell(&spec);
    assert_eq!(
        masked(a.result.clone()).to_json(),
        masked(b.result.clone()).to_json(),
        "identical sim cells must measure identically"
    );
    assert_eq!(a.folded_paths, b.folded_paths);

    let base = BenchReport {
        cells: vec![a.result.clone()],
    };
    let rerun = BenchReport {
        cells: vec![b.result],
    };
    let gate = GateCfg::default();
    assert!(compare(&rerun, &base, &gate).is_empty());

    let mut regressed = base.clone();
    regressed.cells[0].lat_mean *= 2.0;
    regressed.cells[0].lat_p50 *= 2;
    regressed.cells[0].lat_p95 *= 2;
    regressed.cells[0].lat_p99 *= 2;
    regressed.cells[0].throughput_kops /= 2.0;
    let regs = compare(&regressed, &base, &gate);
    assert!(
        regs.iter().any(|r| r.metric == "lat_mean")
            && regs.iter().any(|r| r.metric == "throughput_kops"),
        "2x latency injection must trip the gate: {regs:?}"
    );
}

/// Chaos cells — crash + restart with the detector and retry layer on —
/// are still pure functions of their spec (every timer, backoff jitter,
/// and anti-entropy exchange is seeded), still complete every operation,
/// and therefore gate exactly like the clean cells.
#[test]
fn chaos_cell_is_deterministic_and_completes() {
    for structure in [Structure::Blink, Structure::Dhash] {
        let spec = CellSpec {
            network: Network::Chaos,
            ..tiny_cell(structure)
        };
        let a = run_cell(&spec);
        let b = run_cell(&spec);
        assert_eq!(
            masked(a.result.clone()).to_json(),
            masked(b.result.clone()).to_json(),
            "{structure:?}: identical chaos cells must measure identically"
        );
        assert_eq!(
            a.result.completed, a.result.ops,
            "{structure:?}: the retry layer must land every operation"
        );
        assert!(a.result.deterministic, "{structure:?}: chaos is sim-only");
    }
}

/// The profiler output embedded in a cell is internally consistent: every
/// completed op is either profiled or counted skipped, every profiled op
/// decomposes exactly, and the segment shares partition the latency.
#[test]
fn cell_profile_is_consistent() {
    for structure in [Structure::Blink, Structure::Dhash] {
        let out = run_cell(&tiny_cell(structure));
        let r = &out.result;
        assert_eq!(r.completed, r.ops, "{structure:?}: closed loop completes");
        assert_eq!(
            r.profiled + r.prof_skipped,
            r.completed,
            "{structure:?}: every op profiled or skipped"
        );
        assert!(r.profiled > 0, "{structure:?}: profiler found the ops");
        assert_eq!(r.prof_inexact, 0, "{structure:?}: clean cells are exact");
        let sum = r.seg_queueing + r.seg_transit + r.seg_service + r.seg_stall;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "{structure:?}: segment shares partition latency (sum {sum})"
        );
        assert!(!out.folded_paths.is_empty());
        // Folded-path weights conserve total latency: their sum is the
        // summed latency the shares are fractions of.
        let folded_total: u64 = out
            .folded_paths
            .lines()
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, w)| w.parse::<u64>().ok()))
            .sum();
        assert!(folded_total > 0);
    }
}

/// The delete-heavy reclamation cell from the real smoke matrix — merge
/// races, retirements, scans across retired nodes and all — is
/// byte-identical across two in-process runs: every field of the row
/// except the wall-clock `events_per_sec`, and the complete folded
/// profiler outputs. This is the cell the regression gate leans on for
/// reclamation metrics, so its determinism is what makes that gate
/// noise-proof on shared runners.
#[test]
fn smoke_delete_cell_is_byte_identical_across_runs() {
    let specs = matrix(true);
    let spec = specs
        .iter()
        .find(|s| s.id == "blink-sim-closed-deletes")
        .expect("smoke matrix carries the delete-churn cell");
    let a = run_cell(spec);
    let b = run_cell(spec);
    assert!(a.result.deterministic, "sim cells are deterministic");
    assert_eq!(
        masked(a.result.clone()).to_json(),
        masked(b.result.clone()).to_json(),
        "delete-churn cell rows must reproduce byte-for-byte"
    );
    assert_eq!(a.folded_paths, b.folded_paths);
    assert_eq!(a.folded_waits, b.folded_waits);
    assert!(a.result.merges > 0, "the cell must exercise merge-at-empty");
}

/// The committed smoke baseline matches the smoke matrix cell-for-cell.
#[test]
fn committed_baseline_covers_the_smoke_matrix() {
    let text = include_str!("../../../BENCH_BASELINE.json");
    let baseline = BenchReport::parse(text).expect("parse committed baseline");
    let specs = matrix(true);
    assert_eq!(baseline.cells.len(), specs.len());
    for spec in specs {
        let cell = baseline
            .cells
            .iter()
            .find(|c| c.id == spec.id)
            .unwrap_or_else(|| panic!("baseline missing cell {}", spec.id));
        assert_eq!(cell.ops, spec.ops as u64, "{}: op count drifted", spec.id);
        assert!(cell.deterministic, "{}: smoke cells are sim-only", spec.id);
    }
}
