//! # blink — sequential B-link tree and B+-tree baseline
//!
//! The dB-tree (the paper's distributed search structure) is "the B-link tree
//! algorithm as a distributed protocol". This crate implements the
//! shared-memory ancestor faithfully:
//!
//! * [`BLinkTree`] — a Lehman–Yao / Sagiv B-link tree: every node carries a
//!   key range and a right-sibling link; inserts split nodes with the
//!   *half-split* of Fig 1 and complete the split at the parent afterwards.
//!   Operations that misnavigate into a half-split node recover by chasing
//!   the right link; the tree is navigable at all times.
//! * [`BPlusTree`] — a classic B+-tree with synchronous top-down splits, the
//!   comparison point for the half-split discipline.
//!
//! Key and range vocabulary ([`Key`], [`KeyRange`]) is shared with the
//! distributed `dbtree` crate.

#![warn(missing_docs)]

mod bplus;
mod check;
mod key;
mod node;
mod tree;

pub use bplus::BPlusTree;
pub use check::{check_blink, check_bplus, CheckError};
pub use key::{Key, KeyRange};
pub use node::{Node, NodeRef, MIN_FANOUT};
pub use tree::{BLinkTree, TreeStats};
