//! Classic B+-tree baseline with synchronous top-down splits.
//!
//! This is the "standard B-tree insertion algorithm" the paper contrasts the
//! half-split against: a split inserts into the parent *within the same
//! atomic step*, so the structure is never observable mid-split — at the cost
//! of holding the whole split path at once. In the distributed setting the
//! analogous discipline is the vigorous, synchronizing protocol.

use crate::node::MIN_FANOUT;
use crate::Key;

#[derive(Clone, Debug)]
enum BpNode {
    Leaf {
        entries: Vec<(Key, u64)>,
        next: Option<usize>,
    },
    Interior {
        /// Router entries: `(lowest key of child subtree, child index)`.
        entries: Vec<(Key, usize)>,
    },
}

/// A classic B+-tree mapping `u64 → u64`.
pub struct BPlusTree {
    nodes: Vec<BpNode>,
    root: usize,
    fanout: usize,
    len: u64,
    splits: u64,
}

impl BPlusTree {
    /// An empty tree whose nodes hold at most `fanout` entries.
    ///
    /// # Panics
    /// If `fanout < MIN_FANOUT`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout >= MIN_FANOUT, "fanout must be at least {MIN_FANOUT}");
        BPlusTree {
            nodes: vec![BpNode::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            root: 0,
            fanout,
            len: 0,
            splits: 0,
        }
    }

    /// Number of live key/value pairs.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Splits performed so far.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Look up `key`.
    pub fn get(&self, key: Key) -> Option<u64> {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                BpNode::Leaf { entries, .. } => {
                    return entries
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|i| entries[i].1);
                }
                BpNode::Interior { entries } => {
                    cur = route(entries, key);
                }
            }
        }
    }

    /// Insert `key → value`; returns `true` if the key was new.
    pub fn insert(&mut self, key: Key, value: u64) -> bool {
        let (is_new, promo) = self.insert_rec(self.root, key, value);
        if is_new {
            self.len += 1;
        }
        if let Some((sep, right)) = promo {
            // Root split: grow the tree. The leftmost router must carry the
            // subtree's lower *bound* (0), not its current lowest key —
            // otherwise keys below that key collect in child 0 and a later
            // split there can promote a separator that collides with an
            // existing router.
            let new_root = BpNode::Interior {
                entries: vec![(0, self.root), (sep, right)],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
        is_new
    }

    fn insert_rec(&mut self, cur: usize, key: Key, value: u64) -> (bool, Option<(Key, usize)>) {
        match &mut self.nodes[cur] {
            BpNode::Leaf { entries, .. } => {
                let is_new = match entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        entries[i].1 = value;
                        false
                    }
                    Err(i) => {
                        entries.insert(i, (key, value));
                        true
                    }
                };
                (is_new, self.maybe_split_leaf(cur))
            }
            BpNode::Interior { entries } => {
                let child = route(entries, key);
                let (is_new, promo) = self.insert_rec(child, key, value);
                if let Some((sep, right)) = promo {
                    let BpNode::Interior { entries } = &mut self.nodes[cur] else {
                        unreachable!()
                    };
                    let pos = entries
                        .binary_search_by_key(&sep, |e| e.0)
                        .expect_err("separator must be new");
                    entries.insert(pos, (sep, right));
                }
                (is_new, self.maybe_split_interior(cur))
            }
        }
    }

    fn maybe_split_leaf(&mut self, cur: usize) -> Option<(Key, usize)> {
        let fanout = self.fanout;
        let new_index = self.nodes.len();
        let BpNode::Leaf { entries, next } = &mut self.nodes[cur] else {
            unreachable!()
        };
        if entries.len() <= fanout {
            return None;
        }
        let mid = entries.len() / 2;
        let sep = entries[mid].0;
        let right_entries = entries.split_off(mid);
        let right = BpNode::Leaf {
            entries: right_entries,
            next: *next,
        };
        *next = Some(new_index);
        self.nodes.push(right);
        self.splits += 1;
        Some((sep, new_index))
    }

    fn maybe_split_interior(&mut self, cur: usize) -> Option<(Key, usize)> {
        let fanout = self.fanout;
        let new_index = self.nodes.len();
        let BpNode::Interior { entries } = &mut self.nodes[cur] else {
            unreachable!()
        };
        if entries.len() <= fanout {
            return None;
        }
        let mid = entries.len() / 2;
        let sep = entries[mid].0;
        let right_entries = entries.split_off(mid);
        self.nodes.push(BpNode::Interior {
            entries: right_entries,
        });
        self.splits += 1;
        Some((sep, new_index))
    }

    /// All `(key, value)` pairs in `[from, to)`, in key order.
    pub fn range_scan(&self, from: Key, to: Option<Key>) -> Vec<(Key, u64)> {
        // Descend to the leaf containing `from`.
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                BpNode::Leaf { .. } => break,
                BpNode::Interior { entries } => cur = route(entries, from),
            }
        }
        let mut out = Vec::new();
        let mut next = Some(cur);
        while let Some(i) = next {
            let BpNode::Leaf { entries, next: n } = &self.nodes[i] else {
                unreachable!()
            };
            for &(k, v) in entries {
                if k < from {
                    continue;
                }
                if let Some(t) = to {
                    if k >= t {
                        return out;
                    }
                }
                out.push((k, v));
            }
            next = *n;
        }
        out
    }

    pub(crate) fn visit<'a>(&'a self) -> (usize, impl Fn(usize) -> BpView<'a>) {
        let nodes = &self.nodes;
        (self.root, move |i: usize| match &nodes[i] {
            BpNode::Leaf { entries, .. } => BpView::Leaf(entries),
            BpNode::Interior { entries } => BpView::Interior(entries),
        })
    }
}

/// Read-only view used by the validator.
pub(crate) enum BpView<'a> {
    Leaf(&'a [(Key, u64)]),
    Interior(&'a [(Key, usize)]),
}

fn route(entries: &[(Key, usize)], key: Key) -> usize {
    match entries.binary_search_by_key(&key, |e| e.0) {
        Ok(i) => entries[i].1,
        Err(0) => entries[0].1, // below the first router: clamp left
        Err(i) => entries[i - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_bplus;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new(4);
        for k in 0..500u64 {
            assert!(t.insert(k * 13 % 500, k));
        }
        check_bplus(&t).expect("valid");
        for k in 0..500u64 {
            assert!(t.get(k).is_some());
        }
        assert_eq!(t.get(500), None);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut t = BPlusTree::new(4);
        t.insert(1, 1);
        assert!(!t.insert(1, 2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(2));
    }

    #[test]
    fn scan_matches_blink() {
        let mut bp = BPlusTree::new(6);
        let mut bl = crate::BLinkTree::new(6);
        for k in 0..300u64 {
            let key = (k * 31) % 1000;
            bp.insert(key, k);
            bl.insert(key, k);
        }
        assert_eq!(bp.range_scan(100, Some(600)), bl.range_scan(100, Some(600)));
    }

    #[test]
    fn splits_happen() {
        let mut t = BPlusTree::new(4);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        assert!(t.splits() >= 20);
        check_bplus(&t).expect("valid");
    }
}
