//! Structural validators.
//!
//! These encode the well-formedness invariants of each structure and are run
//! by tests (including the property-based ones) after every workload.

use std::collections::BTreeSet;

use crate::bplus::BpView;
use crate::node::NodeRef;
use crate::{BLinkTree, BPlusTree, Key};

/// Why a structure failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// Entries in a node are not strictly sorted.
    Unsorted(String),
    /// An entry's key is outside its node's range.
    OutOfRange(String),
    /// Sibling ranges do not abut / chain does not reach +∞.
    BrokenChain(String),
    /// An interior node routes incorrectly.
    BadRouter(String),
    /// Levels are inconsistent (e.g. child level != parent level - 1).
    BadLevel(String),
    /// Keys reachable via the leaf chain differ from keys reachable from the
    /// root.
    Unreachable(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Unsorted(s) => write!(f, "unsorted: {s}"),
            CheckError::OutOfRange(s) => write!(f, "out of range: {s}"),
            CheckError::BrokenChain(s) => write!(f, "broken sibling chain: {s}"),
            CheckError::BadRouter(s) => write!(f, "bad router: {s}"),
            CheckError::BadLevel(s) => write!(f, "bad level: {s}"),
            CheckError::Unreachable(s) => write!(f, "unreachable keys: {s}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Validate a [`BLinkTree`]:
/// strict sorting, range containment, per-level sibling chains that tile the
/// key space, correct child levels, and agreement between root-reachable and
/// chain-reachable leaf keys.
pub fn check_blink(tree: &BLinkTree) -> Result<(), CheckError> {
    // Per-node checks.
    for (r, node) in tree.nodes() {
        let mut prev: Option<Key> = None;
        for &(k, _) in &node.entries {
            if let Some(p) = prev {
                if k <= p {
                    return Err(CheckError::Unsorted(format!("node {r:?} keys {p} !< {k}")));
                }
            }
            prev = Some(k);
            if !node.range.contains(k) {
                return Err(CheckError::OutOfRange(format!(
                    "node {r:?} key {k} outside {:?}",
                    node.range
                )));
            }
        }
        if !node.is_leaf() {
            match node.entries.first() {
                Some(&(k, _)) if k == node.range.low => {}
                Some(&(k, _)) => {
                    return Err(CheckError::BadRouter(format!(
                        "node {r:?} first router {k} != low {}",
                        node.range.low
                    )))
                }
                None => {
                    return Err(CheckError::BadRouter(format!("empty interior node {r:?}")));
                }
            }
            // Child levels.
            for &(_, c) in &node.entries {
                let child = tree.node(NodeRef(c as u32));
                if child.level + 1 != node.level {
                    return Err(CheckError::BadLevel(format!(
                        "node {r:?} level {} has child level {}",
                        node.level, child.level
                    )));
                }
            }
        }
    }

    // Per-level chains: walk right links from each level's leftmost node.
    let root = tree.node(tree.root());
    let mut level_start = tree.root();
    for level in (0..=root.level).rev() {
        // Descend to leftmost node of `level`.
        let mut cur = level_start;
        while tree.node(cur).level > level {
            let n = tree.node(cur);
            let (_, c) = n
                .child_for(n.range.low)
                .ok_or_else(|| CheckError::BadRouter(format!("no low child in {cur:?}")))?;
            cur = NodeRef(c as u32);
        }
        level_start = cur;
        // Walk the chain.
        let mut prev_high = Some(tree.node(cur).range.low);
        let mut next = Some(cur);
        while let Some(r) = next {
            let n = tree.node(r);
            if n.level != level {
                return Err(CheckError::BadLevel(format!(
                    "chain at level {level} hit node {r:?} of level {}",
                    n.level
                )));
            }
            if Some(n.range.low) != prev_high {
                return Err(CheckError::BrokenChain(format!(
                    "level {level}: node {r:?} low {} != previous high {:?}",
                    n.range.low, prev_high
                )));
            }
            prev_high = n.range.high;
            next = n.right;
        }
        if prev_high.is_some() {
            return Err(CheckError::BrokenChain(format!(
                "level {level} chain ends at {prev_high:?}, not +inf"
            )));
        }
    }

    // Reachability: every key in the leaf chain must be findable from the
    // root by pure range-routing (a read-only version of `get`).
    let mut chain_keys: BTreeSet<Key> = BTreeSet::new();
    {
        let mut cur = tree.root();
        while !tree.node(cur).is_leaf() {
            let n = tree.node(cur);
            let (_, c) = n.child_for(n.range.low).unwrap();
            cur = NodeRef(c as u32);
        }
        let mut next = Some(cur);
        while let Some(r) = next {
            chain_keys.extend(tree.node(r).entries.iter().map(|e| e.0));
            next = tree.node(r).right;
        }
    }
    for &k in &chain_keys {
        let mut cur = tree.root();
        loop {
            let n = tree.node(cur);
            if n.range.is_right_of(k) {
                match n.right {
                    Some(r) => {
                        cur = r;
                        continue;
                    }
                    None => {
                        return Err(CheckError::Unreachable(format!(
                            "key {k} rightward of rightmost node"
                        )))
                    }
                }
            }
            if n.is_leaf() {
                if n.get(k).is_none() {
                    return Err(CheckError::Unreachable(format!(
                        "key {k} not in leaf {cur:?}"
                    )));
                }
                break;
            }
            let (_, c) = n
                .child_for(k)
                .ok_or_else(|| CheckError::BadRouter(format!("no route for {k} in {cur:?}")))?;
            cur = NodeRef(c as u32);
        }
    }
    Ok(())
}

/// Validate a [`BPlusTree`]: sorted entries, correct routing separators, and
/// uniform leaf depth.
pub fn check_bplus(tree: &BPlusTree) -> Result<(), CheckError> {
    let (root, view) = tree.visit();
    let mut leaf_depths = BTreeSet::new();
    check_bplus_rec(&view, root, None, None, 0, &mut leaf_depths)?;
    if leaf_depths.len() > 1 {
        return Err(CheckError::BadLevel(format!(
            "leaves at multiple depths: {leaf_depths:?}"
        )));
    }
    Ok(())
}

fn check_bplus_rec<'a>(
    view: &impl Fn(usize) -> BpView<'a>,
    node: usize,
    low: Option<Key>,
    high: Option<Key>,
    depth: usize,
    leaf_depths: &mut BTreeSet<usize>,
) -> Result<(), CheckError> {
    let in_bounds = |k: Key| low.is_none_or(|l| k >= l) && high.is_none_or(|h| k < h);
    match view(node) {
        BpView::Leaf(entries) => {
            leaf_depths.insert(depth);
            let mut prev = None;
            for &(k, _) in entries {
                if let Some(p) = prev {
                    if k <= p {
                        return Err(CheckError::Unsorted(format!("leaf {node}: {p} !< {k}")));
                    }
                }
                prev = Some(k);
                if !in_bounds(k) {
                    return Err(CheckError::OutOfRange(format!(
                        "leaf {node} key {k} outside [{low:?},{high:?})"
                    )));
                }
            }
        }
        BpView::Interior(entries) => {
            if entries.is_empty() {
                return Err(CheckError::BadRouter(format!("empty interior {node}")));
            }
            let mut prev = None;
            for (i, &(k, child)) in entries.iter().enumerate() {
                if let Some(p) = prev {
                    if k <= p {
                        return Err(CheckError::Unsorted(format!("interior {node}: {p} !< {k}")));
                    }
                }
                prev = Some(k);
                let child_low = if i == 0 { low } else { Some(k) };
                let child_high = entries.get(i + 1).map(|e| e.0).or(high);
                check_bplus_rec(view, child, child_low, child_high, depth + 1, leaf_depths)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BLinkTree;

    #[test]
    fn empty_trees_are_valid() {
        check_blink(&BLinkTree::new(4)).unwrap();
        check_bplus(&BPlusTree::new(4)).unwrap();
    }

    #[test]
    fn populated_trees_are_valid() {
        let mut bl = BLinkTree::new(5);
        let mut bp = BPlusTree::new(5);
        for k in 0..2000u64 {
            let key = (k * 2654435761) % 100_000;
            bl.insert(key, k);
            bp.insert(key, k);
        }
        check_blink(&bl).unwrap();
        check_bplus(&bp).unwrap();
    }
}
