//! The sequential B-link tree.

use crate::node::{Node, NodeRef, MIN_FANOUT};
use crate::{Key, KeyRange};

/// Counters describing the work a [`BLinkTree`] has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Times an operation crossed a right link after misnavigating into a
    /// node whose range had shrunk (the Fig 1 recovery path).
    pub link_chases: u64,
    /// Half-splits performed.
    pub splits: u64,
    /// Root splits (tree height increases).
    pub root_splits: u64,
}

/// A sequential B-link tree (Lehman–Yao / Sagiv).
///
/// Inserts use the half-split discipline of Fig 1: the overflowing node is
/// split and linked to its new sibling first, and only then is the split
/// *completed* by inserting a router into the parent. Between the two steps
/// the tree is fully navigable through right links. This is the local
/// algorithm the dB-tree distributes.
pub struct BLinkTree {
    nodes: Vec<Node>,
    root: NodeRef,
    fanout: usize,
    len: u64,
    stats: TreeStats,
}

impl BLinkTree {
    /// An empty tree whose nodes hold at most `fanout` entries.
    ///
    /// # Panics
    /// If `fanout < MIN_FANOUT`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout >= MIN_FANOUT, "fanout must be at least {MIN_FANOUT}");
        BLinkTree {
            nodes: vec![Node::new(0, KeyRange::ALL)],
            root: NodeRef(0),
            fanout,
            len: 0,
            stats: TreeStats::default(),
        }
    }

    /// Number of live key/value pairs.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (leaf-only tree has height 1).
    pub fn height(&self) -> u8 {
        self.node(self.root).level + 1
    }

    /// Total allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Work counters.
    pub fn stats(&self) -> TreeStats {
        self.stats
    }

    /// The arena reference of the current root.
    pub fn root(&self) -> NodeRef {
        self.root
    }

    /// Borrow a node by reference.
    pub fn node(&self, r: NodeRef) -> &Node {
        &self.nodes[r.index()]
    }

    fn node_mut(&mut self, r: NodeRef) -> &mut Node {
        &mut self.nodes[r.index()]
    }

    fn alloc(&mut self, node: Node) -> NodeRef {
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(node);
        r
    }

    /// Look up `key`.
    pub fn get(&mut self, key: Key) -> Option<u64> {
        let mut cur = self.root;
        loop {
            let node = &self.nodes[cur.index()];
            if node.range.is_right_of(key) {
                self.stats.link_chases += 1;
                cur = node.right.expect("in-range key beyond a rightmost node");
                continue;
            }
            if node.is_leaf() {
                return node.get(key);
            }
            let (_, child) = node
                .child_for(key)
                .expect("interior node routes all in-range keys");
            cur = NodeRef(child as u32);
        }
    }

    /// Insert `key → value`; returns `true` if the key was new.
    pub fn insert(&mut self, key: Key, value: u64) -> bool {
        // Descend, recording the path for split completion.
        let mut path: Vec<NodeRef> = Vec::with_capacity(self.height() as usize);
        let mut cur = self.root;
        loop {
            let node = &self.nodes[cur.index()];
            if node.range.is_right_of(key) {
                self.stats.link_chases += 1;
                cur = node.right.expect("in-range key beyond a rightmost node");
                continue;
            }
            if node.is_leaf() {
                break;
            }
            path.push(cur);
            let (_, child) = node
                .child_for(key)
                .expect("interior node routes all in-range keys");
            cur = NodeRef(child as u32);
        }

        let is_new = self.node_mut(cur).upsert(key, value);
        if is_new {
            self.len += 1;
        }
        self.restructure(cur, path);
        is_new
    }

    /// Complete any overflows from `cur` upward (Fig 1 step two, applied
    /// recursively).
    fn restructure(&mut self, mut cur: NodeRef, mut path: Vec<NodeRef>) {
        while self.node(cur).len() > self.fanout {
            // Half-split `cur`.
            let sib = {
                let fanout_level;
                let (sep, sib_range, sib_entries, old_right) = {
                    let node = self.node_mut(cur);
                    fanout_level = node.level;
                    let (sep, sib_range, sib_entries) = node.half_split();
                    (sep, sib_range, sib_entries, node.right)
                };
                let mut sib_node = Node::new(fanout_level, sib_range);
                sib_node.entries = sib_entries;
                sib_node.right = old_right;
                let sib = self.alloc(sib_node);
                self.node_mut(cur).right = Some(sib);
                self.stats.splits += 1;
                (sep, sib)
            };
            let (sep, sib) = sib;

            // Complete the split at the parent.
            match path.pop() {
                Some(mut parent) => {
                    // The parent may itself have split since we descended:
                    // chase right links until `sep` is in range.
                    while self.node(parent).range.is_right_of(sep) {
                        self.stats.link_chases += 1;
                        parent = self
                            .node(parent)
                            .right
                            .expect("separator beyond rightmost parent");
                    }
                    self.node_mut(parent).upsert(sep, sib.0 as u64);
                    cur = parent;
                }
                None => {
                    // `cur` was the root: grow the tree.
                    let old_root = cur;
                    let level = self.node(old_root).level + 1;
                    let low = self.node(old_root).range.low;
                    let mut root = Node::new(level, KeyRange::new(low, None));
                    root.upsert(low, old_root.0 as u64);
                    root.upsert(sep, sib.0 as u64);
                    self.root = self.alloc(root);
                    self.stats.root_splits += 1;
                    return;
                }
            }
        }
    }

    /// Iterate `(key, value)` pairs in `[from, to)` in key order, walking the
    /// leaf chain through right links.
    pub fn range_scan(&self, from: Key, to: Option<Key>) -> Vec<(Key, u64)> {
        // Find the leaf containing `from` without mutating stats.
        let mut cur = self.root;
        loop {
            let node = self.node(cur);
            if node.range.is_right_of(from) {
                cur = node.right.expect("in-range key beyond a rightmost node");
                continue;
            }
            if node.is_leaf() {
                break;
            }
            let (_, child) = node
                .child_for(from)
                .expect("interior node routes all in-range keys");
            cur = NodeRef(child as u32);
        }
        let mut out = Vec::new();
        let mut next = Some(cur);
        while let Some(r) = next {
            let node = self.node(r);
            for &(k, v) in &node.entries {
                if k < from {
                    continue;
                }
                if let Some(t) = to {
                    if k >= t {
                        return out;
                    }
                }
                out.push((k, v));
            }
            next = node.right;
        }
        out
    }

    /// Visit every node (for validators and size accounting).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeRef, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeRef(i as u32), n))
    }

    /// Maximum entries per node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_blink;

    #[test]
    fn insert_and_get_small() {
        let mut t = BLinkTree::new(4);
        assert!(t.insert(5, 50));
        assert!(t.insert(1, 10));
        assert!(!t.insert(5, 55), "overwrite");
        assert_eq!(t.get(5), Some(55));
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn grows_and_stays_valid() {
        let mut t = BLinkTree::new(4);
        for k in 0..1000u64 {
            t.insert(k * 7 % 1000, k);
        }
        check_blink(&t).expect("valid tree");
        assert!(t.height() > 2, "tree grew: height {}", t.height());
        for k in 0..1000u64 {
            assert!(t.get(k * 7 % 1000).is_some(), "key {k} present");
        }
    }

    #[test]
    fn descending_inserts() {
        let mut t = BLinkTree::new(8);
        for k in (0..500u64).rev() {
            t.insert(k, k);
        }
        check_blink(&t).expect("valid tree");
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(0), Some(0));
        assert_eq!(t.get(499), Some(499));
    }

    #[test]
    fn range_scan_ordered() {
        let mut t = BLinkTree::new(4);
        for k in 0..200u64 {
            t.insert(k * 3, k);
        }
        let got = t.range_scan(30, Some(90));
        let keys: Vec<Key> = got.iter().map(|e| e.0).collect();
        let expect: Vec<Key> = (10..30).map(|k| k * 3).collect();
        assert_eq!(keys, expect);
        // Unbounded scan returns everything from `from` on.
        assert_eq!(t.range_scan(0, None).len(), 200);
    }

    #[test]
    fn splits_counted() {
        let mut t = BLinkTree::new(4);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let s = t.stats();
        assert!(s.splits >= 20, "many splits: {}", s.splits);
        assert!(s.root_splits >= 1);
    }

    #[test]
    fn leaf_chain_covers_key_space() {
        let mut t = BLinkTree::new(4);
        for k in 0..300u64 {
            t.insert(k, k);
        }
        // Walk the level-0 chain from the leftmost leaf.
        let mut cur = t.root();
        while !t.node(cur).is_leaf() {
            let (_, c) = t.node(cur).child_for(t.node(cur).range.low).unwrap();
            cur = NodeRef(c as u32);
        }
        let mut count = 0;
        let mut next = Some(cur);
        let mut prev_high: Option<Key> = Some(0);
        while let Some(r) = next {
            let n = t.node(r);
            assert_eq!(Some(n.range.low), prev_high, "ranges abut");
            prev_high = n.range.high;
            count += n.len();
            next = n.right;
        }
        assert_eq!(count, 300);
        assert_eq!(prev_high, None, "chain ends at +inf");
    }
}
