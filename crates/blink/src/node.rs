//! B-link tree nodes.

use crate::{Key, KeyRange};

/// Smallest supported fanout. Below this, a split cannot leave both halves
/// non-empty with room to grow.
pub const MIN_FANOUT: usize = 4;

/// Index of a node in the tree's arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeRef(pub u32);

impl NodeRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// One B-link tree node.
///
/// Interior nodes store router entries `(sep, child)` where `sep` is the
/// lowest key of the child's subtree: the child for `key` is the entry with
/// the greatest `sep <= key`. Leaves store `(key, value)` pairs. Both kinds
/// carry the node's key range and right-sibling link (the B-link invariant:
/// everything that left this node through a split is reachable rightward).
#[derive(Clone, Debug)]
pub struct Node {
    /// Distance to the leaf level (leaves are level 0).
    pub level: u8,
    /// The key interval this node is responsible for.
    pub range: KeyRange,
    /// Sorted entries: router separators or leaf keys, with payloads.
    pub entries: Vec<(Key, u64)>,
    /// Right sibling at the same level, if any.
    pub right: Option<NodeRef>,
}

impl Node {
    /// A fresh empty node.
    pub fn new(level: u8, range: KeyRange) -> Self {
        Node {
            level,
            range,
            entries: Vec::new(),
            right: None,
        }
    }

    /// Is this a leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Binary-search position of `key`.
    #[inline]
    pub fn position(&self, key: Key) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k)
    }

    /// Leaf lookup: the value stored under `key`, if present.
    pub fn get(&self, key: Key) -> Option<u64> {
        debug_assert!(self.is_leaf());
        self.position(key).ok().map(|i| self.entries[i].1)
    }

    /// Insert or overwrite `(key, payload)`, keeping entries sorted.
    /// Returns `true` if the key was new.
    pub fn upsert(&mut self, key: Key, payload: u64) -> bool {
        match self.position(key) {
            Ok(i) => {
                self.entries[i].1 = payload;
                false
            }
            Err(i) => {
                self.entries.insert(i, (key, payload));
                true
            }
        }
    }

    /// Router lookup: the child responsible for `key`.
    ///
    /// `key` must be within `range` (callers handle right-link routing first).
    /// The first entry of an interior node always has `sep == range.low`, so
    /// a match always exists in a well-formed node.
    pub fn child_for(&self, key: Key) -> Option<(Key, u64)> {
        debug_assert!(!self.is_leaf());
        debug_assert!(self.range.contains(key));
        match self.position(key) {
            Ok(i) => Some(self.entries[i]),
            Err(0) => None, // malformed: no router at or below key
            Err(i) => Some(self.entries[i - 1]),
        }
    }

    /// Half-split: keep the low half here, return the new right sibling's
    /// `(range, entries)` and the separator key.
    ///
    /// This is step one of Fig 1: the caller links the sibling into the node
    /// list and later completes the split at the parent.
    pub fn half_split(&mut self) -> (Key, KeyRange, Vec<(Key, u64)>) {
        debug_assert!(self.len() >= 2, "cannot split a node with < 2 entries");
        let mid = self.len() / 2;
        let sep = self.entries[mid].0;
        let sib_entries = self.entries.split_off(mid);
        let (low_range, high_range) = self.range.split_at(sep);
        self.range = low_range;
        (sep, high_range, sib_entries)
    }

    /// Drop entries outside the node's (shrunk) range. Returns how many were
    /// discarded. Used when a replica applies a relayed split.
    pub fn retain_in_range(&mut self) -> usize {
        let before = self.len();
        let range = self.range;
        self.entries.retain(|&(k, _)| range.contains(k));
        before - self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_with(keys: &[Key]) -> Node {
        let mut n = Node::new(0, KeyRange::ALL);
        for &k in keys {
            n.upsert(k, k * 10);
        }
        n
    }

    #[test]
    fn upsert_sorted_and_overwrite() {
        let mut n = leaf_with(&[5, 1, 3]);
        assert_eq!(n.entries.iter().map(|e| e.0).collect::<Vec<_>>(), [1, 3, 5]);
        assert!(!n.upsert(3, 99), "overwrite is not new");
        assert_eq!(n.get(3), Some(99));
        assert_eq!(n.get(4), None);
    }

    #[test]
    fn child_routing() {
        let mut n = Node::new(1, KeyRange::new(0, Some(100)));
        n.upsert(0, 100); // child A covers [0,10)
        n.upsert(10, 200); // child B covers [10,50)
        n.upsert(50, 300); // child C covers [50,100)
        assert_eq!(n.child_for(0), Some((0, 100)));
        assert_eq!(n.child_for(9), Some((0, 100)));
        assert_eq!(n.child_for(10), Some((10, 200)));
        assert_eq!(n.child_for(99), Some((50, 300)));
    }

    #[test]
    fn half_split_partitions() {
        let mut n = leaf_with(&[1, 2, 3, 4, 5, 6]);
        let (sep, sib_range, sib_entries) = n.half_split();
        assert_eq!(sep, 4);
        assert_eq!(n.entries.iter().map(|e| e.0).collect::<Vec<_>>(), [1, 2, 3]);
        assert_eq!(
            sib_entries.iter().map(|e| e.0).collect::<Vec<_>>(),
            [4, 5, 6]
        );
        assert_eq!(n.range, KeyRange::new(0, Some(4)));
        assert_eq!(sib_range, KeyRange::new(4, None));
    }

    #[test]
    fn retain_in_range_discards() {
        let mut n = leaf_with(&[1, 5, 9]);
        n.range = KeyRange::new(0, Some(5));
        assert_eq!(n.retain_in_range(), 2);
        assert_eq!(n.entries, vec![(1, 10)]);
    }
}
