//! Keys and key ranges.

use std::fmt;

/// Keys are unsigned 64-bit integers.
///
/// The paper's protocols are agnostic to the key domain; a fixed integer key
/// keeps protocol messages `Copy` and comparisons trivial. Map richer keys
/// onto `u64` by order-preserving encoding if needed.
pub type Key = u64;

/// A half-open key interval `[low, high)`, with `high = None` meaning +∞.
///
/// Every B-link / dB-tree node owns a range. The *inreach* test of the
/// link-algorithm guidelines is `range.contains(key)`; an action arriving at
/// a node whose range no longer covers its key must be routed through the
/// right link.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub low: Key,
    /// Exclusive upper bound; `None` is +∞.
    pub high: Option<Key>,
}

impl KeyRange {
    /// The full key space `[0, +∞)`.
    pub const ALL: KeyRange = KeyRange { low: 0, high: None };

    /// `[low, high)`.
    pub fn new(low: Key, high: Option<Key>) -> Self {
        debug_assert!(high.is_none_or(|h| h >= low), "inverted range");
        KeyRange { low, high }
    }

    /// Does the range contain `key`?
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        key >= self.low && self.high.is_none_or(|h| key < h)
    }

    /// Is `key` at or beyond the upper bound (i.e. reachable only through the
    /// right link)?
    #[inline]
    pub fn is_right_of(&self, key: Key) -> bool {
        self.high.is_some_and(|h| key >= h)
    }

    /// Is `key` strictly below the lower bound?
    #[inline]
    pub fn is_left_of(&self, key: Key) -> bool {
        key < self.low
    }

    /// Split this range at `mid`, returning `([low, mid), [mid, high))`.
    ///
    /// `mid` must lie strictly inside the range.
    pub fn split_at(&self, mid: Key) -> (KeyRange, KeyRange) {
        debug_assert!(self.contains(mid) && mid > self.low, "mid inside range");
        (
            KeyRange::new(self.low, Some(mid)),
            KeyRange::new(mid, self.high),
        )
    }

    /// True if this range is empty (`low == high`).
    pub fn is_empty(&self) -> bool {
        self.high == Some(self.low)
    }

    /// Do `self` and `other` abut exactly (self.high == other.low)?
    pub fn abuts(&self, other: &KeyRange) -> bool {
        self.high == Some(other.low)
    }
}

impl fmt::Debug for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.high {
            Some(h) => write!(f, "[{}, {})", self.low, h),
            None => write!(f, "[{}, +inf)", self.low),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_half_open() {
        let r = KeyRange::new(10, Some(20));
        assert!(!r.contains(9));
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
    }

    #[test]
    fn unbounded_high() {
        let r = KeyRange::new(5, None);
        assert!(r.contains(u64::MAX));
        assert!(!r.is_right_of(u64::MAX));
        assert!(r.is_left_of(4));
    }

    #[test]
    fn split() {
        let r = KeyRange::new(0, Some(100));
        let (l, rr) = r.split_at(50);
        assert_eq!(l, KeyRange::new(0, Some(50)));
        assert_eq!(rr, KeyRange::new(50, Some(100)));
        assert!(l.abuts(&rr));
        let (l2, r2) = KeyRange::ALL.split_at(7);
        assert_eq!(l2.high, Some(7));
        assert_eq!(r2.high, None);
    }

    #[test]
    fn right_of() {
        let r = KeyRange::new(0, Some(10));
        assert!(r.is_right_of(10));
        assert!(r.is_right_of(11));
        assert!(!r.is_right_of(9));
    }

    #[test]
    fn empty_range() {
        assert!(KeyRange::new(5, Some(5)).is_empty());
        assert!(!KeyRange::new(5, Some(6)).is_empty());
        assert!(!KeyRange::new(5, None).is_empty());
    }
}
