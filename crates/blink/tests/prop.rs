//! Property-based tests for the sequential trees: model-checked against
//! `BTreeMap` and structurally validated after arbitrary workloads.

use std::collections::BTreeMap;

use blink::{check_blink, check_bplus, BLinkTree, BPlusTree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The B-link tree behaves exactly like a `BTreeMap` and stays
    /// structurally valid, for any insert sequence and fanout.
    #[test]
    fn blink_matches_btreemap(
        fanout in 4usize..32,
        ops in proptest::collection::vec((0u64..5_000, 0u64..1_000), 1..400),
    ) {
        let mut tree = BLinkTree::new(fanout);
        let mut model = BTreeMap::new();
        for &(k, v) in &ops {
            let was_new = tree.insert(k, v);
            let model_new = model.insert(k, v).is_none();
            prop_assert_eq!(was_new, model_new, "newness agrees for key {}", k);
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        check_blink(&tree).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (&k, &v) in &model {
            prop_assert_eq!(tree.get(k), Some(v));
        }
        // Absent keys are absent.
        for probe in [5_001u64, 9_999, u64::MAX] {
            prop_assert_eq!(tree.get(probe), model.get(&probe).copied());
        }
    }

    /// Range scans return exactly the model's range, in order.
    #[test]
    fn blink_scans_match_btreemap(
        fanout in 4usize..16,
        keys in proptest::collection::vec(0u64..2_000, 1..300),
        from in 0u64..2_000,
        width in 1u64..500,
    ) {
        let mut tree = BLinkTree::new(fanout);
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k * 3);
            model.insert(k, k * 3);
        }
        let to = from.saturating_add(width);
        let got = tree.range_scan(from, Some(to));
        let want: Vec<(u64, u64)> = model.range(from..to).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The classic B+-tree agrees with the model too (baseline sanity).
    #[test]
    fn bplus_matches_btreemap(
        fanout in 4usize..32,
        ops in proptest::collection::vec((0u64..5_000, 0u64..1_000), 1..400),
    ) {
        let mut tree = BPlusTree::new(fanout);
        let mut model = BTreeMap::new();
        for &(k, v) in &ops {
            tree.insert(k, v);
            model.insert(k, v);
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        check_bplus(&tree).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (&k, &v) in &model {
            prop_assert_eq!(tree.get(k), Some(v));
        }
    }

    /// The two trees are observationally equivalent on any workload.
    #[test]
    fn blink_and_bplus_agree(
        ops in proptest::collection::vec((0u64..1_000, 0u64..100), 1..200),
    ) {
        let mut a = BLinkTree::new(8);
        let mut b = BPlusTree::new(8);
        for &(k, v) in &ops {
            a.insert(k, v);
            b.insert(k, v);
        }
        prop_assert_eq!(a.range_scan(0, None), b.range_scan(0, None));
    }
}
