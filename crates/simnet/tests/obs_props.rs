//! Property tests of the observability primitives.
//!
//! The benchmark suite merges per-cell histograms into run-level
//! aggregates, so `Histogram::merge` must be *observation-equivalent* to
//! having recorded every sample into a single histogram: same count, min,
//! max, mean, and quantiles — with no dependence on how the samples were
//! split across the two halves.

use proptest::prelude::*;
use simnet::Histogram;

fn recorded(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// merge(a, b) observes exactly what record(a ++ b) observes.
    #[test]
    fn merge_is_observation_equivalent_to_recording(
        a in proptest::collection::vec(0u64..1_000_000, 0..64),
        b in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));

        let mut all = a.clone();
        all.extend_from_slice(&b);
        let single = recorded(&all);

        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert_eq!(merged.mean(), single.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                merged.quantile(q),
                single.quantile(q),
                "quantile {} diverges", q
            );
        }
    }

    /// Merging an empty histogram is the identity on every observable.
    #[test]
    fn merge_with_empty_is_identity(
        a in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let mut merged = recorded(&a);
        merged.merge(&Histogram::new());
        let plain = recorded(&a);
        prop_assert_eq!(merged.count(), plain.count());
        prop_assert_eq!(merged.min(), plain.min());
        prop_assert_eq!(merged.max(), plain.max());
        prop_assert_eq!(merged.mean(), plain.mean());
        for q in [0.0, 0.5, 1.0] {
            prop_assert_eq!(merged.quantile(q), plain.quantile(q));
        }
    }

    /// Extremes (0, u64::MAX) don't overflow the bucketing or the summary
    /// fields on either path.
    #[test]
    fn merge_handles_extremes(x in any::<u64>(), y in any::<u64>()) {
        let mut merged = recorded(&[x]);
        merged.merge(&recorded(&[y]));
        let single = recorded(&[x, y]);
        prop_assert_eq!(merged.count(), 2);
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert_eq!(merged.quantile(0.5), single.quantile(0.5));
    }
}
