//! Golden-file pin of the JSONL trace schema.
//!
//! External consumers (the `e15_trace_anatomy` experiment, ad-hoc jq
//! pipelines) parse the trace export line by line. This test freezes the
//! field set, field order, and value encodings against a committed golden
//! file: if `TraceEntry::to_json` changes shape, this fails and the change
//! has to be deliberate — update `golden/trace_schema.jsonl` in the same
//! commit and call out the schema break.

use simnet::{ProcId, SimTime, Trace, TraceEntry, TraceEvent};

const GOLDEN: &str = include_str!("golden/trace_schema.jsonl");

fn entry(
    at: u64,
    from: ProcId,
    to: ProcId,
    event: TraceEvent,
    kind: &'static str,
    span: Option<u64>,
    detail: &str,
) -> TraceEntry {
    TraceEntry {
        seq: 0, // stamped by Trace::record
        at: SimTime(at),
        from,
        to,
        event,
        kind,
        span,
        redelivery: false,
        wait: 0,
        detail: detail.to_string(),
        deltas: Vec::new(),
    }
}

/// One entry of every event type, exercising every field: spans present and
/// absent, redeliveries, waits, metric deltas, external endpoints, and
/// JSON-escaped details.
fn representative_trace() -> Trace {
    let mut t = Trace::with_capacity(16);
    // An injected client request arriving from outside the system.
    t.record(entry(
        5,
        ProcId::EXTERNAL,
        ProcId(0),
        TraceEvent::Deliver,
        "client",
        Some(42),
        "Client { op: 42 }",
    ));
    // A navigation hop that waited behind a busy node manager and moved
    // protocol counters.
    let mut hop = entry(
        9,
        ProcId(0),
        ProcId(1),
        TraceEvent::Deliver,
        "descend",
        Some(42),
        "hop 1",
    );
    hop.wait = 3;
    hop.deltas = vec![("link_chases", 1), ("relays_applied", 2)];
    t.record(hop);
    // A fault destroying a retransmitted relay.
    let mut lost = entry(
        11,
        ProcId(1),
        ProcId(2),
        TraceEvent::Drop,
        "insert.relay",
        None,
        "loss",
    );
    lost.redelivery = true;
    t.record(lost);
    // A fault duplicating a split message.
    t.record(entry(
        12,
        ProcId(2),
        ProcId(0),
        TraceEvent::Duplicate,
        "split.end",
        Some(42),
        "dup",
    ));
    // A timer firing on processor 2.
    t.record(entry(
        15,
        ProcId(2),
        ProcId(2),
        TraceEvent::Timer,
        "timer",
        None,
        "token=1",
    ));
    // Crash and restart of processor 2.
    t.record(entry(
        20,
        ProcId(2),
        ProcId(2),
        TraceEvent::Crash,
        "fault.crash",
        None,
        "",
    ));
    t.record(entry(
        30,
        ProcId(2),
        ProcId(2),
        TraceEvent::Restart,
        "fault.restart",
        None,
        "",
    ));
    // The failure detector on processor 0 suspecting the crashed processor,
    // the recovery layer quarantining it, its rejoin on restart, and the
    // detector clearing the suspicion once it is heard from again.
    t.record(entry(
        22,
        ProcId(0),
        ProcId(0),
        TraceEvent::Suspect,
        "detector.transition",
        None,
        "P2 silent past threshold",
    ));
    t.record(entry(
        22,
        ProcId(0),
        ProcId(0),
        TraceEvent::Quarantine,
        "recovery.quarantine",
        None,
        "P2",
    ));
    t.record(entry(
        30,
        ProcId(2),
        ProcId(2),
        TraceEvent::Rejoin,
        "recovery.rejoin",
        Some(42),
        "pull sync from copies",
    ));
    t.record(entry(
        31,
        ProcId(0),
        ProcId(0),
        TraceEvent::Alive,
        "detector.transition",
        None,
        "P2 heard from again",
    ));
    // A health watchdog firing on processor 1 (self-addressed, like timers).
    t.record(entry(
        32,
        ProcId(1),
        ProcId(1),
        TraceEvent::Alert,
        "backlog_growth",
        None,
        "rule=backlog_growth value=12 threshold=4 windows=4",
    ));
    // A reply leaving the system, with characters the export must escape.
    t.record(entry(
        33,
        ProcId(0),
        ProcId::EXTERNAL,
        TraceEvent::Output,
        "done",
        Some(42),
        "quote \" backslash \\ newline \n tab \t",
    ));
    t
}

#[test]
fn jsonl_export_matches_the_golden_file() {
    let got = representative_trace().to_jsonl();
    if got != GOLDEN {
        // Diff line by line so a failure names the divergent record.
        for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(g, w, "line {i} diverges from the pinned schema");
        }
        assert_eq!(
            got.lines().count(),
            GOLDEN.lines().count(),
            "line count diverges from the pinned schema"
        );
        panic!("trace JSONL diverges from the pinned schema");
    }
}

// ---------------------------------------------------------------------------
// Ring-buffer eviction boundary: the trace is a bounded ring, and consumers
// detect truncation via `dropped()` plus the seq numbering of the surviving
// head. Pin the boundary exactly.
// ---------------------------------------------------------------------------

fn tick(at: u64) -> TraceEntry {
    entry(
        at,
        ProcId(0),
        ProcId(1),
        TraceEvent::Deliver,
        "tick",
        None,
        "",
    )
}

/// `dropped()` stays zero through the `trace_capacity`-th record and counts
/// exactly one per record past it — the boundary is at capacity, not
/// capacity±1.
#[test]
fn dropped_is_exact_at_the_capacity_boundary() {
    const CAP: usize = 16;
    let mut t = Trace::with_capacity(CAP);
    for i in 0..CAP as u64 {
        t.record(tick(i));
        assert_eq!(t.dropped(), 0, "no eviction until the ring is full");
        assert_eq!(t.len(), i as usize + 1);
    }
    // Every record past capacity evicts exactly one head entry.
    for extra in 1..=2 * CAP as u64 {
        t.record(tick(CAP as u64 + extra));
        assert_eq!(t.dropped(), extra, "one eviction per overflow record");
        assert_eq!(t.len(), CAP, "retained window stays at capacity");
    }
}

/// After eviction the JSONL export shows the head gap: the first exported
/// line's `seq` equals `dropped()`, the lines that remain are contiguous,
/// and sequences `0..dropped()` appear nowhere in the export.
#[test]
fn head_gap_is_visible_in_the_jsonl_export() {
    const CAP: usize = 8;
    const TOTAL: u64 = 13; // 5 evictions
    let mut t = Trace::with_capacity(CAP);
    for i in 0..TOTAL {
        t.record(tick(i));
    }
    assert_eq!(t.dropped(), TOTAL - CAP as u64);

    let jsonl = t.to_jsonl();
    let seqs: Vec<u64> = jsonl
        .lines()
        .map(|line| {
            let tail = line
                .split("\"seq\":")
                .nth(1)
                .expect("every line carries a seq field");
            tail[..tail.find(',').unwrap()].parse().unwrap()
        })
        .collect();

    assert_eq!(seqs.len(), CAP, "export holds exactly the retained window");
    assert_eq!(
        seqs[0],
        t.dropped(),
        "first surviving seq names the size of the head gap"
    );
    let expected: Vec<u64> = (t.dropped()..TOTAL).collect();
    assert_eq!(seqs, expected, "retained tail is contiguous and in order");
    for gone in 0..t.dropped() {
        assert!(
            !seqs.contains(&gone),
            "evicted seq {gone} leaked into the export"
        );
    }
}

/// Capacity zero disables recording entirely: nothing retained, nothing
/// counted as dropped (there is no ring to overflow).
#[test]
fn zero_capacity_records_and_drops_nothing() {
    let mut t = Trace::with_capacity(0);
    for i in 0..4 {
        t.record(tick(i));
    }
    assert!(t.is_empty());
    assert_eq!(t.dropped(), 0);
    assert!(t.to_jsonl().is_empty());
}

/// Alert retention at scale: a bounded ring under heavy eviction pressure
/// keeps every `Alert` record while plain records churn through. 100 alerts
/// sprinkled through 50k deliveries on a 512-entry ring all survive, the
/// drop accounting stays exact, and the alerts appear in the export in
/// firing order.
#[test]
fn alerts_survive_eviction_at_scale() {
    const CAP: usize = 512;
    const TOTAL: u64 = 50_000;
    const EVERY: u64 = 500; // 100 alerts across the run
    let mut t = Trace::with_capacity(CAP);
    for i in 0..TOTAL {
        if i % EVERY == 0 {
            t.record(entry(
                i,
                ProcId(1),
                ProcId(1),
                TraceEvent::Alert,
                "backlog_growth",
                None,
                "rule=backlog_growth value=9 threshold=4 windows=4",
            ));
        } else {
            t.record(tick(i));
        }
    }
    assert_eq!(t.len(), CAP, "ring stays bounded");
    assert_eq!(
        t.dropped(),
        TOTAL - CAP as u64,
        "drop accounting stays exact"
    );

    let jsonl = t.to_jsonl();
    let alert_ats: Vec<u64> = jsonl
        .lines()
        .filter(|l| l.contains("\"event\":\"alert\""))
        .map(|l| {
            let tail = l.split("\"at\":").nth(1).unwrap();
            tail[..tail.find(',').unwrap()].parse().unwrap()
        })
        .collect();
    let expected: Vec<u64> = (0..TOTAL).step_by(EVERY as usize).collect();
    assert_eq!(
        alert_ats, expected,
        "every alert survives 50k-record churn, in firing order"
    );
    // The non-alert survivors are the newest plain records (FIFO among the
    // evictable), so the retained window is alerts + a recent tail.
    let plain = CAP - alert_ats.len();
    let first_plain = jsonl
        .lines()
        .filter(|l| !l.contains("\"event\":\"alert\""))
        .map(|l| {
            let tail = l.split("\"at\":").nth(1).unwrap();
            tail[..tail.find(',').unwrap()].parse::<u64>().unwrap()
        })
        .min()
        .unwrap();
    assert!(
        first_plain >= TOTAL - plain as u64 - EVERY,
        "plain survivors are not the recent tail (oldest at {first_plain})"
    );
}

#[test]
fn every_event_label_appears_in_the_golden_file() {
    // The golden file must stay representative: one line per event type.
    for ev in [
        TraceEvent::Deliver,
        TraceEvent::Timer,
        TraceEvent::Output,
        TraceEvent::Drop,
        TraceEvent::Duplicate,
        TraceEvent::Crash,
        TraceEvent::Restart,
        TraceEvent::Suspect,
        TraceEvent::Alive,
        TraceEvent::Quarantine,
        TraceEvent::Rejoin,
        TraceEvent::Alert,
    ] {
        let needle = format!("\"event\":\"{}\"", ev.as_str());
        assert!(GOLDEN.contains(&needle), "golden file lacks {needle}");
    }
}
