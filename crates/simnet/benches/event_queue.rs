//! Criterion microbench for the indexed event core: steady-state push/pop,
//! indexed removal (`pop_seq`, the schedule explorer's controlled step),
//! and crash cancellation (`cancel_for`) at pending-set sizes from 10^3 to
//! 10^6 events — the range a P=1024 closed-loop run actually holds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::event::{EventKind, EventQueue};
use simnet::{Payload, ProcId, SimTime};

/// Payload shaped like a small protocol message (the queue stores events
/// inline, so payload size is part of what push/pop moves around).
#[derive(Clone, Debug)]
struct Blob(#[allow(dead_code)] [u64; 8]); // never read: exists for copy cost

impl Payload for Blob {}

fn deliver(i: u64) -> EventKind<Blob> {
    EventKind::Deliver {
        from: ProcId((i % 251) as u32),
        msg: Blob([i; 8]),
        span: None,
    }
}

/// Fill with `n` events spread over 256 targets and 64 distinct ticks,
/// none at tick 0 (tick 0 is reserved by the cancel bench so its victims
/// pop first).
fn fill(q: &mut EventQueue<Blob>, n: u64) {
    for i in 0..n {
        q.push(SimTime(1 + i % 64), ProcId((i % 256) as u32), deliver(i));
    }
}

const SIZES: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];

fn bench_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_push_pop");
    for &n in &SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut q = EventQueue::new();
            fill(&mut q, n);
            let mut i = n;
            let mut now = 0u64;
            b.iter(|| {
                // Steady state, shaped like the simulator's hot loop: pop
                // the earliest event (advancing the clock), then push its
                // successor one latency sample ahead. Events are never
                // scheduled into the past, matching the queue's contract.
                let e = q.pop().expect("queue stays non-empty");
                now = e.at.ticks();
                q.push(
                    SimTime(now + 1 + i % 64),
                    ProcId((i % 256) as u32),
                    deliver(i),
                );
                i += 1;
                black_box(e.seq)
            })
        });
    }
    g.finish();
}

fn bench_pop_seq(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_pop_seq");
    for &n in &SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut q = EventQueue::new();
            fill(&mut q, n);
            // Seqs are assigned densely in push order, so the live window
            // after k iterations is exactly [k, k + n). The first call pays
            // the one-time lazy seq-index build (O(n), explorer-only), so
            // mean times are skewed high at large n; the min is the
            // steady-state cost.
            let mut oldest = 0u64;
            let mut next = n;
            b.iter(|| {
                // The explorer's controlled step: surgically remove one
                // pending event by seq, then backfill. Exercises the seq
                // index, stale-entry accounting, and heap compaction.
                let got = q.pop_seq(oldest).is_some();
                oldest += 1;
                q.push(
                    SimTime(1 + next % 64),
                    ProcId((next % 256) as u32),
                    deliver(next),
                );
                next += 1;
                black_box(got)
            })
        });
    }
    g.finish();
}

fn bench_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_cancel_for");
    // Cancellation scans the whole slab (crashes are rare; descents are
    // not), so the interesting number is cost vs pending-set size.
    for &n in &[1_000u64, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut q = EventQueue::new();
            fill(&mut q, n);
            let victim = ProcId(300); // outside fill()'s target range
            let mut i = n;
            b.iter(|| {
                // Steady state: arm 8 deliveries to the victim at tick 0
                // (earlier than everything else), cancel them, then pop the
                // 8 tombstones straight back out.
                for _ in 0..8 {
                    q.push(SimTime(0), victim, deliver(i));
                    i += 1;
                }
                q.cancel_for(victim);
                for _ in 0..8 {
                    black_box(q.pop());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push_pop, bench_pop_seq, bench_cancel);
criterion_main!(benches);
