//! A tiny deterministic multiply-rotate hasher for hot-path maps.
//!
//! The simulator's inner loop hits several `HashMap`s once per event
//! (per-channel FIFO watermarks, the event queue's seq index, the node
//! store's id table). `SipHash`'s per-lookup cost is measurable there and
//! buys nothing: the keys are small trusted integers, not attacker input.
//! This is the classic `FxHash` scheme (multiply by a Mersenne-ish odd
//! constant after a rotate-xor), which compiles to a couple of ALU ops.
//!
//! Determinism note: the hash function is fixed (no per-process random
//! state, unlike `RandomState`), but callers must still never iterate
//! these maps in hash order when the order is observable — bucket order
//! depends on insertion history and capacity. Every map using this hasher
//! is either lookup-only or sorts before exposing its contents.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (FxHash).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        m.insert((4, 5), 6);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(4, 5)), Some(&6));
        assert_eq!(m.get(&(2, 1)), None);

        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(0xDEADBEEF);
        h2.write_u64(0xDEADBEEF);
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(h1.finish(), 0);
    }
}
