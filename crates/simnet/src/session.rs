//! Reliable-delivery session layer.
//!
//! The dB-tree protocols assume the network delivers every message exactly
//! once and in FIFO order per channel (§4 of the paper). A [`FaultPlan`]
//! (drops, duplicates, partitions, crashes) breaks that assumption at the
//! physical layer; [`SessionProc`] restores it end-to-end, so every protocol
//! runs unchanged over a lossy network.
//!
//! The mechanism is classic go-back-N ARQ:
//!
//! * each remote message gets a per-`(src, dst)` sequence number and is held
//!   in an outbox until acknowledged;
//! * receivers deliver in sequence order, buffer out-of-order arrivals,
//!   suppress duplicates, and answer every data message with a cumulative
//!   ack;
//! * senders retransmit the whole outbox on a retransmission timeout, with
//!   exponential backoff.
//!
//! **Stability model.** The paper's §1.1 architecture gives every processor a
//! *stable* queue manager (backed by recoverable storage) in front of
//! volatile node copies. We model crash/restart the same way: the process
//! object — including the session outbox and the receiver's delivery
//! counters — survives a crash, while everything in flight (deliveries,
//! armed timers, out-of-order buffers) is lost. On restart the session
//! retransmits its outbox and re-arms its timers, so exactly-once delivery
//! holds across crashes too.
//!
//! With `enabled == false` (the default) every message passes through as
//! [`SessionMsg::Raw`], whose `kind`/`size_hint` delegate to the inner
//! payload — message statistics are byte-identical to running the inner
//! process directly.
//!
//! **Failure detection.** The session layer optionally runs a heartbeat
//! failure detector (see [`DetectorConfig`]). Every peer this processor has
//! exchanged traffic with is monitored: a periodic detector round pings each
//! monitored peer, and a peer silent for more than `suspect_after` rounds is
//! marked *suspect* — surfaced as a [`TraceEvent::Suspect`] annotation, a
//! counter, and an advisory [`Process::on_peer_change`] callback on the inner
//! process. The first arrival from a suspected peer clears the suspicion
//! ([`TraceEvent::Alive`] + `on_peer_change(peer, true)`). Detection is
//! purely advisory: safety never depends on it, only reaction latency does.
//! The detector goes *dormant* (stops re-arming its timer) after
//! `idle_rounds` rounds with no inner traffic and nothing unacknowledged, so
//! quiescence detection still terminates; the next inner send or arrival
//! re-arms it. Disabled (the default), it adds zero timers, messages, and
//! RNG draws — runs are byte-identical to builds without it.
//!
//! [`FaultPlan`]: crate::FaultPlan

use std::collections::{BTreeMap, VecDeque};
use std::ops::{Deref, DerefMut};

use crate::context::{Context, Effect};
use crate::trace::TraceEvent;
use crate::{Payload, ProcId, Process, SimTime};

/// High bit of the timer-token space, reserved for session retransmission
/// timers. Inner processes must keep their own tokens below this bit.
pub const SESSION_TIMER_BIT: u64 = 1 << 63;

/// Timer token of the failure detector's periodic round. Lives in the
/// session-reserved token space; distinguishable from per-channel
/// retransmission tokens, which only use the low 32 bits.
pub const DETECTOR_TIMER: u64 = SESSION_TIMER_BIT | (1 << 62);

#[inline]
fn session_token(dst: ProcId) -> u64 {
    SESSION_TIMER_BIT | dst.0 as u64
}

/// Tuning knobs for the heartbeat failure detector.
///
/// Thresholds are in ticks / detector rounds. A peer is suspected when it has
/// been silent (no arrival of any kind) for longer than
/// `ping_interval * suspect_after` ticks at a round boundary, so detection
/// latency is between `suspect_after` and `suspect_after + 1` rounds.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Master switch. Off (the default) = no timers, no pings, no RNG draws:
    /// runs are byte-identical to a detector-free build.
    pub enabled: bool,
    /// Ticks between detector rounds (each round pings every monitored peer).
    pub ping_interval: u64,
    /// Rounds of silence before a peer becomes suspect.
    pub suspect_after: u32,
    /// Consecutive rounds with no inner traffic (and empty outboxes) before
    /// the detector goes dormant. Dormancy is what lets quiescence detection
    /// terminate; the next inner send or arrival re-arms the round timer.
    pub idle_rounds: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            enabled: false,
            ping_interval: 100,
            suspect_after: 3,
            idle_rounds: 2,
        }
    }
}

impl DetectorConfig {
    /// An enabled detector with default timing.
    pub fn on() -> Self {
        DetectorConfig {
            enabled: true,
            ..DetectorConfig::default()
        }
    }
}

/// Tuning knobs for the session layer.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Master switch. Off = every message passes through untouched.
    pub enabled: bool,
    /// Initial retransmission timeout, in ticks. Should comfortably exceed
    /// one round trip under the latency model in use.
    pub base_rto: u64,
    /// Backoff ceiling for the retransmission timeout.
    pub max_rto: u64,
    /// Give up on a channel after this many consecutive fruitless
    /// retransmission rounds (e.g. the peer is partitioned away for good).
    pub max_retries: u32,
    /// Heartbeat failure detector (independent of the reliability switch).
    pub detector: DetectorConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            enabled: false,
            base_rto: 50,
            max_rto: 2000,
            max_retries: 64,
            detector: DetectorConfig::default(),
        }
    }
}

impl SessionConfig {
    /// A reliable-delivery configuration with default timing.
    pub fn reliable() -> Self {
        SessionConfig {
            enabled: true,
            ..SessionConfig::default()
        }
    }

    /// Same configuration with the given failure detector.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }
}

/// Wire format of a sessioned channel.
#[derive(Clone, Debug)]
pub enum SessionMsg<M> {
    /// Pass-through (session disabled, local hand-off, or external client
    /// traffic). Carries no session state.
    Raw(M),
    /// Sequenced payload on a reliable channel.
    Data {
        /// Position in the per-`(src, dst)` sequence, starting at 0.
        seq: u64,
        /// `true` on retransmissions (timeouts and post-restart replays);
        /// surfaces in traces as `redelivery` so repaired deliveries are
        /// distinguishable from first transmissions.
        retx: bool,
        /// The inner payload.
        msg: M,
    },
    /// Cumulative acknowledgement: every `seq < upto` has been delivered.
    Ack {
        /// One past the highest in-order sequence delivered.
        upto: u64,
    },
    /// Failure-detector heartbeat probe. Unsequenced (loss is tolerated; the
    /// next round probes again) and answered immediately with [`Self::Pong`].
    Ping,
    /// Reply to a [`Self::Ping`]; its arrival refreshes the peer's liveness.
    Pong,
}

impl<M: Payload> Payload for SessionMsg<M> {
    fn kind(&self) -> &'static str {
        match self {
            // Data keeps the inner kind so per-kind message counts remain
            // comparable with and without the session layer.
            SessionMsg::Raw(m) => m.kind(),
            SessionMsg::Data { msg, .. } => msg.kind(),
            SessionMsg::Ack { .. } => "session.ack",
            SessionMsg::Ping => "detector.ping",
            SessionMsg::Pong => "detector.pong",
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            SessionMsg::Raw(m) => m.size_hint(),
            SessionMsg::Data { msg, .. } => msg.size_hint() + 8,
            SessionMsg::Ack { .. } => 8,
            SessionMsg::Ping | SessionMsg::Pong => 4,
        }
    }

    fn span(&self) -> Option<u64> {
        match self {
            SessionMsg::Raw(m) => m.span(),
            SessionMsg::Data { msg, .. } => msg.span(),
            SessionMsg::Ack { .. } | SessionMsg::Ping | SessionMsg::Pong => None,
        }
    }

    fn redelivery(&self) -> bool {
        match self {
            SessionMsg::Raw(_) | SessionMsg::Ack { .. } | SessionMsg::Ping | SessionMsg::Pong => {
                false
            }
            SessionMsg::Data { retx, .. } => *retx,
        }
    }
}

/// Sender half of one directed channel (stable across crashes).
#[derive(Clone, Debug)]
struct SendState<M> {
    next_seq: u64,
    /// Sent but unacknowledged, in sequence order.
    outbox: VecDeque<(u64, M)>,
    rto: u64,
    retries: u32,
    timer_armed: bool,
}

impl<M> SendState<M> {
    fn new(base_rto: u64) -> Self {
        SendState {
            next_seq: 0,
            outbox: VecDeque::new(),
            rto: base_rto,
            retries: 0,
            timer_armed: false,
        }
    }
}

/// Receiver half of one directed channel. `next_expected` is stable (it is
/// what makes redelivered messages recognizable as duplicates after a
/// crash); the out-of-order buffer is volatile and cleared on restart.
#[derive(Clone, Debug)]
struct RecvState<M> {
    next_expected: u64,
    buffer: BTreeMap<u64, M>,
}

impl<M> Default for RecvState<M> {
    fn default() -> Self {
        RecvState {
            next_expected: 0,
            buffer: BTreeMap::new(),
        }
    }
}

/// Failure-detector bookkeeping for one monitored peer.
#[derive(Clone, Copy, Debug)]
struct PeerState {
    /// Time of the last arrival of any kind from this peer.
    last_heard: SimTime,
    /// Currently suspected down.
    suspected: bool,
}

/// Counters kept by one processor's session layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// First transmissions of sequenced payloads.
    pub data_sent: u64,
    /// Retransmitted payloads (timeouts and post-restart replays).
    pub retransmissions: u64,
    /// Cumulative acks sent.
    pub acks_sent: u64,
    /// Arrivals discarded as duplicates.
    pub dup_suppressed: u64,
    /// Arrivals buffered because they overtook a gap.
    pub out_of_order: u64,
    /// Payloads abandoned after `max_retries` fruitless rounds.
    pub aborted: u64,
    /// Detector transitions into suspicion (peer went silent).
    pub suspects: u64,
    /// Detector transitions out of suspicion (suspected peer heard again).
    pub alives: u64,
}

impl SessionStats {
    /// Accumulate another processor's counters (cluster-wide totals).
    pub fn merge(&mut self, other: &SessionStats) {
        self.data_sent += other.data_sent;
        self.retransmissions += other.retransmissions;
        self.acks_sent += other.acks_sent;
        self.dup_suppressed += other.dup_suppressed;
        self.out_of_order += other.out_of_order;
        self.aborted += other.aborted;
        self.suspects += other.suspects;
        self.alives += other.alives;
    }
}

/// Wraps any [`Process`], giving it exactly-once FIFO channels over a lossy
/// network. Derefs to the inner process so existing inspection code
/// (checkers, metrics readers) works unchanged.
pub struct SessionProc<P: Process> {
    inner: P,
    cfg: SessionConfig,
    send: BTreeMap<ProcId, SendState<P::Msg>>,
    recv: BTreeMap<ProcId, RecvState<P::Msg>>,
    stats: SessionStats,
    /// Peers the failure detector monitors (everyone this processor has
    /// exchanged traffic with). Empty while the detector is disabled.
    det_peers: BTreeMap<ProcId, PeerState>,
    /// A detector round timer is outstanding.
    det_armed: bool,
    /// Consecutive detector rounds with no inner traffic and nothing
    /// unacknowledged; reaching `idle_rounds` makes the detector dormant.
    det_idle: u32,
    /// Inner traffic (data sent or delivered) since the last detector round.
    det_activity: bool,
    /// Reusable buffer for the inner action's effects, so the per-action
    /// re-dispatch in [`SessionProc::with_inner`] does not allocate. Taken
    /// (`mem::take`) for the duration of an action; a re-entrant action
    /// (e.g. `on_peer_change` fired from within a round) simply starts from
    /// a fresh empty vector and the outermost restore wins.
    effects_scratch: Vec<Effect<P::Msg>>,
}

impl<P: Process> SessionProc<P> {
    /// Wrap `inner` with the given session configuration.
    pub fn new(inner: P, cfg: SessionConfig) -> Self {
        SessionProc {
            inner,
            cfg,
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            stats: SessionStats::default(),
            det_peers: BTreeMap::new(),
            det_armed: false,
            det_idle: 0,
            det_activity: false,
            effects_scratch: Vec::new(),
        }
    }

    /// Wrap `inner` with the session layer switched off (pure pass-through).
    pub fn passthrough(inner: P) -> Self {
        SessionProc::new(inner, SessionConfig::default())
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// This processor's session counters.
    pub fn session_stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Total payloads currently awaiting acknowledgement.
    pub fn unacked(&self) -> usize {
        self.send.values().map(|s| s.outbox.len()).sum()
    }

    /// Peers this processor's failure detector currently suspects.
    pub fn suspected_peers(&self) -> Vec<ProcId> {
        self.det_peers
            .iter()
            .filter(|(_, st)| st.suspected)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Run `f` against the inner process, then translate its effects:
    /// sends go through the session send path, timers pass through (their
    /// tokens must stay below [`SESSION_TIMER_BIT`]).
    fn with_inner(
        &mut self,
        ctx: &mut Context<'_, SessionMsg<P::Msg>>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let mut inner_effects = std::mem::take(&mut self.effects_scratch);
        debug_assert!(inner_effects.is_empty());
        {
            let mut inner_ctx = Context {
                me: ctx.me,
                now: ctx.now,
                effects: &mut inner_effects,
                rng: &mut *ctx.rng,
                // The inner action runs on behalf of the same operation.
                span: ctx.span,
            };
            f(&mut self.inner, &mut inner_ctx);
        }
        for effect in inner_effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => self.send_out(ctx, to, msg),
                Effect::Timer { delay, token } => {
                    debug_assert!(
                        token & SESSION_TIMER_BIT == 0,
                        "inner timer token collides with the session bit"
                    );
                    ctx.set_timer(delay, token);
                }
                Effect::Mark {
                    event,
                    kind,
                    detail,
                } => ctx.mark(event, kind, detail),
            }
        }
        self.effects_scratch = inner_effects;
    }

    /// Record traffic with a remote peer: start monitoring it, refresh its
    /// liveness on arrivals, clear suspicion if it was suspected, and (for
    /// inner traffic) wake a dormant detector.
    ///
    /// `arrival` — the peer was *heard from* (refreshes `last_heard`);
    /// `inner` — the traffic is application traffic rather than detector
    /// heartbeats (counts against dormancy and re-arms the round timer).
    fn det_note(
        &mut self,
        ctx: &mut Context<'_, SessionMsg<P::Msg>>,
        peer: ProcId,
        arrival: bool,
        inner: bool,
    ) {
        if !self.cfg.detector.enabled || peer.is_external() || peer == ctx.me() {
            return;
        }
        let now = ctx.now();
        let st = self.det_peers.entry(peer).or_insert(PeerState {
            last_heard: now,
            suspected: false,
        });
        if arrival {
            st.last_heard = now;
            if st.suspected {
                st.suspected = false;
                self.stats.alives += 1;
                ctx.mark(
                    TraceEvent::Alive,
                    "detector.transition",
                    format!("{peer} heard from again"),
                );
                self.with_inner(ctx, |p, c| p.on_peer_change(c, peer, true));
            }
        }
        if inner {
            self.det_activity = true;
            self.det_arm(ctx);
        }
    }

    /// Arm the detector round timer if it is not already outstanding.
    fn det_arm(&mut self, ctx: &mut Context<'_, SessionMsg<P::Msg>>) {
        if !self.det_armed {
            self.det_armed = true;
            self.det_idle = 0;
            ctx.set_timer(self.cfg.detector.ping_interval, DETECTOR_TIMER);
        }
    }

    /// One detector round: suspect peers that have gone silent, ping every
    /// monitored peer, then re-arm — or go dormant after `idle_rounds`
    /// rounds with no inner traffic and empty outboxes.
    fn det_round(&mut self, ctx: &mut Context<'_, SessionMsg<P::Msg>>) {
        let det = self.cfg.detector;
        let now = ctx.now();
        let threshold = det.ping_interval.saturating_mul(det.suspect_after as u64);
        let mut newly_suspect = Vec::new();
        for (&p, st) in self.det_peers.iter_mut() {
            if !st.suspected && now.0.saturating_sub(st.last_heard.0) > threshold {
                st.suspected = true;
                newly_suspect.push(p);
            }
        }
        for p in newly_suspect {
            self.stats.suspects += 1;
            ctx.mark(
                TraceEvent::Suspect,
                "detector.transition",
                format!("{p} silent past threshold"),
            );
            self.with_inner(ctx, |pr, c| pr.on_peer_change(c, p, false));
        }
        for &p in self.det_peers.keys() {
            ctx.send(p, SessionMsg::Ping);
        }
        let idle = !self.det_activity && self.send.values().all(|s| s.outbox.is_empty());
        self.det_idle = if idle { self.det_idle + 1 } else { 0 };
        self.det_activity = false;
        if self.det_idle >= det.idle_rounds {
            // Dormant: quiescence can now drain. The next inner send or
            // arrival re-arms the round timer. (Nothing nested can have
            // armed one meanwhile — activity would have made `idle` false.)
            self.det_armed = false;
        } else {
            self.det_armed = true;
            ctx.set_timer(det.ping_interval, DETECTOR_TIMER);
        }
    }

    fn send_out(&mut self, ctx: &mut Context<'_, SessionMsg<P::Msg>>, to: ProcId, msg: P::Msg) {
        // Outbound application traffic: monitor the peer and keep the
        // detector awake (no liveness refresh — we only *hear* arrivals).
        self.det_note(ctx, to, false, true);
        // Local hand-offs never cross the network and client replies leave
        // the system; neither needs (or gets) session framing.
        if !self.cfg.enabled || to.is_external() || to == ctx.me() {
            ctx.send(to, SessionMsg::Raw(msg));
            return;
        }
        let base_rto = self.cfg.base_rto;
        let st = self
            .send
            .entry(to)
            .or_insert_with(|| SendState::new(base_rto));
        let seq = st.next_seq;
        st.next_seq += 1;
        st.outbox.push_back((seq, msg.clone()));
        self.stats.data_sent += 1;
        ctx.send(
            to,
            SessionMsg::Data {
                seq,
                retx: false,
                msg,
            },
        );
        if !st.timer_armed {
            st.timer_armed = true;
            ctx.set_timer(st.rto, session_token(to));
        }
    }

    fn on_data(
        &mut self,
        ctx: &mut Context<'_, SessionMsg<P::Msg>>,
        from: ProcId,
        seq: u64,
        msg: P::Msg,
    ) {
        let st = self.recv.entry(from).or_default();
        // Collect deliverable messages first so the channel borrow ends
        // before the inner process runs (it may itself send on this channel).
        let mut deliver = Vec::new();
        if seq < st.next_expected {
            self.stats.dup_suppressed += 1;
        } else if seq == st.next_expected {
            st.next_expected += 1;
            deliver.push(msg);
            while let Some(m) = st.buffer.remove(&st.next_expected) {
                st.next_expected += 1;
                deliver.push(m);
            }
        } else if st.buffer.insert(seq, msg).is_some() {
            self.stats.dup_suppressed += 1;
        } else {
            self.stats.out_of_order += 1;
        }
        let upto = st.next_expected;
        self.stats.acks_sent += 1;
        ctx.send(from, SessionMsg::Ack { upto });
        for m in deliver {
            self.with_inner(ctx, |p, c| p.on_message(c, from, m));
        }
    }

    fn on_ack(&mut self, from: ProcId, upto: u64) {
        let Some(st) = self.send.get_mut(&from) else {
            return;
        };
        let mut progressed = false;
        while st.outbox.front().is_some_and(|(s, _)| *s < upto) {
            st.outbox.pop_front();
            progressed = true;
        }
        if progressed {
            // The channel is alive: restart the backoff schedule.
            st.rto = self.cfg.base_rto;
            st.retries = 0;
        }
    }

    /// Retransmit everything outstanding to `dst` (go-back-N).
    fn retransmit(&mut self, ctx: &mut Context<'_, SessionMsg<P::Msg>>, dst: ProcId) {
        let Some(st) = self.send.get_mut(&dst) else {
            return;
        };
        for (seq, msg) in st.outbox.iter() {
            ctx.send(
                dst,
                SessionMsg::Data {
                    seq: *seq,
                    retx: true,
                    msg: msg.clone(),
                },
            );
        }
        self.stats.retransmissions += st.outbox.len() as u64;
    }
}

impl<P: Process> Deref for SessionProc<P> {
    type Target = P;
    fn deref(&self) -> &P {
        &self.inner
    }
}

impl<P: Process> DerefMut for SessionProc<P> {
    fn deref_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<P: Process> Process for SessionProc<P> {
    type Msg = SessionMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.with_inner(ctx, |p, c| p.on_start(c));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: ProcId, msg: Self::Msg) {
        // Any arrival proves the peer alive; only application traffic keeps
        // the detector out of dormancy (heartbeats must not feed themselves).
        let inner = !matches!(msg, SessionMsg::Ping | SessionMsg::Pong);
        self.det_note(ctx, from, true, inner);
        match msg {
            SessionMsg::Raw(m) => self.with_inner(ctx, |p, c| p.on_message(c, from, m)),
            SessionMsg::Data { seq, msg, .. } => self.on_data(ctx, from, seq, msg),
            SessionMsg::Ack { upto } => self.on_ack(from, upto),
            SessionMsg::Ping => ctx.send(from, SessionMsg::Pong),
            SessionMsg::Pong => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, token: u64) {
        if token & SESSION_TIMER_BIT == 0 {
            self.with_inner(ctx, |p, c| p.on_timer(c, token));
            return;
        }
        if token == DETECTOR_TIMER {
            // `det_armed` stays true for the duration of the round so that
            // sends made by `on_peer_change` handlers inside it cannot arm a
            // second round timer; the round itself decides at the end
            // whether to re-arm or go dormant.
            self.det_round(ctx);
            return;
        }
        let dst = ProcId((token & !SESSION_TIMER_BIT) as u32);
        let Some(st) = self.send.get_mut(&dst) else {
            return;
        };
        if st.outbox.is_empty() {
            // Everything acked since the timer was armed; stand down (there
            // is no cancel API — timers self-disarm by firing into an empty
            // outbox).
            st.timer_armed = false;
            return;
        }
        st.retries += 1;
        if st.retries > self.cfg.max_retries {
            self.stats.aborted += st.outbox.len() as u64;
            st.outbox.clear();
            st.timer_armed = false;
            return;
        }
        st.rto = (st.rto * 2).min(self.cfg.max_rto);
        let rto = st.rto;
        self.retransmit(ctx, dst);
        ctx.set_timer(rto, token);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        // The crash destroyed any outstanding detector round timer. Restart
        // monitoring from a clean slate: liveness opinions formed before the
        // crash are stale (and peers will re-prove themselves as the
        // retransmitted traffic below flows).
        if self.cfg.detector.enabled {
            self.det_armed = false;
            self.det_idle = 0;
            self.det_activity = false;
            let now = ctx.now();
            for st in self.det_peers.values_mut() {
                st.last_heard = now;
                st.suspected = false;
            }
            if !self.det_peers.is_empty() {
                self.det_arm(ctx);
            }
        }
        if self.cfg.enabled {
            // Out-of-order buffers are volatile; the delivery counters are
            // part of the stable queue manager and survive, which is what
            // makes redelivered payloads recognizable as duplicates.
            for st in self.recv.values_mut() {
                st.buffer.clear();
            }
            // The crash destroyed every armed timer: retransmit anything
            // outstanding and re-arm from scratch.
            let dsts: Vec<ProcId> = self.send.keys().copied().collect();
            for dst in dsts {
                let st = self.send.get_mut(&dst).expect("key just listed");
                st.rto = self.cfg.base_rto;
                st.retries = 0;
                if st.outbox.is_empty() {
                    st.timer_armed = false;
                } else {
                    st.timer_armed = true;
                    let rto = st.rto;
                    self.retransmit(ctx, dst);
                    ctx.set_timer(rto, session_token(dst));
                }
            }
        }
        self.with_inner(ctx, |p, c| p.on_restart(c));
    }

    fn on_peer_change(&mut self, ctx: &mut Context<'_, Self::Msg>, peer: ProcId, up: bool) {
        // Forward externally-sourced hints (e.g. when this session layer is
        // itself wrapped); the built-in detector calls the inner process
        // directly through `det_note`/`det_round`.
        self.with_inner(ctx, |p, c| p.on_peer_change(c, peer, up));
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        let mut m = self.inner.metrics();
        if self.cfg.enabled {
            m.push(("session.data_sent", self.stats.data_sent));
            m.push(("session.retransmissions", self.stats.retransmissions));
            m.push(("session.acks_sent", self.stats.acks_sent));
            m.push(("session.dup_suppressed", self.stats.dup_suppressed));
            m.push(("session.out_of_order", self.stats.out_of_order));
            m.push(("session.aborted", self.stats.aborted));
        }
        if self.cfg.detector.enabled {
            m.push(("detector.suspects", self.stats.suspects));
            m.push(("detector.alives", self.stats.alives));
        }
        m
    }

    fn gauges(&self, now: crate::SimTime) -> Vec<(&'static str, u64)> {
        let mut g = self.inner.gauges(now);
        if self.cfg.enabled {
            // Retransmit-window occupancy: payloads sent but not yet acked
            // across every peer channel. A sustained climb means a peer is
            // unreachable (or the storm rule is about to fire).
            g.push(("session.unacked", self.unacked() as u64));
        }
        g
    }

    fn fingerprint(&self) -> Option<u64> {
        // With the session layer (or its detector) active, retransmission
        // state is clock-driven (RTOs, heartbeat deadlines) and cannot be
        // digested faithfully without hashing time; opt out. The disabled
        // wrapper is a pure pass-through, so the inner digest stands.
        if self.cfg.enabled || self.cfg.detector.enabled {
            return None;
        }
        self.inner.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrashEvent, FaultPlan, SimConfig, SimTime, Simulation};

    #[derive(Clone, Debug)]
    enum Msg {
        Num(u32),
    }

    impl Payload for Msg {
        fn kind(&self) -> &'static str {
            "num"
        }
    }

    /// P0 streams `count` numbered messages to P1; P1 records arrivals.
    struct Streamer {
        count: u32,
        seen: Vec<u32>,
    }

    impl Process for Streamer {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.me() == ProcId(0) {
                for n in 0..self.count {
                    ctx.send(ProcId(1), Msg::Num(n));
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: ProcId, msg: Msg) {
            let Msg::Num(n) = msg;
            self.seen.push(n);
        }
    }

    fn streamers(count: u32) -> Vec<SessionProc<Streamer>> {
        (0..2)
            .map(|_| {
                SessionProc::new(
                    Streamer {
                        count,
                        seen: vec![],
                    },
                    SessionConfig::reliable(),
                )
            })
            .collect()
    }

    #[test]
    fn exactly_once_in_order_over_drops() {
        for seed in 0..8 {
            let mut cfg = SimConfig::jittery(seed, 2, 25);
            cfg.faults = FaultPlan::lossy(0.25);
            let mut sim = Simulation::new(cfg, streamers(100));
            sim.run();
            let p1 = sim.proc(ProcId(1)).inner();
            assert_eq!(p1.seen, (0..100).collect::<Vec<_>>(), "seed {seed}");
            assert!(
                sim.stats().faults().dropped > 0,
                "seed {seed}: faults were injected"
            );
            assert!(
                sim.proc(ProcId(0)).session_stats().retransmissions > 0,
                "seed {seed}: losses were repaired by retransmission"
            );
        }
    }

    #[test]
    fn exactly_once_over_duplication() {
        for seed in 0..8 {
            let mut cfg = SimConfig::jittery(seed, 2, 25);
            cfg.faults = FaultPlan::none().with_dup(0.3);
            let mut sim = Simulation::new(cfg, streamers(100));
            sim.run();
            let p1 = sim.proc(ProcId(1)).inner();
            assert_eq!(p1.seen, (0..100).collect::<Vec<_>>(), "seed {seed}");
            assert!(sim.stats().faults().duplicated > 0, "seed {seed}");
            assert!(
                sim.proc(ProcId(1)).session_stats().dup_suppressed > 0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn exactly_once_over_drops_and_dups() {
        for seed in 0..8 {
            let mut cfg = SimConfig::jittery(seed, 2, 25);
            cfg.faults = FaultPlan::lossy(0.15).with_dup(0.15);
            let mut sim = Simulation::new(cfg, streamers(100));
            sim.run();
            let p1 = sim.proc(ProcId(1)).inner();
            assert_eq!(p1.seen, (0..100).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn receiver_crash_does_not_double_deliver() {
        // P1 crashes mid-stream and restarts. Its delivery counter is
        // stable, so retransmitted payloads it already consumed must be
        // suppressed, and payloads lost in flight must be redelivered:
        // exactly-once end to end.
        for seed in 0..8 {
            let mut cfg = SimConfig::jittery(seed, 2, 25);
            cfg.faults = FaultPlan::none().with_crash(CrashEvent {
                proc: ProcId(1),
                at: SimTime(40),
                restart_at: Some(SimTime(400)),
            });
            let mut sim = Simulation::new(cfg, streamers(50));
            sim.run();
            assert!(sim.stats().faults().crashes == 1, "seed {seed}");
            let p1 = sim.proc(ProcId(1)).inner();
            assert_eq!(p1.seen, (0..50).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn passthrough_preserves_message_stats() {
        // Session off, no faults: per-kind counts equal an unwrapped run.
        let raw = {
            let procs = (0..2)
                .map(|_| Streamer {
                    count: 40,
                    seen: vec![],
                })
                .collect();
            let mut sim = Simulation::new(SimConfig::seeded(9), procs);
            sim.run();
            sim.stats().kind("num")
        };
        let wrapped = {
            let procs = (0..2)
                .map(|_| {
                    SessionProc::passthrough(Streamer {
                        count: 40,
                        seen: vec![],
                    })
                })
                .collect();
            let mut sim = Simulation::new(SimConfig::seeded(9), procs);
            sim.run();
            sim.stats().kind("num")
        };
        assert_eq!(raw, wrapped);
    }

    #[test]
    fn retry_exhaustion_gives_up() {
        // A permanent partition: the sender must eventually abort rather
        // than retransmit forever.
        let mut cfg = SimConfig::seeded(3);
        cfg.faults = FaultPlan::none().with_partition(crate::Partition {
            start: SimTime(0),
            end: SimTime(u64::MAX),
            side_a: vec![ProcId(0)],
            side_b: vec![ProcId(1)],
        });
        let mut sim = Simulation::new(
            cfg,
            (0..2)
                .map(|_| {
                    SessionProc::new(
                        Streamer {
                            count: 5,
                            seen: vec![],
                        },
                        SessionConfig {
                            enabled: true,
                            base_rto: 10,
                            max_rto: 40,
                            max_retries: 6,
                            ..SessionConfig::default()
                        },
                    )
                })
                .collect(),
        );
        sim.run();
        assert_eq!(sim.proc(ProcId(0)).session_stats().aborted, 5);
        assert_eq!(sim.proc(ProcId(0)).unacked(), 0);
        assert!(sim.proc(ProcId(1)).inner().seen.is_empty());
        // The backoff is bounded: go-back-N retransmits the whole 5-message
        // outbox at most `max_retries` times before giving up, never more.
        let retx = sim.proc(ProcId(0)).session_stats().retransmissions;
        assert!(retx > 0, "partition forced retransmissions");
        assert!(
            retx <= 6 * 5,
            "retransmissions bounded by max_retries: {retx}"
        );
    }

    /// An inner process that records detector hints.
    struct PeerWatcher {
        count: u32,
        seen: Vec<u32>,
        transitions: Vec<(ProcId, bool)>,
    }

    impl Process for PeerWatcher {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.me() == ProcId(0) {
                for n in 0..self.count {
                    ctx.send(ProcId(1), Msg::Num(n));
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: ProcId, msg: Msg) {
            let Msg::Num(n) = msg;
            self.seen.push(n);
        }
        fn on_peer_change(&mut self, _ctx: &mut Context<'_, Msg>, peer: ProcId, up: bool) {
            self.transitions.push((peer, up));
        }
    }

    fn watchers(count: u32, det: DetectorConfig) -> Vec<SessionProc<PeerWatcher>> {
        (0..2)
            .map(|_| {
                SessionProc::new(
                    PeerWatcher {
                        count,
                        seen: vec![],
                        transitions: vec![],
                    },
                    SessionConfig::reliable().with_detector(det),
                )
            })
            .collect()
    }

    #[test]
    fn detector_suspects_crashed_peer_and_clears_on_restart() {
        let det = DetectorConfig {
            enabled: true,
            ping_interval: 50,
            suspect_after: 3,
            idle_rounds: 4,
        };
        let mut cfg = SimConfig::jittery(11, 2, 5);
        cfg.faults = FaultPlan::none().with_crash(CrashEvent {
            proc: ProcId(1),
            at: SimTime(30),
            restart_at: Some(SimTime(900)),
        });
        let mut sim = Simulation::new(cfg, watchers(40, det));
        sim.run();
        let p0 = sim.proc(ProcId(0));
        // All data eventually delivered despite the crash…
        assert_eq!(
            sim.proc(ProcId(1)).inner().seen,
            (0..40).collect::<Vec<_>>()
        );
        // …and the detector saw the outage: suspect while down, alive after
        // the restarted peer was heard from again.
        assert!(p0.session_stats().suspects >= 1, "P1 was suspected");
        assert!(p0.session_stats().alives >= 1, "P1 was rehabilitated");
        let t = &p0.inner().transitions;
        assert!(
            t.contains(&(ProcId(1), false)),
            "down hint delivered: {t:?}"
        );
        assert!(t.contains(&(ProcId(1), true)), "up hint delivered: {t:?}");
        assert!(p0.suspected_peers().is_empty(), "no residual suspicion");
    }

    #[test]
    fn detector_goes_dormant_so_quiescence_terminates() {
        // A clean run with the detector on must still quiesce (bounded
        // events), and must end with no peer suspected.
        let mut sim = Simulation::new(
            SimConfig::jittery(5, 2, 10),
            watchers(30, DetectorConfig::on()),
        );
        sim.run();
        assert_eq!(
            sim.proc(ProcId(1)).inner().seen,
            (0..30).collect::<Vec<_>>()
        );
        for p in [ProcId(0), ProcId(1)] {
            assert!(sim.proc(p).suspected_peers().is_empty());
            assert!(sim.proc(p).inner().transitions.is_empty());
        }
    }

    #[test]
    fn detector_off_is_byte_identical() {
        // Same workload, detector off vs. a detector-free SessionConfig:
        // identical per-kind message statistics and virtual end times.
        let run = |cfg: SessionConfig| {
            let procs = (0..2)
                .map(|_| {
                    SessionProc::new(
                        Streamer {
                            count: 60,
                            seen: vec![],
                        },
                        cfg,
                    )
                })
                .collect();
            let mut sim = Simulation::new(SimConfig::jittery(21, 2, 25), procs);
            sim.run();
            (sim.now(), sim.stats().total_messages())
        };
        assert_eq!(run(SessionConfig::reliable()), {
            let mut cfg = SessionConfig::reliable();
            cfg.detector = DetectorConfig {
                enabled: false,
                ping_interval: 1,
                suspect_after: 1,
                idle_rounds: 1,
            };
            run(cfg)
        });
    }
}
