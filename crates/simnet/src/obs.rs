//! The observability layer shared by both runtimes: a metrics registry
//! (counters + log₂ histograms), periodic per-processor time-series
//! sampling, and the [`Obs`] bundle a [`Runtime`](crate::Runtime) hands
//! back for export.
//!
//! Both substrates emit the same schema: the discrete-event simulator
//! samples on its virtual clock, the threaded cluster on wall-clock
//! microseconds, and every record is exportable as JSON Lines via the
//! hand-rolled writers here (the vendored `serde` is a no-op stub, so the
//! serialization is explicit and pinned by a golden-file test).

use std::collections::BTreeMap;

use crate::health::{Alert, HealthConfig, HealthReport};
use crate::trace::{json_escape_into, Trace};
use crate::{ProcId, SimTime};

/// Observability knobs, identical for both runtimes.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObsConfig {
    /// Retain at most this many trace entries (ring buffer; 0 = no tracing).
    pub trace_capacity: usize,
    /// Snapshot each processor's [`Process::metrics`](crate::Process::metrics)
    /// at most every this many ticks (0 = no sampling). Samples are taken
    /// when an action executes on the processor, so an idle processor emits
    /// no redundant points.
    pub sample_interval: u64,
    /// Online watchdog rules evaluated at each sample boundary (disabled by
    /// default; needs `sample_interval > 0` to ever see a sample).
    pub health: HealthConfig,
}

impl ObsConfig {
    /// Tracing with the given capacity, no sampling.
    pub fn traced(trace_capacity: usize) -> Self {
        ObsConfig {
            trace_capacity,
            sample_interval: 0,
            health: HealthConfig::default(),
        }
    }
}

/// One periodic snapshot of a processor's named counters.
#[derive(Clone, Debug)]
pub struct ProcSample {
    /// Sample time (virtual or wall-clock ticks).
    pub at: SimTime,
    /// The processor sampled.
    pub proc: ProcId,
    /// The counters, as reported by
    /// [`Process::metrics`](crate::Process::metrics).
    pub pairs: Vec<(&'static str, u64)>,
    /// Point-in-time level gauges, as reported by
    /// [`Process::gauges`](crate::Process::gauges) (plus runtime-level
    /// gauges such as the simulator's event-queue depth). Unlike `pairs`
    /// these may go down between samples.
    pub gauges: Vec<(&'static str, u64)>,
}

impl ProcSample {
    /// One line of the series JSONL schema (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"at\":{},\"proc\":{},\"counters\":{{",
            self.at.ticks(),
            self.proc.0
        );
        for (i, (name, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, name);
            s.push_str(&format!("\":{v}"));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, name);
            s.push_str(&format!("\":{v}"));
        }
        s.push_str("}}");
        s
    }
}

/// Everything a run observed: the causal trace plus the per-processor
/// metrics time series. Extract with
/// [`Runtime::take_obs`](crate::Runtime::take_obs).
#[derive(Debug, Default)]
pub struct Obs {
    /// The causal event trace.
    pub trace: Trace,
    /// Per-processor counter snapshots, in sample order.
    pub series: Vec<ProcSample>,
    /// Watchdog alerts, in firing order (empty unless
    /// [`HealthConfig::enabled`] and sampling are both on).
    pub alerts: Vec<Alert>,
}

impl Obs {
    /// The trace as JSON Lines.
    pub fn trace_jsonl(&self) -> String {
        self.trace.to_jsonl()
    }

    /// The time series as JSON Lines.
    pub fn series_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// The alert stream as JSON Lines.
    pub fn alerts_jsonl(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&a.to_json());
            out.push('\n');
        }
        out
    }

    /// Summarize the run's watchdog activity.
    pub fn health_report(&self) -> HealthReport {
        HealthReport::build(&self.alerts)
    }
}

/// Shared sampling cadence: remembers, per processor, when the last sample
/// was taken, and decides when the next is due. Used internally by both
/// runtimes so their series have identical semantics.
#[derive(Debug, Default)]
pub(crate) struct Sampler {
    interval: u64,
    last: Vec<Option<SimTime>>,
}

impl Sampler {
    pub(crate) fn new(interval: u64, n_procs: usize) -> Self {
        Sampler {
            interval,
            last: vec![None; n_procs],
        }
    }

    /// `true` if a sample of `proc` is due at `now` (and marks it taken).
    pub(crate) fn due(&mut self, proc: ProcId, now: SimTime) -> bool {
        if self.interval == 0 {
            return false;
        }
        let slot = &mut self.last[proc.index()];
        match *slot {
            Some(prev) if now < prev + self.interval => false,
            _ => {
                *slot = Some(now);
                true
            }
        }
    }
}

/// A power-of-two-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds values whose bit length is `i` (i.e. `v == 0` in bucket
/// 0, otherwise `2^(i-1) <= v < 2^i`), giving ~2× resolution over the whole
/// range at fixed size — the standard shape for latency recording.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (clamped to `0..=1`), resolved to its bucket's upper
    /// bound — an estimate within 2× of the true value, which is what log₂
    /// buckets buy. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return if i == 0 {
                    0
                } else {
                    // Upper bound of the bucket, clamped to the observed max.
                    // Written as a right shift because bucket 64 (values with
                    // the top bit set) would overflow `1u64 << 64`.
                    (u64::MAX >> (64 - i)).min(self.max)
                };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A named bag of counters and histograms — the aggregation point
/// experiments use instead of ad-hoc per-bin arithmetic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter (created at 0).
    pub fn inc(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record an observation into the named histogram (created empty).
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// The named histogram, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate `(name, value)` over counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate `(name, histogram)` in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }
}

/// Compute `(name, increase)` pairs between two `Process::metrics`
/// snapshots taken around one action. Names present only in `after` are
/// treated as rising from 0; decreases are skipped (counters are expected
/// to be monotone within an action).
pub(crate) fn metric_deltas(
    before: &[(&'static str, u64)],
    after: &[(&'static str, u64)],
) -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();
    for &(name, now) in after {
        let prev = before
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        if now > prev {
            out.push((name, now - prev));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!(h.mean() > 0.0);
        assert_eq!(h.quantile(0.0), 0);
        // The top quantile lands in 1000's bucket, clamped to the max.
        assert_eq!(h.quantile(1.0), 1000);
        // Median of [0,1,2,3,100,1000]: rank 3 (value 3) → bucket [2,4).
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_sums() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 50);
    }

    #[test]
    fn registry_counts_and_observes() {
        let mut r = MetricsRegistry::new();
        r.inc("ops", 2);
        r.inc("ops", 3);
        r.observe("latency", 10);
        r.observe("latency", 20);
        assert_eq!(r.counter("ops"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.histogram("latency").unwrap().count(), 2);
        assert_eq!(r.counters().count(), 1);
        assert_eq!(r.histograms().count(), 1);
    }

    #[test]
    fn sampler_respects_interval() {
        let mut s = Sampler::new(10, 2);
        assert!(s.due(ProcId(0), SimTime(0)), "first sample is always due");
        assert!(!s.due(ProcId(0), SimTime(5)));
        assert!(s.due(ProcId(0), SimTime(10)));
        assert!(s.due(ProcId(1), SimTime(3)), "per-processor cadence");
        let mut off = Sampler::new(0, 1);
        assert!(!off.due(ProcId(0), SimTime(0)), "interval 0 disables");
    }

    #[test]
    fn metric_deltas_reports_increases_only() {
        let before = vec![("a", 1u64), ("b", 5)];
        let after = vec![("a", 3u64), ("b", 5), ("c", 2)];
        assert_eq!(metric_deltas(&before, &after), vec![("a", 2), ("c", 2)]);
    }

    #[test]
    fn sample_json_shape() {
        let s = ProcSample {
            at: SimTime(42),
            proc: ProcId(3),
            pairs: vec![("x", 1), ("y", 2)],
            gauges: vec![("g", 7)],
        };
        assert_eq!(
            s.to_json(),
            "{\"at\":42,\"proc\":3,\"counters\":{\"x\":1,\"y\":2},\"gauges\":{\"g\":7}}"
        );
        let bare = ProcSample {
            at: SimTime(1),
            proc: ProcId(0),
            pairs: Vec::new(),
            gauges: Vec::new(),
        };
        assert_eq!(
            bare.to_json(),
            "{\"at\":1,\"proc\":0,\"counters\":{},\"gauges\":{}}"
        );
    }
}
