//! Causal op-tracing: a bounded ring buffer of runtime events with span
//! ids, per-hop metric deltas, and a line-oriented JSON export.
//!
//! Every record answers "what happened, where, and on behalf of which
//! operation". The *span* of an entry is the driver-minted operation id the
//! event is causally attributable to: payloads that name an operation carry
//! it explicitly ([`Payload::span`](crate::Payload::span)), and both
//! runtimes propagate it through everything an action sends — so split
//! rounds, copy installs, and relays triggered by an insert are stamped
//! with that insert's span even though their payloads never mention it.
//!
//! The buffer retains the **most recent** `cap` entries: debugging a failed
//! run needs the tail, not the head. `dropped` counts evicted entries.

use std::collections::{BTreeMap, VecDeque};

use crate::{ProcId, SimTime};

/// What a trace entry records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A message was delivered and its action executed.
    Deliver,
    /// A timer fired and its action executed.
    Timer,
    /// A message left the system toward [`ProcId::EXTERNAL`].
    Output,
    /// A fault destroyed a message (loss, partition, or crash); `detail`
    /// says which.
    Drop,
    /// A fault scheduled a second delivery of a message.
    Duplicate,
    /// A fault plan crashed the processor.
    Crash,
    /// A fault plan restarted the processor.
    Restart,
    /// A failure detector began suspecting a peer (`detail` names it).
    Suspect,
    /// A failure detector heard from a suspected peer again.
    Alive,
    /// A recovery orchestrator quarantined a suspected peer (relays to it
    /// are suppressed and queued for anti-entropy).
    Quarantine,
    /// A restarted processor re-entered the replication (§4.3 rejoin plus
    /// anti-entropy catch-up).
    Rejoin,
    /// A health watchdog fired ([`crate::HealthMonitor`]); `kind` names the
    /// rule and `detail` carries the value/threshold pair. Alert entries
    /// are retained preferentially under ring-buffer pressure (the evidence
    /// around them may be evicted, the verdict itself must not be).
    Alert,
}

impl TraceEvent {
    /// Stable lowercase label used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEvent::Deliver => "deliver",
            TraceEvent::Timer => "timer",
            TraceEvent::Output => "output",
            TraceEvent::Drop => "drop",
            TraceEvent::Duplicate => "duplicate",
            TraceEvent::Crash => "crash",
            TraceEvent::Restart => "restart",
            TraceEvent::Suspect => "suspect",
            TraceEvent::Alive => "alive",
            TraceEvent::Quarantine => "quarantine",
            TraceEvent::Rejoin => "rejoin",
            TraceEvent::Alert => "alert",
        }
    }
}

/// One recorded runtime event.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Global record number (assigned by [`Trace::record`]; causal order
    /// within a processor and within a channel).
    pub seq: u64,
    /// Event time: virtual ticks on the simulator, microseconds since spawn
    /// on the threaded runtime.
    pub at: SimTime,
    /// Sender (`ProcId::EXTERNAL` for injected messages; the processor
    /// itself for timers, crashes, and restarts).
    pub from: ProcId,
    /// The destination processor ([`ProcId::EXTERNAL`] for outputs).
    pub to: ProcId,
    /// What happened.
    pub event: TraceEvent,
    /// The payload's `kind()` (`"timer"` for timer events).
    pub kind: &'static str,
    /// The operation this event is causally attributable to, if any.
    pub span: Option<u64>,
    /// `true` when the payload is a session-layer retransmission rather
    /// than a first transmission.
    pub redelivery: bool,
    /// Ticks the delivery waited for a busy node manager (simulator
    /// service-time model; always 0 on the threaded runtime).
    pub wait: u64,
    /// `format!("{:?}")` of the payload (or a fault annotation), captured
    /// only while tracing.
    pub detail: String,
    /// Named `Process::metrics` counters this action changed, as
    /// `(name, increase)` pairs.
    pub deltas: Vec<(&'static str, u64)>,
}

impl TraceEntry {
    /// One line of the JSONL schema (no trailing newline). Field set and
    /// order are pinned by a golden-file test; extend, don't reorder.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96 + self.detail.len());
        s.push_str(&format!(
            "{{\"seq\":{},\"at\":{},\"from\":{},\"to\":{},\"event\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.at.ticks(),
            // External is serialized as -1 so consumers get a plain integer.
            proc_json(self.from),
            proc_json(self.to),
            self.event.as_str(),
            self.kind,
        ));
        match self.span {
            Some(sp) => s.push_str(&format!(",\"span\":{sp}")),
            None => s.push_str(",\"span\":null"),
        }
        s.push_str(&format!(
            ",\"redelivery\":{},\"wait\":{}",
            self.redelivery, self.wait
        ));
        s.push_str(",\"detail\":\"");
        json_escape_into(&mut s, &self.detail);
        s.push_str("\",\"deltas\":{");
        for (i, (name, inc)) in self.deltas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, name);
            s.push_str(&format!("\":{inc}"));
        }
        s.push_str("}}");
        s
    }
}

fn proc_json(p: ProcId) -> i64 {
    if p.is_external() {
        -1
    } else {
        p.0 as i64
    }
}

/// Escape `src` for inclusion inside a JSON string literal.
pub(crate) fn json_escape_into(out: &mut String, src: &str) {
    for c in src.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A bounded in-memory trace of runtime events.
///
/// A ring buffer: once `cap` entries are held, recording a new entry evicts
/// the **oldest** (and counts it in [`Trace::dropped`]), so the trace always
/// ends at the present. `seq` numbers are global, so evictions are visible
/// as a gap at the front.
#[derive(Debug, Default)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
    /// Retained [`TraceEvent::Alert`] entries — the eviction policy below
    /// skips them while anything else can be evicted instead.
    retained_alerts: usize,
}

impl Trace {
    /// A trace retaining at most `cap` of the most recent entries.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            entries: VecDeque::new(),
            cap,
            dropped: 0,
            next_seq: 0,
            retained_alerts: 0,
        }
    }

    /// Is recording enabled at all? (`cap > 0`.)
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Append an entry, stamping its `seq` and evicting the oldest entry if
    /// the buffer is full. Public so tools and tests can build traces by
    /// hand; the runtimes call it internally.
    ///
    /// Eviction policy (pinned by tests): the oldest **non-alert** entry is
    /// evicted first, so [`TraceEvent::Alert`] records are never silently
    /// pushed out ahead of ordinary traffic — a post-mortem must always see
    /// the verdicts even when the evidence window has wrapped. Only when
    /// the entire ring is alerts does the oldest alert go. A trace that
    /// never records an alert evicts exactly as a plain FIFO ring.
    pub fn record(&mut self, mut entry: TraceEntry) {
        if self.cap == 0 {
            return;
        }
        entry.seq = self.next_seq;
        self.next_seq += 1;
        if self.entries.len() == self.cap {
            if self.retained_alerts == 0 {
                self.entries.pop_front();
            } else if let Some(idx) = self
                .entries
                .iter()
                .position(|e| e.event != TraceEvent::Alert)
            {
                self.entries.remove(idx);
            } else {
                self.entries.pop_front();
                self.retained_alerts -= 1;
            }
            self.dropped += 1;
        }
        if entry.event == TraceEvent::Alert {
            self.retained_alerts += 1;
        }
        self.entries.push_back(entry);
    }

    /// Recorded entries, oldest retained first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted to make room (the trace's head is missing
    /// exactly this many records).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries of one payload kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Entries attributed to one span, in causal order — the end-to-end
    /// anatomy of a single operation.
    ///
    /// This scans the whole trace: O(n) per call. Callers that look up many
    /// spans (the critical-path profiler visits every op) should build a
    /// [`Trace::span_index`] once and query that instead.
    pub fn of_span(&self, span: u64) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter().filter(move |e| e.span == Some(span))
    }

    /// Build a span → entries index in one pass over the trace. Entries per
    /// span keep their trace (seq) order. The index borrows the trace, so
    /// build it after recording is done.
    pub fn span_index(&self) -> SpanIndex<'_> {
        let mut by_span: BTreeMap<u64, Vec<&TraceEntry>> = BTreeMap::new();
        for e in &self.entries {
            if let Some(sp) = e.span {
                by_span.entry(sp).or_default().push(e);
            }
        }
        SpanIndex { by_span }
    }

    /// Entries of one event type, in order.
    pub fn of_event(&self, event: TraceEvent) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter().filter(move |e| e.event == event)
    }

    /// The whole trace as JSON Lines (one entry per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// A prebuilt span → entries index over a [`Trace`], answering per-span
/// lookups in O(log #spans) instead of [`Trace::of_span`]'s O(n) scan.
#[derive(Debug, Default)]
pub struct SpanIndex<'a> {
    by_span: BTreeMap<u64, Vec<&'a TraceEntry>>,
}

impl<'a> SpanIndex<'a> {
    /// Entries attributed to `span`, in trace order (empty if unknown).
    pub fn of_span(&self, span: u64) -> &[&'a TraceEntry] {
        self.by_span.get(&span).map_or(&[], |v| v.as_slice())
    }

    /// All indexed spans, ascending.
    pub fn spans(&self) -> impl Iterator<Item = u64> + '_ {
        self.by_span.keys().copied()
    }

    /// Number of distinct spans indexed.
    pub fn len(&self) -> usize {
        self.by_span.len()
    }

    /// `true` if no entry carried a span.
    pub fn is_empty(&self) -> bool {
        self.by_span.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: &'static str) -> TraceEntry {
        TraceEntry {
            seq: 0,
            at: SimTime(0),
            from: ProcId(0),
            to: ProcId(1),
            event: TraceEvent::Deliver,
            kind,
            span: None,
            redelivery: false,
            wait: 0,
            detail: String::new(),
            deltas: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_drops() {
        let mut t = Trace::with_capacity(2);
        t.record(entry("a"));
        t.record(entry("b"));
        t.record(entry("c"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        // The tail survives: "b" and "c", with global seq numbers intact.
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["b", "c"]);
        let seqs: Vec<u64> = t.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2], "seq shows the evicted head as a gap");
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut t = Trace::with_capacity(0);
        assert!(!t.enabled());
        t.record(entry("a"));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0, "nothing recorded, nothing dropped");
    }

    #[test]
    fn filters_by_kind_span_and_event() {
        let mut t = Trace::with_capacity(10);
        t.record(entry("a"));
        let mut b = entry("b");
        b.span = Some(7);
        b.event = TraceEvent::Output;
        t.record(b);
        t.record(entry("a"));
        assert_eq!(t.of_kind("a").count(), 2);
        assert_eq!(t.of_kind("b").count(), 1);
        assert_eq!(t.of_span(7).count(), 1);
        assert_eq!(t.of_event(TraceEvent::Output).count(), 1);
        assert_eq!(t.of_event(TraceEvent::Deliver).count(), 2);
    }

    #[test]
    fn span_index_matches_linear_scan() {
        let mut t = Trace::with_capacity(64);
        for i in 0..30u64 {
            let mut e = entry("k");
            e.at = SimTime(i);
            e.span = if i % 3 == 0 { None } else { Some(i % 5) };
            t.record(e);
        }
        let idx = t.span_index();
        assert!(!idx.is_empty());
        for span in 0..6u64 {
            let linear: Vec<u64> = t.of_span(span).map(|e| e.seq).collect();
            let indexed: Vec<u64> = idx.of_span(span).iter().map(|e| e.seq).collect();
            assert_eq!(linear, indexed, "span {span}");
        }
        assert_eq!(idx.spans().count(), idx.len());
        assert!(SpanIndex::default().of_span(1).is_empty());
    }

    #[test]
    fn eviction_skips_alert_entries() {
        let mut t = Trace::with_capacity(3);
        t.record(entry("a"));
        let mut alert = entry("health.backlog_growth");
        alert.event = TraceEvent::Alert;
        t.record(alert);
        t.record(entry("b"));
        // Overflow: "a" (oldest non-alert) goes, the alert stays.
        t.record(entry("c"));
        assert_eq!(t.dropped(), 1);
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["health.backlog_growth", "b", "c"]);
        // Next overflow evicts "b" — the alert is older but protected.
        t.record(entry("d"));
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["health.backlog_growth", "c", "d"]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn all_alert_ring_falls_back_to_fifo() {
        let mut t = Trace::with_capacity(2);
        for i in 0..3 {
            let mut a = entry(["x", "y", "z"][i]);
            a.event = TraceEvent::Alert;
            t.record(a);
        }
        assert_eq!(t.dropped(), 1);
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec!["y", "z"],
            "oldest alert goes when all are alerts"
        );
        // The accounting stayed consistent: a non-alert entry is still the
        // preferred victim afterwards.
        t.record(entry("plain"));
        t.record(entry("plain2"));
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["z", "plain2"]);
    }

    #[test]
    fn json_escapes_details() {
        let mut e = entry("x");
        e.detail = "say \"hi\"\nback\\slash".into();
        let line = e.to_json();
        assert!(line.contains(r#"say \"hi\"\nback\\slash"#));
        assert!(!line.contains('\n'), "one line per entry");
    }

    #[test]
    fn external_serializes_as_minus_one() {
        let mut e = entry("client");
        e.from = ProcId::EXTERNAL;
        assert!(e.to_json().contains("\"from\":-1"));
    }
}
