//! Optional capture of delivered messages, for debugging and for the
//! schedule-shape assertions in protocol tests.

use crate::{ProcId, SimTime};

/// One delivered message (or fired timer), as recorded by the tracer.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Virtual delivery time.
    pub at: SimTime,
    /// Sender (`ProcId::EXTERNAL` for injected messages).
    pub from: ProcId,
    /// Receiver.
    pub to: ProcId,
    /// The payload's `kind()`, or `"timer"`.
    pub kind: &'static str,
    /// `format!("{:?}")` of the payload, captured lazily only when tracing.
    pub detail: String,
}

/// A bounded in-memory trace of deliveries.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    cap: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `cap` entries (later entries are dropped and
    /// counted).
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            entries: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.cap {
            self.entries.push(entry);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded entries, in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries discarded after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries of one kind, in delivery order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: &'static str) -> TraceEntry {
        TraceEntry {
            at: SimTime(0),
            from: ProcId(0),
            to: ProcId(1),
            kind,
            detail: String::new(),
        }
    }

    #[test]
    fn caps_and_counts_drops() {
        let mut t = Trace::with_capacity(2);
        t.record(entry("a"));
        t.record(entry("b"));
        t.record(entry("c"));
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filters_by_kind() {
        let mut t = Trace::with_capacity(10);
        t.record(entry("a"));
        t.record(entry("b"));
        t.record(entry("a"));
        assert_eq!(t.of_kind("a").count(), 2);
        assert_eq!(t.of_kind("b").count(), 1);
    }
}
