//! # simnet — deterministic message-passing network simulation
//!
//! `simnet` is the substrate on which the dB-tree protocols run. It provides
//! two runtimes that share a single [`Process`] trait:
//!
//! * [`Simulation`] — a single-threaded discrete-event simulator with a
//!   virtual clock. Channels are reliable and FIFO per `(src, dst)` pair
//!   (exactly the network model assumed by the paper, §4), message latencies
//!   are configurable, and every run is a pure function of its inputs and RNG
//!   seed, so protocol races are reproducible and property-testable.
//! * [`threaded::Cluster`] — the same processes driven by real OS threads and
//!   crossbeam channels, for wall-clock parallelism.
//!
//! Both implement the [`Runtime`] trait, and the generic workload driver in
//! [`driver`] (op-id allocation, pending-op tracking, closed- and open-loop
//! driving, latency statistics) is written against that trait alone — one
//! driver implementation serves every search structure on either substrate.
//!
//! The simulator counts messages by kind and by locality (see [`NetStats`]),
//! which is what the paper's message-complexity claims (e.g. `3·|copies|` vs
//! `|copies|` messages per split) are measured with.
//!
//! ```
//! use simnet::{Simulation, SimConfig, Process, Context, ProcId, Payload};
//!
//! #[derive(Clone, Debug)]
//! enum Ping { Ping(u32), Pong(u32) }
//! impl Payload for Ping {
//!     fn kind(&self) -> &'static str {
//!         match self { Ping::Ping(_) => "ping", Ping::Pong(_) => "pong" }
//!     }
//! }
//!
//! struct Echo;
//! impl Process for Echo {
//!     type Msg = Ping;
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: ProcId, msg: Ping) {
//!         if let Ping::Ping(n) = msg { ctx.send(from, Ping::Pong(n)); }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default(), vec![Echo, Echo]);
//! sim.inject(ProcId(0), Ping::Ping(7));
//! sim.run();
//! assert_eq!(sim.stats().total_messages(), 2);
//! ```

#![warn(missing_docs)]

mod context;
pub mod driver;
// Public (but doc-hidden) so the event-queue microbench can drive it;
// not part of the supported API surface.
#[doc(hidden)]
#[allow(missing_docs)]
pub mod event;
mod fault;
pub mod fx;
mod health;
mod latency;
mod obs;
pub mod profile;
mod runtime;
pub mod schedule;
pub mod session;
mod sim;
mod stats;
pub mod threaded;
mod time;
mod trace;

pub use context::Context;
pub use driver::{Driver, OpenLoopCfg, RetryPolicy};
pub use fault::{CrashEvent, FaultPlan, FaultStats, Partition};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use health::{Alert, HealthConfig, HealthMonitor, HealthReport};
pub use latency::LatencyModel;
pub use obs::{Histogram, MetricsRegistry, Obs, ObsConfig, ProcSample};
pub use profile::{
    folded_events, folded_waits, Hop, OpProfile, Profiler, RunProfile, Segments, ServiceTimes,
};
pub use runtime::{Poll, QuiesceError, Runtime};
pub use schedule::{Choice, ChoiceKind, FifoScheduler, Scheduler};
pub use session::{DetectorConfig, SessionConfig, SessionMsg, SessionProc, SessionStats};
pub use sim::{RunOutcome, SimConfig, Simulation};
pub use stats::{KindStats, NetStats};
pub use time::SimTime;
pub use trace::{SpanIndex, Trace, TraceEntry, TraceEvent};

use std::fmt;

/// Identifier of a simulated processor.
///
/// Processors are dense small integers, assigned in the order the process
/// objects are handed to [`Simulation::new`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Sender id used for messages injected from outside the simulation
    /// (client requests). Replies sent *to* this id are collected as
    /// simulation outputs rather than delivered to a process.
    pub const EXTERNAL: ProcId = ProcId(u32::MAX);

    /// Returns `true` for the synthetic external endpoint.
    #[inline]
    pub fn is_external(self) -> bool {
        self == Self::EXTERNAL
    }

    /// The processor's index into the process table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_external() {
            write!(f, "P(ext)")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Message payloads carried by the network.
///
/// `kind` buckets the per-kind statistics; `size_hint` feeds the byte
/// counters (a logical size — the simulator never serializes).
pub trait Payload: Clone + fmt::Debug {
    /// A short static label used to bucket message statistics.
    fn kind(&self) -> &'static str {
        "msg"
    }

    /// Logical size of the message in bytes, for byte accounting.
    fn size_hint(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// The operation id this message is explicitly tagged with, for causal
    /// tracing. Most payloads return `None` and inherit the span of the
    /// action that sent them (the runtime propagates it); only messages
    /// that *name* an operation — client requests, replies, buffered relay
    /// items — override this.
    fn span(&self) -> Option<u64> {
        None
    }

    /// `true` if this delivery is a repeat of an earlier transmission
    /// (session-layer retransmission). Traced as `redelivery`.
    fn redelivery(&self) -> bool {
        false
    }
}

/// A state machine that runs on one simulated processor.
///
/// One invocation of [`Process::on_message`] is the paper's *action*: it runs
/// atomically with respect to all other actions on the same processor, and
/// schedules its subsequent actions by sending messages through the
/// [`Context`].
pub trait Process {
    /// The message type this process exchanges.
    type Msg: Payload;

    /// Called once before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Deliver one message. Runs atomically (the paper's node-manager model).
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: ProcId, msg: Self::Msg);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg>, _token: u64) {}

    /// The processor restarted after a crash scheduled by a
    /// [`FaultPlan`]. Everything volatile — in-flight deliveries to this
    /// processor and its armed timers — is already gone; the process object
    /// itself survives, playing the paper's §1.1 "stable" store (a
    /// recoverable queue manager). Implementations should discard whatever
    /// state they model as volatile and re-arm any timers they need.
    ///
    /// Never called without an active fault plan.
    fn on_restart(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// A failure detector changed its opinion of `peer`: `up = false` when
    /// the peer became suspect (no traffic within the detector's threshold),
    /// `up = true` when a suspected peer was heard from again. The default
    /// ignores the hint — detection is advisory; safety never depends on it.
    ///
    /// Called by the session-layer detector (when enabled) from within an
    /// action, so implementations may send messages and set timers.
    fn on_peer_change(&mut self, _ctx: &mut Context<'_, Self::Msg>, _peer: ProcId, _up: bool) {}

    /// Named monotone counters describing this process's internal work,
    /// snapshotted by the observability layer: the trace records the
    /// per-action *delta* of each counter, and the sampler emits periodic
    /// per-processor time series. The default (no counters) disables both.
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Named point-in-time *level* gauges (queue depths, backlog ages,
    /// dwell times) — unlike [`Process::metrics`] these may fall as well as
    /// rise, so the trace never diffs them; the sampler snapshots them into
    /// the same time series and the [`HealthMonitor`] evaluates its rules
    /// over them. `now` is the sample time, so age-style gauges can be
    /// computed without the process keeping its own clock. Called only when
    /// a sample is due — with sampling disabled this is never invoked, so
    /// the default (no gauges) costs nothing.
    fn gauges(&self, _now: SimTime) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// A digest of this process's *logical* state, for the model checker's
    /// visited-state pruning ([`Simulation::fingerprint`]). Two states with
    /// equal fingerprints must be behaviorally indistinguishable, so
    /// implementations hash the protocol-visible state (stored entries,
    /// links, in-progress restructures) and exclude bookkeeping that cannot
    /// influence future behavior (metrics counters, history logs, wall
    /// times). The default `None` opts the whole simulation out — pruning
    /// on an unfaithful digest would silently skip distinct states.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}
