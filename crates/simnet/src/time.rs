//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in abstract "ticks".
///
/// The unit is arbitrary; the default latency model charges 1 tick for a
/// local hand-off and 10 ticks for a remote hop, so tick counts read roughly
/// like microseconds on a fast LAN.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference in ticks.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(5);
        assert_eq!((t + 3).ticks(), 8);
        assert_eq!(SimTime(9) - SimTime(4), 5);
        assert_eq!(SimTime(4) - SimTime(9), 0, "saturating");
        assert_eq!(SimTime(9).since(SimTime(4)), 5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime(1));
        let mut t = SimTime::ZERO;
        t += 2;
        assert_eq!(t, SimTime(2));
    }
}
