//! The [`Runtime`] abstraction: one interface over both execution
//! substrates.
//!
//! The paper's processing model (§1.1: a queue manager feeding a node
//! manager over reliable FIFO channels) says nothing about *how* actions are
//! scheduled, so neither does the driver layer. [`Runtime`] is the seam:
//!
//! * [`Simulation`](crate::Simulation) — deterministic discrete events on a
//!   virtual clock;
//! * [`threaded::Cluster`](crate::threaded::Cluster) — one OS thread per
//!   processor, wall-clock microseconds as ticks.
//!
//! The generic workload driver ([`crate::driver`]) is written against this
//! trait only, which is what lets every protocol run — and be measured —
//! identically on both runtimes.

use crate::{Obs, ProcId, Process, SimTime};

/// Why a run aborted before the network went silent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiesceError {
    /// `SimConfig::max_events` was hit — likely a protocol livelock (or a
    /// fault plan that keeps a retransmission loop alive forever).
    EventLimit {
        /// Events delivered when the limit tripped.
        delivered: u64,
    },
    /// `SimConfig::max_time` was passed.
    TimeLimit {
        /// Virtual time when the limit tripped.
        now: SimTime,
    },
    /// The runtime stopped making progress while operations were still
    /// outstanding (threaded runs: the quiescence probe stabilized with
    /// completions missing; simulated runs never produce this).
    Stalled {
        /// Operations still pending when the run gave up.
        pending: usize,
    },
}

impl std::fmt::Display for QuiesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuiesceError::EventLimit { delivered } => {
                write!(f, "event limit hit after {delivered} deliveries")
            }
            QuiesceError::TimeLimit { now } => {
                write!(f, "time limit hit at t={}", now.ticks())
            }
            QuiesceError::Stalled { pending } => {
                write!(f, "runtime stalled with {pending} operations pending")
            }
        }
    }
}

impl std::error::Error for QuiesceError {}

/// What one [`Runtime::poll`] call observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poll {
    /// External outputs are ready to be drained.
    Outputs,
    /// The requested deadline was reached with no outputs before it.
    Deadline,
    /// The runtime is quiescent: no events remain anywhere (only the
    /// simulator can prove this cheaply; threads report `Idle` instead).
    Quiescent,
    /// Nothing happened for an implementation-chosen grace period; the
    /// caller should decide whether to keep waiting or probe for
    /// quiescence with [`Runtime::settle`].
    Idle,
    /// A configured run limit tripped.
    Limit(QuiesceError),
}

/// An execution substrate for [`Process`] state machines.
///
/// Implemented by the discrete-event [`Simulation`](crate::Simulation) and
/// the wall-clock [`threaded::Cluster`](crate::threaded::Cluster). A
/// `Runtime` owns its processes for the duration of the run and hands them
/// back — joined and final — via [`Runtime::into_procs`], so end-of-run
/// checkers (§3 history digests, convergence, metrics) work identically on
/// both substrates.
pub trait Runtime {
    /// The process type this runtime executes.
    type Proc: Process;

    /// Number of processors.
    fn num_procs(&self) -> usize;

    /// Current time in ticks (virtual for the simulator, wall-clock
    /// microseconds since spawn for threads).
    fn now(&self) -> SimTime;

    /// Deliver `msg` to `to` from [`ProcId::EXTERNAL`] (a client request).
    fn inject(&mut self, to: ProcId, msg: <Self::Proc as Process>::Msg);

    /// Advance until external outputs are available, the optional deadline
    /// is reached, the runtime quiesces, or a limit trips. With no deadline
    /// the simulator never reports [`Poll::Deadline`] or [`Poll::Idle`];
    /// threads report [`Poll::Idle`] after a grace period so callers can
    /// probe for quiescence.
    fn poll(&mut self, deadline: Option<SimTime>) -> Poll;

    /// Run until the network is silent: every queue empty, every armed
    /// timer fired and processed. The simulator steps to queue exhaustion;
    /// the threaded runtime runs a probe barrier until the global action
    /// count stabilizes. Outputs produced on the way are retained for
    /// [`Runtime::drain_outputs`].
    fn settle(&mut self) -> Result<(), QuiesceError>;

    /// Remove and return all collected external outputs, stamped with their
    /// emission time and emitting processor.
    fn drain_outputs(&mut self) -> Vec<(SimTime, ProcId, <Self::Proc as Process>::Msg)>;

    /// Take the observability data accumulated so far — the causal trace
    /// and the per-processor metrics time series — leaving the runtime with
    /// fresh, empty buffers. Both substrates emit the same schema, so
    /// exports and equivalence checks are substrate-agnostic. The default
    /// (for runtimes without observability) returns an empty [`Obs`].
    fn take_obs(&mut self) -> Obs {
        Obs::default()
    }

    /// Tear the runtime down and hand back the final process states (the
    /// threaded runtime joins its worker threads first). Post-run
    /// inspection — history digests, metrics, convergence checks — starts
    /// here.
    fn into_procs(self) -> Vec<Self::Proc>
    where
        Self: Sized;
}
