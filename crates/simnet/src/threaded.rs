//! A threaded runtime for the same [`Process`] trait.
//!
//! Each process runs on its own OS thread with a crossbeam channel as its
//! message queue (the paper's queue manager). Channels are reliable and FIFO,
//! matching the §4 network model; cross-channel interleaving comes from real
//! scheduler nondeterminism instead of a latency model.
//!
//! The cluster is intended for example programs that want genuine wall-clock
//! parallelism. Tests and experiments should prefer the deterministic
//! [`Simulation`](crate::Simulation).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::context::Effect;
use crate::{Context, Payload, ProcId, Process, SimTime};

use rand::rngs::SmallRng;
use rand::SeedableRng;

enum Envelope<M> {
    Msg { from: ProcId, msg: M },
    Timer { token: u64 },
    Shutdown,
}

/// Commands for the cluster's dedicated timer thread.
enum TimerCmd {
    At {
        deadline: Instant,
        proc: ProcId,
        token: u64,
    },
    Shutdown,
}

type Channel<M> = (Sender<Envelope<M>>, Receiver<Envelope<M>>);

/// Min-heap timer wheel: sleeps until the earliest deadline (or a new
/// command), then delivers `Envelope::Timer` to the owning process. One
/// tick of `Context::set_timer` is one microsecond, matching the `now()`
/// clock the worker threads report.
fn run_timers<M: Payload + Send + 'static>(
    cmds: Receiver<TimerCmd>,
    senders: Vec<Sender<Envelope<M>>>,
) {
    // (deadline, seq, proc, token); seq keeps same-deadline timers FIFO.
    let mut heap: BinaryHeap<Reverse<(Instant, u64, u32, u64)>> = BinaryHeap::new();
    let mut next_seq = 0u64;
    loop {
        let now = Instant::now();
        while let Some(&Reverse((deadline, _, proc, token))) = heap.peek() {
            if deadline > now {
                break;
            }
            heap.pop();
            let _ = senders[proc as usize].send(Envelope::Timer { token });
        }
        let cmd = match heap.peek() {
            Some(&Reverse((deadline, ..))) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match cmds.recv_timeout(wait) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match cmds.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        match cmd {
            TimerCmd::At {
                deadline,
                proc,
                token,
            } => {
                next_seq += 1;
                heap.push(Reverse((deadline, next_seq, proc.0, token)));
            }
            TimerCmd::Shutdown => break,
        }
    }
}

/// A running cluster of processes on OS threads.
///
/// Inject messages with [`Cluster::inject`], collect replies addressed to
/// [`ProcId::EXTERNAL`] with [`Cluster::recv_output`], then call
/// [`Cluster::shutdown`].
pub struct Cluster<M: Payload + Send + 'static> {
    senders: Vec<Sender<Envelope<M>>>,
    outputs: Receiver<(ProcId, M)>,
    handles: Vec<thread::JoinHandle<()>>,
    timer_cmds: Sender<TimerCmd>,
    timer_handle: thread::JoinHandle<()>,
}

impl<M: Payload + Send + 'static> Cluster<M> {
    /// Spawn one thread per process.
    pub fn spawn<P>(procs: Vec<P>) -> Self
    where
        P: Process<Msg = M> + Send + 'static,
    {
        let n = procs.len();
        let (out_tx, out_rx) = unbounded::<(ProcId, M)>();
        let channels: Vec<Channel<M>> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope<M>>> = channels.iter().map(|(tx, _)| tx.clone()).collect();

        let (timer_tx, timer_rx) = unbounded::<TimerCmd>();
        let timer_senders = senders.clone();
        let timer_handle = thread::Builder::new()
            .name("simnet-timers".into())
            .spawn(move || run_timers(timer_rx, timer_senders))
            .expect("spawn simnet timer thread");

        let mut handles = Vec::with_capacity(n);
        for (i, (mut proc, (_, rx))) in procs.into_iter().zip(channels).enumerate() {
            let me = ProcId(i as u32);
            let peer_senders = senders.clone();
            let out = out_tx.clone();
            let timers = timer_tx.clone();
            let handle = thread::Builder::new()
                .name(format!("simnet-p{i}"))
                .spawn(move || {
                    let epoch = Instant::now();
                    let mut rng = SmallRng::seed_from_u64(0x5EED ^ i as u64);
                    let mut effects: Vec<Effect<M>> = Vec::new();
                    let now = |epoch: Instant| SimTime(epoch.elapsed().as_micros() as u64);

                    // Run on_start.
                    {
                        let mut ctx = Context {
                            me,
                            now: now(epoch),
                            effects: &mut effects,
                            rng: &mut rng,
                        };
                        proc.on_start(&mut ctx);
                    }
                    flush(&mut effects, me, &peer_senders, &out, &timers);

                    while let Ok(env) = rx.recv() {
                        match env {
                            Envelope::Msg { from, msg } => {
                                let mut ctx = Context {
                                    me,
                                    now: now(epoch),
                                    effects: &mut effects,
                                    rng: &mut rng,
                                };
                                proc.on_message(&mut ctx, from, msg);
                                flush(&mut effects, me, &peer_senders, &out, &timers);
                            }
                            Envelope::Timer { token } => {
                                let mut ctx = Context {
                                    me,
                                    now: now(epoch),
                                    effects: &mut effects,
                                    rng: &mut rng,
                                };
                                proc.on_timer(&mut ctx, token);
                                flush(&mut effects, me, &peer_senders, &out, &timers);
                            }
                            Envelope::Shutdown => break,
                        }
                    }
                })
                .expect("spawn simnet thread");
            handles.push(handle);
        }

        Cluster {
            senders,
            outputs: out_rx,
            handles,
            timer_cmds: timer_tx,
            timer_handle,
        }
    }

    /// Number of processes in the cluster.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the cluster has no processes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Send `msg` to `to` from the external endpoint.
    pub fn inject(&self, to: ProcId, msg: M) {
        let _ = self.senders[to.index()].send(Envelope::Msg {
            from: ProcId::EXTERNAL,
            msg,
        });
    }

    /// Blocking-receive the next message addressed to `ProcId::EXTERNAL`.
    pub fn recv_output(&self) -> Option<(ProcId, M)> {
        self.outputs.recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_output_timeout(&self, timeout: std::time::Duration) -> Option<(ProcId, M)> {
        self.outputs.recv_timeout(timeout).ok()
    }

    /// Stop all threads (after their queues drain to the shutdown marker) and
    /// join them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
        let _ = self.timer_cmds.send(TimerCmd::Shutdown);
        let _ = self.timer_handle.join();
    }
}

fn flush<M: Payload>(
    effects: &mut Vec<Effect<M>>,
    me: ProcId,
    peers: &[Sender<Envelope<M>>],
    out: &Sender<(ProcId, M)>,
    timers: &Sender<TimerCmd>,
) {
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { to, msg } => {
                if to.is_external() {
                    let _ = out.send((me, msg));
                } else {
                    let _ = peers[to.index()].send(Envelope::Msg { from: me, msg });
                }
            }
            Effect::Timer { delay, token } => {
                // One virtual tick = one microsecond, the granularity of the
                // `now()` clock the worker reports to its process.
                let deadline = Instant::now() + Duration::from_micros(delay);
                let _ = timers.send(TimerCmd::At {
                    deadline,
                    proc: me,
                    token,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl Payload for Num {}

    struct Doubler;
    impl Process for Doubler {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: ProcId, msg: Num) {
            if from.is_external() {
                ctx.send(ProcId::EXTERNAL, Num(msg.0 * 2));
            }
        }
    }

    #[test]
    fn round_trip() {
        let cluster = Cluster::spawn(vec![Doubler, Doubler]);
        cluster.inject(ProcId(0), Num(21));
        cluster.inject(ProcId(1), Num(4));
        let mut got = vec![];
        for _ in 0..2 {
            let (_, Num(n)) = cluster
                .recv_output_timeout(Duration::from_secs(5))
                .expect("output");
            got.push(n);
        }
        got.sort_unstable();
        assert_eq!(got, vec![8, 42]);
        cluster.shutdown();
    }

    struct Forwarder {
        n: u32,
    }
    impl Process for Forwarder {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: ProcId, msg: Num) {
            if msg.0 == 0 {
                ctx.send(ProcId::EXTERNAL, Num(ctx.me().0 as u64));
            } else {
                let next = ProcId((ctx.me().0 + 1) % self.n);
                ctx.send(next, Num(msg.0 - 1));
            }
        }
    }

    struct TimerReporter;
    impl Process for TimerReporter {
        type Msg = Num;
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            // Deliberately armed out of deadline order (10ms before 200ms
            // on the wall clock would be flaky; 20x apart is not).
            ctx.set_timer(200_000, 2);
            ctx.set_timer(10_000, 1);
        }
        fn on_message(&mut self, _: &mut Context<'_, Num>, _: ProcId, _: Num) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Num>, token: u64) {
            ctx.send(ProcId::EXTERNAL, Num(token));
        }
    }

    #[test]
    fn timers_fire_on_threads() {
        // Regression: the threaded runtime used to silently drop
        // `Effect::Timer`, so timer-driven logic (piggyback flushing,
        // session retransmission) never ran under `Cluster`.
        let cluster = Cluster::spawn(vec![TimerReporter]);
        let mut got = vec![];
        for _ in 0..2 {
            let (_, Num(n)) = cluster
                .recv_output_timeout(Duration::from_secs(5))
                .expect("timer fired");
            got.push(n);
        }
        assert_eq!(got, vec![1, 2], "timers fire in deadline order");
        cluster.shutdown();
    }

    #[test]
    fn ring_of_threads() {
        let n = 4;
        let cluster = Cluster::spawn((0..n).map(|_| Forwarder { n }).collect());
        cluster.inject(ProcId(0), Num(9));
        let (who, _) = cluster
            .recv_output_timeout(Duration::from_secs(5))
            .expect("ring completes");
        // P0 consumes 9, P1 consumes 8, ...: value 0 is consumed by P1.
        assert_eq!(who, ProcId(1));
        cluster.shutdown();
    }
}
