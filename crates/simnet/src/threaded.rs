//! A threaded runtime for the same [`Process`] trait.
//!
//! Each process runs on its own OS thread with a crossbeam channel as its
//! message queue (the paper's queue manager). Channels are reliable and FIFO,
//! matching the §4 network model; cross-channel interleaving comes from real
//! scheduler nondeterminism instead of a latency model.
//!
//! The cluster is intended for example programs that want genuine wall-clock
//! parallelism. Tests and experiments should prefer the deterministic
//! [`Simulation`](crate::Simulation).

use std::thread;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::context::Effect;
use crate::{Context, Payload, ProcId, Process, SimTime};

use rand::rngs::SmallRng;
use rand::SeedableRng;

enum Envelope<M> {
    Msg { from: ProcId, msg: M },
    Shutdown,
}

type Channel<M> = (Sender<Envelope<M>>, Receiver<Envelope<M>>);

/// A running cluster of processes on OS threads.
///
/// Inject messages with [`Cluster::inject`], collect replies addressed to
/// [`ProcId::EXTERNAL`] with [`Cluster::recv_output`], then call
/// [`Cluster::shutdown`].
pub struct Cluster<M: Payload + Send + 'static> {
    senders: Vec<Sender<Envelope<M>>>,
    outputs: Receiver<(ProcId, M)>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl<M: Payload + Send + 'static> Cluster<M> {
    /// Spawn one thread per process.
    pub fn spawn<P>(procs: Vec<P>) -> Self
    where
        P: Process<Msg = M> + Send + 'static,
    {
        let n = procs.len();
        let (out_tx, out_rx) = unbounded::<(ProcId, M)>();
        let channels: Vec<Channel<M>> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope<M>>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();

        let mut handles = Vec::with_capacity(n);
        for (i, (mut proc, (_, rx))) in procs.into_iter().zip(channels).enumerate() {
            let me = ProcId(i as u32);
            let peer_senders = senders.clone();
            let out = out_tx.clone();
            let handle = thread::Builder::new()
                .name(format!("simnet-p{i}"))
                .spawn(move || {
                    let epoch = Instant::now();
                    let mut rng = SmallRng::seed_from_u64(0x5EED ^ i as u64);
                    let mut effects: Vec<Effect<M>> = Vec::new();
                    let now = |epoch: Instant| SimTime(epoch.elapsed().as_micros() as u64);

                    // Run on_start.
                    {
                        let mut ctx = Context {
                            me,
                            now: now(epoch),
                            effects: &mut effects,
                            rng: &mut rng,
                        };
                        proc.on_start(&mut ctx);
                    }
                    flush(&mut effects, me, &peer_senders, &out);

                    while let Ok(env) = rx.recv() {
                        match env {
                            Envelope::Msg { from, msg } => {
                                let mut ctx = Context {
                                    me,
                                    now: now(epoch),
                                    effects: &mut effects,
                                    rng: &mut rng,
                                };
                                proc.on_message(&mut ctx, from, msg);
                                flush(&mut effects, me, &peer_senders, &out);
                            }
                            Envelope::Shutdown => break,
                        }
                    }
                })
                .expect("spawn simnet thread");
            handles.push(handle);
        }

        Cluster {
            senders,
            outputs: out_rx,
            handles,
        }
    }

    /// Number of processes in the cluster.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the cluster has no processes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Send `msg` to `to` from the external endpoint.
    pub fn inject(&self, to: ProcId, msg: M) {
        let _ = self.senders[to.index()].send(Envelope::Msg {
            from: ProcId::EXTERNAL,
            msg,
        });
    }

    /// Blocking-receive the next message addressed to `ProcId::EXTERNAL`.
    pub fn recv_output(&self) -> Option<(ProcId, M)> {
        self.outputs.recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_output_timeout(&self, timeout: std::time::Duration) -> Option<(ProcId, M)> {
        self.outputs.recv_timeout(timeout).ok()
    }

    /// Stop all threads (after their queues drain to the shutdown marker) and
    /// join them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn flush<M: Payload>(
    effects: &mut Vec<Effect<M>>,
    me: ProcId,
    peers: &[Sender<Envelope<M>>],
    out: &Sender<(ProcId, M)>,
) {
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { to, msg } => {
                if to.is_external() {
                    let _ = out.send((me, msg));
                } else {
                    let _ = peers[to.index()].send(Envelope::Msg { from: me, msg });
                }
            }
            // Timers are a discrete-event facility; the threaded runtime
            // drops them (document: protocols used with Cluster must not
            // rely on timers for correctness — ours use them only for
            // piggyback flushing, which the threaded runtime disables).
            Effect::Timer { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl Payload for Num {}

    struct Doubler;
    impl Process for Doubler {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: ProcId, msg: Num) {
            if from.is_external() {
                ctx.send(ProcId::EXTERNAL, Num(msg.0 * 2));
            }
        }
    }

    #[test]
    fn round_trip() {
        let cluster = Cluster::spawn(vec![Doubler, Doubler]);
        cluster.inject(ProcId(0), Num(21));
        cluster.inject(ProcId(1), Num(4));
        let mut got = vec![];
        for _ in 0..2 {
            let (_, Num(n)) = cluster
                .recv_output_timeout(Duration::from_secs(5))
                .expect("output");
            got.push(n);
        }
        got.sort_unstable();
        assert_eq!(got, vec![8, 42]);
        cluster.shutdown();
    }

    struct Forwarder {
        n: u32,
    }
    impl Process for Forwarder {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: ProcId, msg: Num) {
            if msg.0 == 0 {
                ctx.send(ProcId::EXTERNAL, Num(ctx.me().0 as u64));
            } else {
                let next = ProcId((ctx.me().0 + 1) % self.n);
                ctx.send(next, Num(msg.0 - 1));
            }
        }
    }

    #[test]
    fn ring_of_threads() {
        let n = 4;
        let cluster = Cluster::spawn((0..n).map(|_| Forwarder { n }).collect());
        cluster.inject(ProcId(0), Num(9));
        let (who, _) = cluster
            .recv_output_timeout(Duration::from_secs(5))
            .expect("ring completes");
        // P0 consumes 9, P1 consumes 8, ...: value 0 is consumed by P1.
        assert_eq!(who, ProcId(1));
        cluster.shutdown();
    }
}
