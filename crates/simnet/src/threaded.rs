//! A threaded runtime for the same [`Process`] trait.
//!
//! Each process runs on its own OS thread with a crossbeam channel as its
//! message queue (the paper's queue manager). Channels are reliable and FIFO,
//! matching the §4 network model; cross-channel interleaving comes from real
//! scheduler nondeterminism instead of a latency model.
//!
//! The cluster implements [`Runtime`], so the generic workload driver
//! (`simnet::driver`) and every facade built on it run here unchanged.
//! Quiescence — which the simulator proves by an empty event heap — is
//! established with a probe barrier: the cluster counts actions globally,
//! flushes every queue with probe envelopes, and declares the network silent
//! when a full probe round completes with the action count unchanged and no
//! armed timers outstanding. [`Cluster::shutdown`] joins the threads and
//! hands back the final process states for end-of-run inspection.
//!
//! Tests and experiments that need determinism should prefer the
//! [`Simulation`](crate::Simulation); this runtime is for wall-clock
//! parallelism and for validating that protocol correctness survives real
//! scheduler interleavings.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::context::Effect;
use crate::health::{Alert, HealthMonitor};
use crate::obs::Sampler;
use crate::runtime::{Poll, QuiesceError, Runtime};
use crate::trace::{TraceEntry, TraceEvent};
use crate::{Context, Obs, ObsConfig, Payload, ProcId, ProcSample, Process, SimTime, Trace};

use rand::rngs::SmallRng;
use rand::SeedableRng;

enum Envelope<M> {
    Msg {
        from: ProcId,
        msg: M,
        /// Causal span, resolved at send time exactly as the simulator does:
        /// the payload's own span, else the sending action's.
        span: Option<u64>,
    },
    Timer {
        token: u64,
    },
    /// Quiescence probe: echoed straight back on the output channel without
    /// touching the process or the action counter.
    Probe {
        token: u64,
    },
    /// Fault injection: the worker enters crash mode — messages and timers
    /// are dropped (the volatile queue of the dead incarnation) until a
    /// `Restart` arrives. Probes are still echoed so settle stays live.
    Crash,
    /// Fault injection: leave crash mode and run `Process::on_restart`.
    Restart,
    Shutdown,
}

/// Shared observability state: every worker records into the same trace and
/// series under one mutex, so the lock-acquisition order *is* the global
/// `seq` order — the trace is a linearization of what actually interleaved.
struct ObsState {
    trace: Trace,
    series: Vec<ProcSample>,
    sampler: Sampler,
    /// Online watchdogs (`None` unless enabled) and their fired alerts,
    /// evaluated under the same lock as the sampler so alert order agrees
    /// with sample order.
    health: Option<HealthMonitor>,
    alerts: Vec<Alert>,
}

type SharedObs = Option<Arc<Mutex<ObsState>>>;

/// What worker threads emit on the shared output channel.
enum Output<M> {
    /// A message a process sent to [`ProcId::EXTERNAL`], stamped with the
    /// emitting processor's clock.
    At(SimTime, ProcId, M),
    /// A probe echo (see [`Envelope::Probe`]).
    Probe(u64),
}

/// Commands for the cluster's dedicated timer thread.
enum TimerCmd {
    At {
        deadline: Instant,
        proc: ProcId,
        token: u64,
    },
    Shutdown,
}

type Channel<M> = (Sender<Envelope<M>>, Receiver<Envelope<M>>);

/// How long a deadline-free [`Runtime::poll`] waits before reporting
/// [`Poll::Idle`].
const IDLE_GRACE: Duration = Duration::from_millis(50);

/// How long [`Runtime::settle`] waits for one probe echo before giving up.
const PROBE_TIMEOUT: Duration = Duration::from_secs(10);

/// Probe-round backstop: with one-shot timers and finite workloads the
/// action count must stabilize long before this.
const MAX_SETTLE_ROUNDS: u64 = 1_000_000;

/// Min-heap timer wheel: sleeps until the earliest deadline (or a new
/// command), then delivers `Envelope::Timer` to the owning process. One
/// tick of `Context::set_timer` is one microsecond, matching the `now()`
/// clock the worker threads report. `pending` counts timers armed but not
/// yet delivered, so the quiescence probe knows the network is not silent
/// while a timer is in flight.
fn run_timers<M: Payload + Send + 'static>(
    cmds: Receiver<TimerCmd>,
    senders: Vec<Sender<Envelope<M>>>,
    pending: Arc<AtomicU64>,
) {
    // (deadline, seq, proc, token); seq keeps same-deadline timers FIFO.
    let mut heap: BinaryHeap<Reverse<(Instant, u64, u32, u64)>> = BinaryHeap::new();
    let mut next_seq = 0u64;
    loop {
        let now = Instant::now();
        while let Some(&Reverse((deadline, _, proc, token))) = heap.peek() {
            if deadline > now {
                break;
            }
            heap.pop();
            let _ = senders[proc as usize].send(Envelope::Timer { token });
            // Decrement only after the timer event is in the worker's queue:
            // between arming and this point the probe must not see silence.
            pending.fetch_sub(1, Ordering::SeqCst);
        }
        let cmd = match heap.peek() {
            Some(&Reverse((deadline, ..))) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match cmds.recv_timeout(wait) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match cmds.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        match cmd {
            TimerCmd::At {
                deadline,
                proc,
                token,
            } => {
                next_seq += 1;
                heap.push(Reverse((deadline, next_seq, proc.0, token)));
            }
            TimerCmd::Shutdown => break,
        }
    }
}

/// A running cluster of processes on OS threads.
///
/// Inject messages with [`Cluster::inject`], drive workloads through the
/// [`Runtime`] interface (or [`Cluster::recv_output`] by hand), then call
/// [`Cluster::shutdown`] to join the threads and recover the final process
/// states.
pub struct Cluster<P: Process> {
    senders: Vec<Sender<Envelope<P::Msg>>>,
    outputs: Receiver<Output<P::Msg>>,
    /// Outputs received but not yet drained (poll/settle buffer here).
    out_buf: Vec<(SimTime, ProcId, P::Msg)>,
    handles: Vec<thread::JoinHandle<P>>,
    timer_cmds: Sender<TimerCmd>,
    timer_handle: Option<thread::JoinHandle<()>>,
    /// Shared time origin: all workers and [`Cluster::now`] measure
    /// microseconds from this instant, so timestamps are comparable.
    epoch: Instant,
    /// Total actions (message + timer deliveries) processed cluster-wide.
    actions: Arc<AtomicU64>,
    /// Timers armed but not yet delivered to a worker queue.
    pending_timers: Arc<AtomicU64>,
    next_probe: u64,
    /// Shared trace + series, `None` when observability is off (the workers
    /// then skip every recording branch — zero overhead).
    obs: SharedObs,
    obs_cfg: ObsConfig,
}

impl<P> Cluster<P>
where
    P: Process + Send + 'static,
    P::Msg: Send + 'static,
{
    /// Spawn one thread per process, with observability off.
    pub fn spawn(procs: Vec<P>) -> Self {
        Self::spawn_with(procs, ObsConfig::default())
    }

    /// Spawn one thread per process, recording a causal trace and metrics
    /// time series per `obs_cfg` — the same schema the simulator emits, so
    /// runs on the two substrates are directly comparable.
    pub fn spawn_with(procs: Vec<P>, obs_cfg: ObsConfig) -> Self {
        let n = procs.len();
        let epoch = Instant::now();
        let obs: SharedObs =
            (obs_cfg.trace_capacity > 0 || obs_cfg.sample_interval > 0).then(|| {
                Arc::new(Mutex::new(ObsState {
                    trace: Trace::with_capacity(obs_cfg.trace_capacity),
                    series: Vec::new(),
                    sampler: Sampler::new(obs_cfg.sample_interval, n),
                    health: obs_cfg
                        .health
                        .enabled
                        .then(|| HealthMonitor::new(obs_cfg.health, n)),
                    alerts: Vec::new(),
                }))
            });
        let (out_tx, out_rx) = unbounded::<Output<P::Msg>>();
        let channels: Vec<Channel<P::Msg>> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope<P::Msg>>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        let actions = Arc::new(AtomicU64::new(0));
        let pending_timers = Arc::new(AtomicU64::new(0));

        let (timer_tx, timer_rx) = unbounded::<TimerCmd>();
        let timer_senders = senders.clone();
        let timer_pending = Arc::clone(&pending_timers);
        let timer_handle = thread::Builder::new()
            .name("simnet-timers".into())
            .spawn(move || run_timers(timer_rx, timer_senders, timer_pending))
            .expect("spawn simnet timer thread");

        let mut handles = Vec::with_capacity(n);
        for (i, (mut proc, (_, rx))) in procs.into_iter().zip(channels).enumerate() {
            let me = ProcId(i as u32);
            let peer_senders = senders.clone();
            let out = out_tx.clone();
            let timers = timer_tx.clone();
            let actions = Arc::clone(&actions);
            let pending_timers = Arc::clone(&pending_timers);
            let obs = obs.clone();
            let handle = thread::Builder::new()
                .name(format!("simnet-p{i}"))
                .spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5EED ^ i as u64);
                    let mut effects: Vec<Effect<P::Msg>> = Vec::new();
                    let now = |epoch: Instant| SimTime(epoch.elapsed().as_micros() as u64);

                    // Run on_start.
                    {
                        let mut ctx = Context {
                            me,
                            now: now(epoch),
                            effects: &mut effects,
                            rng: &mut rng,
                            span: None,
                        };
                        proc.on_start(&mut ctx);
                    }
                    flush(
                        &mut effects,
                        me,
                        now(epoch),
                        None,
                        &peer_senders,
                        &out,
                        &timers,
                        &pending_timers,
                        &obs,
                    );

                    // Crash mode: envelopes addressed to a crashed worker are
                    // the dead incarnation's volatile queue — dropped without
                    // running the process or bumping the action counter
                    // (dropping is not an action, so settle stays sound).
                    let mut down = false;
                    while let Ok(env) = rx.recv() {
                        match env {
                            Envelope::Msg { from, msg, span } => {
                                let at = now(epoch);
                                if down {
                                    if let Some(o) = obs.as_ref() {
                                        let mut st = o.lock().expect("obs lock");
                                        if st.trace.enabled() {
                                            st.trace.record(TraceEntry {
                                                seq: 0,
                                                at,
                                                from,
                                                to: me,
                                                event: TraceEvent::Drop,
                                                kind: msg.kind(),
                                                span,
                                                redelivery: msg.redelivery(),
                                                wait: 0,
                                                detail: "crash".into(),
                                                deltas: Vec::new(),
                                            });
                                        }
                                    }
                                    continue;
                                }
                                // Capture what the trace needs before the
                                // payload moves into the handler.
                                let pending = obs
                                    .as_ref()
                                    .map(|_| (msg.kind(), msg.redelivery(), format!("{msg:?}")));
                                let before = if obs.is_some() {
                                    proc.metrics()
                                } else {
                                    Vec::new()
                                };
                                let mut ctx = Context {
                                    me,
                                    now: at,
                                    effects: &mut effects,
                                    rng: &mut rng,
                                    span,
                                };
                                proc.on_message(&mut ctx, from, msg);
                                if let (Some(o), Some((kind, redelivery, detail))) =
                                    (obs.as_ref(), pending)
                                {
                                    record_action(
                                        o,
                                        at,
                                        from,
                                        me,
                                        TraceEvent::Deliver,
                                        kind,
                                        span,
                                        redelivery,
                                        detail,
                                        &before,
                                        &proc,
                                    );
                                }
                                flush(
                                    &mut effects,
                                    me,
                                    at,
                                    span,
                                    &peer_senders,
                                    &out,
                                    &timers,
                                    &pending_timers,
                                    &obs,
                                );
                                // Count the action only after its sends are
                                // enqueued: the probe barrier relies on
                                // "counted implies visible".
                                actions.fetch_add(1, Ordering::SeqCst);
                            }
                            Envelope::Timer { token } => {
                                if down {
                                    continue;
                                }
                                let at = now(epoch);
                                let before = if obs.is_some() {
                                    proc.metrics()
                                } else {
                                    Vec::new()
                                };
                                let mut ctx = Context {
                                    me,
                                    now: at,
                                    effects: &mut effects,
                                    rng: &mut rng,
                                    span: None,
                                };
                                proc.on_timer(&mut ctx, token);
                                if let Some(o) = obs.as_ref() {
                                    record_action(
                                        o,
                                        at,
                                        me,
                                        me,
                                        TraceEvent::Timer,
                                        "timer",
                                        None,
                                        false,
                                        format!("token={token}"),
                                        &before,
                                        &proc,
                                    );
                                }
                                flush(
                                    &mut effects,
                                    me,
                                    at,
                                    None,
                                    &peer_senders,
                                    &out,
                                    &timers,
                                    &pending_timers,
                                    &obs,
                                );
                                actions.fetch_add(1, Ordering::SeqCst);
                            }
                            Envelope::Probe { token } => {
                                let _ = out.send(Output::Probe(token));
                            }
                            Envelope::Crash => {
                                down = true;
                                if let Some(o) = obs.as_ref() {
                                    let mut st = o.lock().expect("obs lock");
                                    if st.trace.enabled() {
                                        st.trace.record(TraceEntry {
                                            seq: 0,
                                            at: now(epoch),
                                            from: me,
                                            to: me,
                                            event: TraceEvent::Crash,
                                            kind: "fault.crash",
                                            span: None,
                                            redelivery: false,
                                            wait: 0,
                                            detail: String::new(),
                                            deltas: Vec::new(),
                                        });
                                    }
                                }
                            }
                            Envelope::Restart => {
                                if !down {
                                    continue;
                                }
                                down = false;
                                let at = now(epoch);
                                let before = if obs.is_some() {
                                    proc.metrics()
                                } else {
                                    Vec::new()
                                };
                                let mut ctx = Context {
                                    me,
                                    now: at,
                                    effects: &mut effects,
                                    rng: &mut rng,
                                    span: None,
                                };
                                proc.on_restart(&mut ctx);
                                if let Some(o) = obs.as_ref() {
                                    record_action(
                                        o,
                                        at,
                                        me,
                                        me,
                                        TraceEvent::Restart,
                                        "fault.restart",
                                        None,
                                        false,
                                        String::new(),
                                        &before,
                                        &proc,
                                    );
                                }
                                flush(
                                    &mut effects,
                                    me,
                                    at,
                                    None,
                                    &peer_senders,
                                    &out,
                                    &timers,
                                    &pending_timers,
                                    &obs,
                                );
                                actions.fetch_add(1, Ordering::SeqCst);
                            }
                            Envelope::Shutdown => break,
                        }
                    }
                    proc
                })
                .expect("spawn simnet thread");
            handles.push(handle);
        }

        Cluster {
            senders,
            outputs: out_rx,
            out_buf: Vec::new(),
            handles,
            timer_cmds: timer_tx,
            timer_handle: Some(timer_handle),
            epoch,
            actions,
            pending_timers,
            next_probe: 0,
            obs,
            obs_cfg,
        }
    }

    /// Number of processes in the cluster.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the cluster has no processes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Microseconds since the cluster was spawned — the same clock the
    /// worker threads stamp their contexts and outputs with.
    pub fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Send `msg` to `to` from the external endpoint.
    pub fn inject(&self, to: ProcId, msg: P::Msg) {
        let span = msg.span();
        let _ = self.senders[to.index()].send(Envelope::Msg {
            from: ProcId::EXTERNAL,
            msg,
            span,
        });
    }

    /// Crash processor `p`: once the command reaches its queue the worker
    /// drops every message and timer (the volatile queue of the dead
    /// incarnation) until [`Cluster::restart`]. The process object itself
    /// survives, playing the paper's stable store. Mirrors the simulator's
    /// [`crate::CrashEvent`] fault injection.
    pub fn crash(&self, p: ProcId) {
        let _ = self.senders[p.index()].send(Envelope::Crash);
    }

    /// Restart a crashed processor: the worker leaves crash mode and runs
    /// [`Process::on_restart`]. A restart for a processor that is not down
    /// is ignored.
    pub fn restart(&self, p: ProcId) {
        let _ = self.senders[p.index()].send(Envelope::Restart);
    }

    /// Take the observability data recorded so far (empty when the cluster
    /// was spawned without an [`ObsConfig`]), leaving fresh buffers.
    pub fn take_obs(&mut self) -> Obs {
        match &self.obs {
            None => Obs::default(),
            Some(o) => {
                let mut st = o.lock().expect("obs lock");
                Obs {
                    trace: std::mem::replace(
                        &mut st.trace,
                        Trace::with_capacity(self.obs_cfg.trace_capacity),
                    ),
                    series: std::mem::take(&mut st.series),
                    alerts: std::mem::take(&mut st.alerts),
                }
            }
        }
    }

    /// Pull one output from the channel into the buffer; `false` on timeout
    /// or disconnection. Probe echoes (from an abandoned settle) are
    /// skipped without consuming the timeout budget meaningfully.
    fn pump_one(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let wait = deadline.saturating_duration_since(Instant::now());
            match self.outputs.recv_timeout(wait) {
                Ok(Output::At(at, from, msg)) => {
                    self.out_buf.push((at, from, msg));
                    return true;
                }
                Ok(Output::Probe(_)) => continue,
                Err(_) => return false,
            }
        }
    }

    /// Move everything already sitting in the output channel into the
    /// buffer without blocking.
    fn pump_ready(&mut self) {
        while let Ok(out) = self.outputs.try_recv() {
            if let Output::At(at, from, msg) = out {
                self.out_buf.push((at, from, msg));
            }
        }
    }

    /// Blocking-receive the next message addressed to `ProcId::EXTERNAL`
    /// (bounded by an hour, which is "forever" for a test program).
    pub fn recv_output(&mut self) -> Option<(ProcId, P::Msg)> {
        self.recv_output_timeout(Duration::from_secs(3600))
    }

    /// Receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_output_timeout(&mut self, timeout: Duration) -> Option<(ProcId, P::Msg)> {
        if self.out_buf.is_empty() && !self.pump_one(timeout) {
            return None;
        }
        let (_, from, msg) = self.out_buf.remove(0);
        Some((from, msg))
    }

    /// Run one probe barrier: send a probe to every worker and wait for all
    /// echoes, buffering any real outputs that arrive in between. Returns
    /// `false` if a worker failed to echo within [`PROBE_TIMEOUT`].
    fn probe_barrier(&mut self) -> bool {
        let token = self.next_probe;
        self.next_probe += 1;
        for tx in &self.senders {
            let _ = tx.send(Envelope::Probe { token });
        }
        let mut echoes = 0;
        let deadline = Instant::now() + PROBE_TIMEOUT;
        while echoes < self.senders.len() {
            let wait = deadline.saturating_duration_since(Instant::now());
            match self.outputs.recv_timeout(wait) {
                Ok(Output::At(at, from, msg)) => self.out_buf.push((at, from, msg)),
                Ok(Output::Probe(t)) if t == token => echoes += 1,
                Ok(Output::Probe(_)) => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// Stop all threads (after their queues drain to the shutdown marker),
    /// join them, and return the final process states in `ProcId` order.
    pub fn shutdown(mut self) -> Vec<P> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        let mut procs = Vec::with_capacity(self.handles.len());
        for h in self.handles.drain(..) {
            procs.push(h.join().expect("worker thread panicked"));
        }
        let _ = self.timer_cmds.send(TimerCmd::Shutdown);
        if let Some(h) = self.timer_handle.take() {
            let _ = h.join();
        }
        procs
    }
}

impl<P> Runtime for Cluster<P>
where
    P: Process + Send + 'static,
    P::Msg: Send + 'static,
{
    type Proc = P;

    fn num_procs(&self) -> usize {
        self.len()
    }

    fn now(&self) -> SimTime {
        Cluster::now(self)
    }

    fn inject(&mut self, to: ProcId, msg: P::Msg) {
        Cluster::inject(self, to, msg);
    }

    fn poll(&mut self, deadline: Option<SimTime>) -> Poll {
        self.pump_ready();
        if !self.out_buf.is_empty() {
            return Poll::Outputs;
        }
        let wait = match deadline {
            Some(d) => {
                let now = Cluster::now(self);
                if d <= now {
                    return Poll::Deadline;
                }
                Duration::from_micros(d - now)
            }
            None => IDLE_GRACE,
        };
        if self.pump_one(wait) {
            self.pump_ready();
            Poll::Outputs
        } else if deadline.is_some() {
            Poll::Deadline
        } else {
            Poll::Idle
        }
    }

    /// Probe until the global action count stabilizes across a full probe
    /// round with no armed timers outstanding. Sound because a worker
    /// enqueues all of an action's sends *before* counting it, and FIFO
    /// queues deliver those sends before a later probe: an unchanged count
    /// across a completed barrier means every queue was empty when probed.
    fn settle(&mut self) -> Result<(), QuiesceError> {
        for _ in 0..MAX_SETTLE_ROUNDS {
            // A timer in flight (armed, not yet delivered) is pending work
            // the probe cannot see; wait for the timer thread.
            if self.pending_timers.load(Ordering::SeqCst) > 0 {
                thread::sleep(Duration::from_micros(200));
                continue;
            }
            let before = self.actions.load(Ordering::SeqCst);
            if !self.probe_barrier() {
                return Err(QuiesceError::Stalled { pending: 0 });
            }
            if self.actions.load(Ordering::SeqCst) == before
                && self.pending_timers.load(Ordering::SeqCst) == 0
            {
                self.pump_ready();
                return Ok(());
            }
        }
        Err(QuiesceError::Stalled { pending: 0 })
    }

    fn drain_outputs(&mut self) -> Vec<(SimTime, ProcId, P::Msg)> {
        self.pump_ready();
        std::mem::take(&mut self.out_buf)
    }

    fn take_obs(&mut self) -> Obs {
        Cluster::take_obs(self)
    }

    fn into_procs(self) -> Vec<P> {
        self.shutdown()
    }
}

/// Record one executed action into the shared trace (with its metric
/// deltas) and emit a time-series sample if one is due. One lock
/// acquisition covers both, so entry `seq` and sample order agree.
#[allow(clippy::too_many_arguments)]
fn record_action<P: Process>(
    obs: &Arc<Mutex<ObsState>>,
    at: SimTime,
    from: ProcId,
    me: ProcId,
    event: TraceEvent,
    kind: &'static str,
    span: Option<u64>,
    redelivery: bool,
    detail: String,
    before: &[(&'static str, u64)],
    proc: &P,
) {
    let after = proc.metrics();
    let mut st = obs.lock().expect("obs lock");
    // Reborrow through the guard so the health/trace/alerts fields can be
    // borrowed disjointly below.
    let st = &mut *st;
    if st.trace.enabled() {
        st.trace.record(TraceEntry {
            seq: 0,
            at,
            from,
            to: me,
            event,
            kind,
            span,
            redelivery,
            wait: 0,
            detail,
            deltas: crate::obs::metric_deltas(before, &after),
        });
    }
    if st.sampler.due(me, at) {
        let gauges = proc.gauges(at);
        if let Some(mon) = &mut st.health {
            let fired = mon.observe(at, me, &after, &gauges);
            for alert in fired {
                if st.trace.enabled() {
                    st.trace.record(TraceEntry {
                        seq: 0,
                        at,
                        from: me,
                        to: me,
                        event: TraceEvent::Alert,
                        kind: alert.rule,
                        span: None,
                        redelivery: false,
                        wait: 0,
                        detail: alert.detail(),
                        deltas: Vec::new(),
                    });
                }
                st.alerts.push(alert);
            }
        }
        st.series.push(ProcSample {
            at,
            proc: me,
            pairs: after,
            gauges,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn flush<M: Payload>(
    effects: &mut Vec<Effect<M>>,
    me: ProcId,
    at: SimTime,
    action_span: Option<u64>,
    peers: &[Sender<Envelope<M>>],
    out: &Sender<Output<M>>,
    timers: &Sender<TimerCmd>,
    pending_timers: &AtomicU64,
    obs: &SharedObs,
) {
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { to, msg } => {
                // Same span-inheritance rule as the simulator: the payload's
                // own span wins, else the sending action's.
                let span = msg.span().or(action_span);
                if to.is_external() {
                    if let Some(o) = obs {
                        let mut st = o.lock().expect("obs lock");
                        if st.trace.enabled() {
                            st.trace.record(TraceEntry {
                                seq: 0,
                                at,
                                from: me,
                                to: ProcId::EXTERNAL,
                                event: TraceEvent::Output,
                                kind: msg.kind(),
                                span,
                                redelivery: false,
                                wait: 0,
                                detail: format!("{msg:?}"),
                                deltas: Vec::new(),
                            });
                        }
                    }
                    let _ = out.send(Output::At(at, me, msg));
                } else {
                    let _ = peers[to.index()].send(Envelope::Msg {
                        from: me,
                        msg,
                        span,
                    });
                }
            }
            Effect::Timer { delay, token } => {
                // One virtual tick = one microsecond, the granularity of the
                // `now()` clock the worker reports to its process. Count the
                // timer as pending before the command is visible to the
                // timer thread, so quiescence probes never miss it.
                pending_timers.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_micros(delay);
                let _ = timers.send(TimerCmd::At {
                    deadline,
                    proc: me,
                    token,
                });
            }
            Effect::Mark {
                event,
                kind,
                detail,
            } => {
                if let Some(o) = obs {
                    let mut st = o.lock().expect("obs lock");
                    if st.trace.enabled() {
                        st.trace.record(TraceEntry {
                            seq: 0,
                            at,
                            from: me,
                            to: me,
                            event,
                            kind,
                            span: action_span,
                            redelivery: false,
                            wait: 0,
                            detail,
                            deltas: Vec::new(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl Payload for Num {}

    struct Doubler;
    impl Process for Doubler {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: ProcId, msg: Num) {
            if from.is_external() {
                ctx.send(ProcId::EXTERNAL, Num(msg.0 * 2));
            }
        }
    }

    #[test]
    fn round_trip() {
        let mut cluster = Cluster::spawn(vec![Doubler, Doubler]);
        cluster.inject(ProcId(0), Num(21));
        cluster.inject(ProcId(1), Num(4));
        let mut got = vec![];
        for _ in 0..2 {
            let (_, Num(n)) = cluster
                .recv_output_timeout(Duration::from_secs(5))
                .expect("output");
            got.push(n);
        }
        got.sort_unstable();
        assert_eq!(got, vec![8, 42]);
        cluster.shutdown();
    }

    struct Forwarder {
        n: u32,
    }
    impl Process for Forwarder {
        type Msg = Num;
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: ProcId, msg: Num) {
            if msg.0 == 0 {
                ctx.send(ProcId::EXTERNAL, Num(ctx.me().0 as u64));
            } else {
                let next = ProcId((ctx.me().0 + 1) % self.n);
                ctx.send(next, Num(msg.0 - 1));
            }
        }
    }

    struct TimerReporter;
    impl Process for TimerReporter {
        type Msg = Num;
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            // Deliberately armed out of deadline order (10ms before 200ms
            // on the wall clock would be flaky; 20x apart is not).
            ctx.set_timer(200_000, 2);
            ctx.set_timer(10_000, 1);
        }
        fn on_message(&mut self, _: &mut Context<'_, Num>, _: ProcId, _: Num) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Num>, token: u64) {
            ctx.send(ProcId::EXTERNAL, Num(token));
        }
    }

    #[test]
    fn timers_fire_on_threads() {
        // Regression: the threaded runtime used to silently drop
        // `Effect::Timer`, so timer-driven logic (piggyback flushing,
        // session retransmission) never ran under `Cluster`.
        let mut cluster = Cluster::spawn(vec![TimerReporter]);
        let mut got = vec![];
        for _ in 0..2 {
            let (_, Num(n)) = cluster
                .recv_output_timeout(Duration::from_secs(5))
                .expect("timer fired");
            got.push(n);
        }
        assert_eq!(got, vec![1, 2], "timers fire in deadline order");
        cluster.shutdown();
    }

    #[test]
    fn ring_of_threads() {
        let n = 4;
        let mut cluster = Cluster::spawn((0..n).map(|_| Forwarder { n }).collect());
        cluster.inject(ProcId(0), Num(9));
        let (who, _) = cluster
            .recv_output_timeout(Duration::from_secs(5))
            .expect("ring completes");
        // P0 consumes 9, P1 consumes 8, ...: value 0 is consumed by P1.
        assert_eq!(who, ProcId(1));
        cluster.shutdown();
    }

    #[test]
    fn shutdown_returns_final_states() {
        struct Counter {
            seen: u64,
        }
        impl Process for Counter {
            type Msg = Num;
            fn on_message(&mut self, _: &mut Context<'_, Num>, _: ProcId, msg: Num) {
                self.seen += msg.0;
            }
        }
        let mut cluster = Cluster::spawn(vec![Counter { seen: 0 }, Counter { seen: 0 }]);
        cluster.inject(ProcId(0), Num(5));
        cluster.inject(ProcId(0), Num(7));
        cluster.inject(ProcId(1), Num(1));
        cluster.settle().expect("settles");
        let procs = cluster.shutdown();
        assert_eq!(procs[0].seen, 12);
        assert_eq!(procs[1].seen, 1);
    }

    #[test]
    fn settle_waits_for_cascades_and_timers() {
        // A chain: external -> P0 arms a timer; the timer forwards through
        // the ring; settle must not report quiescence until the final hop.
        struct Delayed {
            n: u32,
        }
        impl Process for Delayed {
            type Msg = Num;
            fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: ProcId, msg: Num) {
                if from.is_external() {
                    ctx.set_timer(5_000, msg.0);
                } else if msg.0 > 0 {
                    ctx.send(ProcId((ctx.me().0 + 1) % self.n), Num(msg.0 - 1));
                } else {
                    ctx.send(ProcId::EXTERNAL, Num(0));
                }
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Num>, token: u64) {
                ctx.send(ProcId((ctx.me().0 + 1) % self.n), Num(token));
            }
        }
        let mut cluster = Cluster::spawn((0..3).map(|_| Delayed { n: 3 }).collect());
        cluster.inject(ProcId(0), Num(7));
        cluster.settle().expect("settles");
        let outs = Runtime::drain_outputs(&mut cluster);
        assert_eq!(outs.len(), 1, "the cascade finished before settle returned");
        cluster.shutdown();
    }
}
