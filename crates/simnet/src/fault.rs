//! Deterministic fault injection.
//!
//! The paper assumes a reliable exactly-once FIFO network and reliable
//! processors (§4). A [`FaultPlan`] deliberately breaks those assumptions —
//! per-message drops, duplication, timed partitions, and processor
//! crash/restart — so the robustness machinery layered on top (the
//! [`session`](crate::session) protocol and the protocols' crash recovery)
//! can be exercised and measured.
//!
//! Fault decisions draw from a *dedicated* RNG stream seeded from the run
//! seed, so an inactive plan ([`FaultPlan::none`], the default) leaves the
//! main simulation RNG untouched: runs without faults are bit-identical to
//! runs on a simulator without this module.

use crate::{ProcId, SimTime};

/// A timed network partition: messages crossing between `side_a` and
/// `side_b` (either direction) during `[start, end)` are dropped.
///
/// Processors listed on neither side are unaffected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First tick at which the partition is in force.
    pub start: SimTime,
    /// First tick at which the partition has healed (exclusive end).
    pub end: SimTime,
    /// One side of the cut.
    pub side_a: Vec<ProcId>,
    /// The other side of the cut.
    pub side_b: Vec<ProcId>,
}

impl Partition {
    /// Is a message sent from `src` to `dst` at `now` severed by this cut?
    pub fn severs(&self, src: ProcId, dst: ProcId, now: SimTime) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        (self.side_a.contains(&src) && self.side_b.contains(&dst))
            || (self.side_b.contains(&src) && self.side_a.contains(&dst))
    }
}

/// A scheduled processor crash (and optional restart).
///
/// At `at` the processor goes down: every delivery and timer already in
/// flight toward it is lost (its volatile queue), and anything arriving
/// while it is down is dropped. At `restart_at` (if given) the processor
/// comes back and its [`Process::on_restart`](crate::Process::on_restart)
/// hook runs as the first action of its new incarnation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The processor to crash.
    pub proc: ProcId,
    /// Crash time.
    pub at: SimTime,
    /// Restart time (must be after `at`); `None` = down forever.
    pub restart_at: Option<SimTime>,
}

/// A deterministic schedule of network and processor faults for one run.
///
/// All probabilities are evaluated against a dedicated fault RNG seeded
/// from the run seed, so two runs with the same `SimConfig` inject the
/// same faults at the same points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a remote message is silently dropped.
    /// Local hand-offs (a processor sending to itself) and the external
    /// client channel are never dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a remote message is delivered twice
    /// (the duplicate takes its own latency draw, after the original).
    pub dup_prob: f64,
    /// Timed partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crashes/restarts.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The empty plan: a perfectly reliable network (the paper's model).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that only drops messages, with the given probability.
    pub fn lossy(drop_prob: f64) -> Self {
        FaultPlan {
            drop_prob,
            ..FaultPlan::default()
        }
    }

    /// Builder: set the duplication probability.
    pub fn with_dup(mut self, dup_prob: f64) -> Self {
        self.dup_prob = dup_prob;
        self
    }

    /// Builder: add a partition.
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Builder: add a crash event.
    pub fn with_crash(mut self, c: CrashEvent) -> Self {
        if let Some(r) = c.restart_at {
            assert!(r > c.at, "restart must come after the crash");
        }
        self.crashes.push(c);
        self
    }

    /// Does this plan inject anything at all? When `false`, the simulator
    /// takes the zero-overhead path (no extra RNG draws, no extra events).
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || !self.partitions.is_empty()
            || !self.crashes.is_empty()
    }

    /// Is a message from `src` to `dst` at `now` cut by any partition?
    pub(crate) fn severed(&self, src: ProcId, dst: ProcId, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, now))
    }
}

/// Counters for injected faults, kept inside [`NetStats`](crate::NetStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by `drop_prob`.
    pub dropped: u64,
    /// Duplicate deliveries injected by `dup_prob`.
    pub duplicated: u64,
    /// Messages dropped because a partition severed their channel.
    pub partition_dropped: u64,
    /// Deliveries lost to a crash (in flight at crash time, or addressed
    /// to a processor that was down).
    pub crash_dropped: u64,
    /// Timers invalidated by a crash.
    pub timer_dropped: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Restart events executed.
    pub restarts: u64,
}

impl FaultStats {
    /// Any fault injected at all?
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    /// Total messages lost to any cause.
    pub fn total_lost(&self) -> u64 {
        self.dropped + self.partition_dropped + self.crash_dropped
    }

    pub(crate) fn saturating_sub(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            dropped: self.dropped.saturating_sub(other.dropped),
            duplicated: self.duplicated.saturating_sub(other.duplicated),
            partition_dropped: self
                .partition_dropped
                .saturating_sub(other.partition_dropped),
            crash_dropped: self.crash_dropped.saturating_sub(other.crash_dropped),
            timer_dropped: self.timer_dropped.saturating_sub(other.timer_dropped),
            crashes: self.crashes.saturating_sub(other.crashes),
            restarts: self.restarts.saturating_sub(other.restarts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::lossy(0.1).is_active());
        assert!(FaultPlan::none().with_dup(0.5).is_active());
    }

    #[test]
    fn partition_severs_both_directions_within_window() {
        let p = Partition {
            start: SimTime(10),
            end: SimTime(20),
            side_a: vec![ProcId(0)],
            side_b: vec![ProcId(1), ProcId(2)],
        };
        assert!(p.severs(ProcId(0), ProcId(1), SimTime(10)));
        assert!(p.severs(ProcId(2), ProcId(0), SimTime(19)));
        assert!(!p.severs(ProcId(0), ProcId(1), SimTime(9)), "before start");
        assert!(!p.severs(ProcId(0), ProcId(1), SimTime(20)), "healed");
        assert!(!p.severs(ProcId(1), ProcId(2), SimTime(15)), "same side");
        assert!(!p.severs(ProcId(3), ProcId(0), SimTime(15)), "bystander");
    }

    #[test]
    #[should_panic(expected = "restart must come after the crash")]
    fn restart_before_crash_rejected() {
        let _ = FaultPlan::none().with_crash(CrashEvent {
            proc: ProcId(0),
            at: SimTime(10),
            restart_at: Some(SimTime(5)),
        });
    }

    #[test]
    fn fault_stats_any() {
        let mut s = FaultStats::default();
        assert!(!s.any());
        s.dropped = 1;
        assert!(s.any());
        assert_eq!(s.total_lost(), 1);
    }
}
