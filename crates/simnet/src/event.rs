//! The event heap: a deterministic priority queue of pending deliveries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{ProcId, SimTime};

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to the owning processor. `span` is the
    /// operation the delivery is causally attributable to, resolved at send
    /// time (the payload's own span, else the sending action's).
    Deliver {
        from: ProcId,
        msg: M,
        span: Option<u64>,
    },
    /// Fire a timer with the given token.
    Timer { token: u64 },
    /// Fault-plan control: crash the owning processor.
    Crash,
    /// Fault-plan control: restart the owning processor.
    Restart,
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: SimTime,
    /// Global sequence number: total tiebreaker so runs are deterministic.
    pub seq: u64,
    pub to: ProcId,
    /// Crash epoch of the target when this event was scheduled. A crash
    /// bumps the target's epoch, invalidating deliveries and timers that
    /// were already in flight (the crashed processor's volatile state).
    pub epoch: u32,
    /// Ticks this event has spent requeued behind a busy node manager
    /// (accumulated by the service-time model; traced as queueing delay).
    pub wait: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic min-heap of events.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: SimTime, to: ProcId, kind: EventKind<M>) {
        self.push_epoch(at, to, 0, kind);
    }

    /// Push with an explicit crash-epoch stamp (see [`Event::epoch`]).
    pub fn push_epoch(&mut self, at: SimTime, to: ProcId, epoch: u32, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            seq,
            to,
            epoch,
            wait: 0,
            kind,
        });
    }

    /// Re-insert a popped event at a later time, preserving its original
    /// sequence number so it cannot be overtaken by events sent after it
    /// (the service-time model relies on this for per-channel FIFO).
    pub fn requeue(&mut self, at: SimTime, event: Event<M>) {
        self.heap.push(Event { at, ..event });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(30), ProcId(0), EventKind::Timer { token: 3 });
        q.push(SimTime(10), ProcId(0), EventKind::Timer { token: 1 });
        q.push(SimTime(20), ProcId(0), EventKind::Timer { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for token in 0..10 {
            q.push(SimTime(5), ProcId(0), EventKind::Timer { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ProcId(0), EventKind::Timer { token: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
