//! The indexed event core: a deterministic timing-wheel queue of pending
//! deliveries with O(1) push/pop, O(1) cancellation, and incremental
//! enabled-set tracking.
//!
//! Four structures cooperate:
//!
//! * a **slab** (`slots` + free list) owns the full [`Event`] payloads at
//!   stable indices, so scheduling never moves message bodies around;
//! * a **timing wheel** of `SPAN` per-tick buckets orders the near future.
//!   Latencies and service times are small relative to `SPAN`, so almost
//!   every event is bucketed in O(1) — a bucket append on push, a deque
//!   `pop_front` on pop — instead of the O(log n) sift a binary heap pays.
//!   Within a bucket (one tick), entries are kept in sequence order, which
//!   appends preserve for free because sequence numbers are allocated
//!   monotonically;
//! * an **overflow heap** holds the far future (`at ≥ base + SPAN`:
//!   long-delay timers, fault-plan controls). When the wheel runs dry the
//!   window re-anchors at the heap's earliest event and everything inside
//!   the new window migrates into buckets;
//! * a **seq index** (`by_seq`, built lazily — only schedule exploration
//!   needs it) maps sequence numbers to slots, giving the explorer O(1)
//!   `pop_seq` where the old queue paid a full heap rebuild per controlled
//!   step. The per-class FIFO heads (`classes`) are likewise lazy.
//!
//! The queue maintains a **front cache**: after every mutation, the
//! earliest pending event's `(at, seq, slot)` is known, so `next_at` and
//! `peek_plain_at` are O(1) `&self` peeks. Wheel entries are always live
//! (indexed removal deletes from the bucket directly); only the overflow
//! heap can hold stale entries, and it is compacted when they accumulate.
//!
//! Cancellation (crash invalidation, see [`EventQueue::cancel_for`]) does
//! not remove events at all: it converts them **in place** to
//! [`EventKind::Tombstone`], freeing the message payload immediately while
//! keeping the `(at, seq)` firing point, the accumulated queueing `wait`,
//! and the trace-visible identity of the victim. The tombstone fires at
//! the original time as a drop, which is what keeps traces and fault
//! statistics bit-identical to the older lazy epoch-check-at-pop scheme.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::fx::FxHashMap;
use crate::schedule::{Choice, ChoiceKind};
use crate::{ProcId, SimTime};

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind<M> {
    /// Deliver `msg` from `from` to the owning processor. `span` is the
    /// operation the delivery is causally attributable to, resolved at send
    /// time (the payload's own span, else the sending action's).
    Deliver {
        from: ProcId,
        msg: M,
        span: Option<u64>,
    },
    /// Fire a timer with the given token.
    Timer { token: u64 },
    /// Fault-plan control: crash the owning processor.
    Crash,
    /// Fault-plan control: restart the owning processor.
    Restart,
    /// A delivery or timer invalidated by a crash of its target: the
    /// payload is already freed, but the event still fires at its original
    /// `(at, seq)` as a drop, carrying everything the trace and fault
    /// statistics need to describe the victim.
    Tombstone {
        from: ProcId,
        kind: &'static str,
        redelivery: bool,
        span: Option<u64>,
        is_timer: bool,
    },
}

#[derive(Debug)]
pub struct Event<M> {
    pub at: SimTime,
    /// Global sequence number: total tiebreaker so runs are deterministic.
    pub seq: u64,
    pub to: ProcId,
    /// Crash epoch of the target when this event was scheduled. A crash
    /// bumps the target's epoch and eagerly tombstones the in-flight
    /// events it invalidates, so a live event's epoch always matches its
    /// target's — the field survives as the backstop `debug_assert`
    /// checking exactly that, and as the discriminator for events sent
    /// *while* the target is down (current epoch, dropped by the liveness
    /// check, not by cancellation).
    pub epoch: u32,
    /// Ticks this event has spent requeued behind a busy node manager
    /// (accumulated by the service-time model; traced as queueing delay).
    pub wait: u64,
    pub kind: EventKind<M>,
}

/// A wheel-bucket entry: just enough to order firing within one tick,
/// pointing into the slab. Buckets are kept sorted by `seq`.
#[derive(Clone, Copy, Debug)]
struct WheelEntry {
    seq: u64,
    slot: u32,
}

/// An overflow-heap entry for events beyond the wheel window.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The cached earliest pending event (the queue's "front").
#[derive(Clone, Copy, Debug)]
struct Front {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// Ordering class of an event: `(0, src, dst)` for deliveries (per-channel
/// FIFO), `(1, dst, dst)` for timers, `(2, dst, dst)` for crash/restart
/// controls. Tombstones keep their victim's class.
type ClassKey = (u8, ProcId, ProcId);

/// Wheel window width in ticks. Latencies and timer delays below this
/// bound are bucketed in O(1); anything further out takes the overflow
/// heap and migrates in when the window reaches it.
const SPAN: usize = 4096;

/// Compact the overflow heap when stale entries exceed this count and
/// outnumber the live ones.
const COMPACT_SLACK: usize = 64;

/// Deterministic indexed min-queue of events.
pub struct EventQueue<M> {
    /// Per-tick buckets covering `[base, base + SPAN)`; bucket `t % SPAN`
    /// holds the events firing at tick `t`, sorted by seq.
    wheel: Vec<VecDeque<WheelEntry>>,
    /// Occupancy bitmap over buckets (bit `b` set ⇔ `wheel[b]` non-empty),
    /// scanned to find the next firing tick without touching empty buckets.
    occ: Vec<u64>,
    /// Total entries across all buckets (wheel entries are always live).
    wheel_count: usize,
    /// Lower bound of the wheel window. Invariant: every pending event
    /// fires at `≥ base` (the simulator never schedules into the past),
    /// and every overflow-heap event fires at `≥ base + SPAN`.
    base: u64,
    /// Overflow heap for events beyond the window. May hold stale entries
    /// (left by `pop_seq`), counted in `stale_heap`.
    heap: BinaryHeap<HeapEntry>,
    stale_heap: usize,
    /// Slab of event payloads; `None` slots are on the free list.
    slots: Vec<Option<Event<M>>>,
    free: Vec<u32>,
    /// Number of pending events (tombstones included until they fire).
    live: usize,
    /// Cached earliest pending event; `None` iff the queue is empty.
    front: Option<Front>,
    next_seq: u64,
    /// Live events by sequence number, for the schedule explorer's
    /// `pop_seq`. Built lazily on first use, maintained incrementally
    /// afterwards — the plain simulation path never touches it.
    by_seq: Option<FxHashMap<u64, u32>>,
    /// Per-class FIFO heads for the schedule explorer, built lazily on the
    /// first `choices` call and maintained incrementally afterwards. Each
    /// class's `BTreeSet` yields its oldest pending seq in O(log n),
    /// replacing the old full-heap scan per explored step.
    classes: Option<FxHashMap<ClassKey, BTreeSet<u64>>>,
}

fn class_key<M>(e: &Event<M>) -> ClassKey {
    match &e.kind {
        EventKind::Deliver { from, .. } => (0, *from, e.to),
        EventKind::Timer { .. } => (1, e.to, e.to),
        EventKind::Crash | EventKind::Restart => (2, e.to, e.to),
        EventKind::Tombstone { from, is_timer, .. } => {
            if *is_timer {
                (1, e.to, e.to)
            } else {
                (0, *from, e.to)
            }
        }
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..SPAN).map(|_| VecDeque::new()).collect(),
            occ: vec![0; SPAN / 64],
            wheel_count: 0,
            base: 0,
            heap: BinaryHeap::new(),
            stale_heap: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            front: None,
            next_seq: 0,
            by_seq: None,
            classes: None,
        }
    }

    pub fn push(&mut self, at: SimTime, to: ProcId, kind: EventKind<M>) {
        self.push_epoch(at, to, 0, kind);
    }

    /// Push with an explicit crash-epoch stamp (see [`Event::epoch`]).
    pub fn push_epoch(&mut self, at: SimTime, to: ProcId, epoch: u32, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Event {
            at,
            seq,
            to,
            epoch,
            wait: 0,
            kind,
        });
    }

    /// Re-insert a popped event at a later time, preserving its original
    /// sequence number so it cannot be overtaken by events sent after it
    /// (the service-time model relies on this for per-channel FIFO).
    pub fn requeue(&mut self, at: SimTime, event: Event<M>) {
        self.insert(Event { at, ..event });
    }

    fn insert(&mut self, event: Event<M>) {
        debug_assert!(
            event.at.ticks() >= self.base,
            "events are never scheduled into the past"
        );
        if let Some(classes) = &mut self.classes {
            classes
                .entry(class_key(&event))
                .or_default()
                .insert(event.seq);
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        if let Some(by_seq) = &mut self.by_seq {
            by_seq.insert(event.seq, slot);
        }
        let (at, seq) = (event.at, event.seq);
        self.slots[slot as usize] = Some(event);
        self.live += 1;
        if at.ticks() < self.base + SPAN as u64 {
            self.wheel_insert(at, seq, slot);
        } else {
            self.heap.push(HeapEntry { at, seq, slot });
        }
        if self.front.is_none_or(|f| (at, seq) < (f.at, f.seq)) {
            self.front = Some(Front { at, seq, slot });
        }
    }

    /// Insert into the wheel bucket for `at`, keeping the bucket sorted by
    /// seq. Normal pushes append (seqs are allocated monotonically); only
    /// a `requeue` of an old seq pays the sorted insert.
    fn wheel_insert(&mut self, at: SimTime, seq: u64, slot: u32) {
        let b = (at.ticks() % SPAN as u64) as usize;
        let bucket = &mut self.wheel[b];
        let entry = WheelEntry { seq, slot };
        match bucket.back() {
            Some(last) if last.seq > seq => {
                let i = bucket.partition_point(|e| e.seq < seq);
                bucket.insert(i, entry);
            }
            _ => bucket.push_back(entry),
        }
        self.occ[b / 64] |= 1 << (b % 64);
        self.wheel_count += 1;
    }

    /// First non-empty bucket at or after `base` (window order, wrapping).
    /// Caller guarantees `wheel_count > 0`.
    fn first_occupied(&self) -> usize {
        let start = (self.base % SPAN as u64) as usize;
        let (sw, sb) = (start / 64, start % 64);
        // Scan the start word masked below the start bit, then wrap through
        // the remaining words. The window is exactly SPAN wide, so the
        // first set bit in window order is the earliest firing tick.
        let words = self.occ.len();
        let masked = self.occ[sw] & (!0u64 << sb);
        if masked != 0 {
            return sw * 64 + masked.trailing_zeros() as usize;
        }
        for k in 1..=words {
            let w = (sw + k) % words;
            let bits = if w == sw {
                self.occ[w] & !(!0u64 << sb)
            } else {
                self.occ[w]
            };
            if bits != 0 {
                return w * 64 + bits.trailing_zeros() as usize;
            }
        }
        unreachable!("first_occupied called on an empty wheel");
    }

    /// Recompute the front cache after a removal. Wheel entries are always
    /// live, so the wheel's earliest bucket head wins outright (overflow
    /// events all fire later than the whole window); the overflow heap is
    /// scrubbed of stale entries when it supplies the front.
    fn scrub(&mut self) {
        if self.live == 0 {
            self.front = None;
            return;
        }
        if self.wheel_count > 0 {
            let b = self.first_occupied();
            let e = self.wheel[b].front().expect("occupancy bit set");
            let ev = self.slots[e.slot as usize]
                .as_ref()
                .expect("wheel entries are live");
            debug_assert_eq!(ev.seq, e.seq);
            self.front = Some(Front {
                at: ev.at,
                seq: ev.seq,
                slot: e.slot,
            });
            return;
        }
        while let Some(top) = self.heap.peek() {
            match self.slots[top.slot as usize].as_ref() {
                Some(ev) if ev.seq == top.seq => {
                    self.front = Some(Front {
                        at: top.at,
                        seq: top.seq,
                        slot: top.slot,
                    });
                    return;
                }
                _ => {
                    self.heap.pop();
                    self.stale_heap -= 1;
                }
            }
        }
        unreachable!("live > 0 but no event found in wheel or heap");
    }

    /// Migrate every overflow event the current window has reached into
    /// the wheel, restoring the invariant that heap residents all fire at
    /// `≥ base + SPAN`. Heap pops come out in `(at, seq)` order, so bucket
    /// appends stay sorted. Called after every `base` advance; the common
    /// case is a single peek that finds nothing to move.
    fn migrate_window(&mut self) {
        let horizon = self.base + SPAN as u64;
        while let Some(top) = self.heap.peek() {
            if top.at.ticks() >= horizon {
                break;
            }
            let top = self.heap.pop().expect("just peeked");
            let is_live = self.slots[top.slot as usize]
                .as_ref()
                .is_some_and(|ev| ev.seq == top.seq);
            if is_live {
                self.wheel_insert(top.at, top.seq, top.slot);
            } else {
                self.stale_heap -= 1;
            }
        }
    }

    /// Rebuild the overflow heap from live far slots once stale entries
    /// dominate, so an exploration-heavy run cannot hold the heap at its
    /// high-water mark.
    fn maybe_compact(&mut self) {
        if self.stale_heap > COMPACT_SLACK && self.stale_heap * 2 > self.heap.len() {
            let horizon = self.base + SPAN as u64;
            self.heap = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.as_ref()
                        .filter(|ev| ev.at.ticks() >= horizon)
                        .map(|ev| HeapEntry {
                            at: ev.at,
                            seq: ev.seq,
                            slot: i as u32,
                        })
                })
                .collect();
            self.stale_heap = 0;
        }
    }

    /// Detach the event in `slot` from every index and free the slot.
    fn take_slot(&mut self, slot: u32) -> Event<M> {
        let event = self.slots[slot as usize]
            .take()
            .expect("entry points at an occupied slot");
        self.free.push(slot);
        self.live -= 1;
        if let Some(by_seq) = &mut self.by_seq {
            by_seq.remove(&event.seq);
        }
        if let Some(classes) = &mut self.classes {
            let key = class_key(&event);
            let set = classes.get_mut(&key).expect("event was indexed");
            set.remove(&event.seq);
            if set.is_empty() {
                classes.remove(&key);
            }
        }
        event
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        let f = self.front.take()?;
        // The front is the global minimum, so every remaining event — and
        // every future push (the simulator's clock is now here) — fires at
        // or after it: the window anchors at its tick, and any overflow
        // events the window slid over migrate into buckets.
        self.base = f.at.ticks();
        self.migrate_window();
        let b = (f.at.ticks() % SPAN as u64) as usize;
        let e = self.wheel[b].pop_front().expect("front is bucketed");
        debug_assert_eq!(e.seq, f.seq, "front cache points at the bucket head");
        if self.wheel[b].is_empty() {
            self.occ[b / 64] &= !(1 << (b % 64));
        }
        self.wheel_count -= 1;
        let event = self.take_slot(e.slot);
        self.scrub();
        Some(event)
    }

    /// Time of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.front.map(|f| f.at)
    }

    /// Batching probe: the target of the earliest pending event, provided
    /// it fires exactly at `at` and is an ordinary delivery or timer (not
    /// a control event or tombstone). `None` ends a same-tick burst.
    pub fn peek_plain_at(&self, at: SimTime) -> Option<ProcId> {
        let f = self.front?;
        if f.at != at {
            return None;
        }
        let event = self.slots[f.slot as usize]
            .as_ref()
            .expect("front cache is live");
        match event.kind {
            EventKind::Deliver { .. } | EventKind::Timer { .. } => Some(event.to),
            _ => None,
        }
    }

    /// Number of pending events (tombstones included until they fire).
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no events (tombstones included) are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Convert every pending delivery and timer addressed to `to` into a
    /// tombstone: the paper's crash invalidation, applied *eagerly* at the
    /// crash instead of lazily at each victim's pop. Payloads are freed
    /// here; firing times, sequence numbers, accumulated waits, and the
    /// trace-visible identity of each victim are preserved, so the
    /// resulting run is bit-identical to the lazy scheme. Control events
    /// (the crash's own restart) are untouched, as are events that do not
    /// target `to`.
    pub fn cancel_for(&mut self, to: ProcId)
    where
        M: crate::Payload,
    {
        for slot in &mut self.slots {
            let Some(event) = slot else { continue };
            if event.to != to {
                continue;
            }
            event.kind = match &event.kind {
                EventKind::Deliver { from, msg, span } => EventKind::Tombstone {
                    from: *from,
                    kind: msg.kind(),
                    redelivery: msg.redelivery(),
                    span: *span,
                    is_timer: false,
                },
                EventKind::Timer { .. } => EventKind::Tombstone {
                    from: event.to,
                    kind: "timer",
                    redelivery: false,
                    span: None,
                    is_timer: true,
                },
                // Controls survive (a crash must not eat its own restart);
                // an existing tombstone is already canceled.
                EventKind::Crash | EventKind::Restart | EventKind::Tombstone { .. } => continue,
            };
        }
    }

    /// Build the seq index on first explorer use.
    fn ensure_by_seq(&mut self) {
        if self.by_seq.is_none() {
            let mut by_seq = FxHashMap::default();
            for (i, s) in self.slots.iter().enumerate() {
                if let Some(ev) = s {
                    by_seq.insert(ev.seq, i as u32);
                }
            }
            self.by_seq = Some(by_seq);
        }
    }

    /// The *enabled* events a schedule controller may legally fire next:
    /// the lowest-sequence pending event of each ordering class. Classes
    /// are `(src, dst)` channels for deliveries (per-channel FIFO), the
    /// target processor for timers, and the target processor for
    /// crash/restart controls (a crash precedes its own restart). Sorted by
    /// sequence number so the listing is deterministic.
    ///
    /// The first call builds the per-class index; subsequent calls reuse
    /// it, maintained incrementally by push/pop, so a controlled run pays
    /// O(classes) per step instead of O(pending events).
    pub fn choices(&mut self) -> Vec<Choice>
    where
        M: crate::Payload,
    {
        self.ensure_by_seq();
        if self.classes.is_none() {
            let mut classes: FxHashMap<ClassKey, BTreeSet<u64>> = FxHashMap::default();
            for event in self.slots.iter().flatten() {
                classes
                    .entry(class_key(event))
                    .or_default()
                    .insert(event.seq);
            }
            self.classes = Some(classes);
        }
        let classes = self.classes.as_ref().unwrap();
        let by_seq = self.by_seq.as_ref().unwrap();
        let mut out: Vec<Choice> = classes
            .values()
            .filter_map(|set| set.iter().next())
            .map(|seq| {
                let slot = by_seq[seq];
                let event = self.slots[slot as usize].as_ref().expect("indexed event");
                Choice {
                    seq: event.seq,
                    at: event.at,
                    to: event.to,
                    from: match &event.kind {
                        EventKind::Deliver { from, .. } => Some(*from),
                        EventKind::Tombstone {
                            from,
                            is_timer: false,
                            ..
                        } => Some(*from),
                        _ => None,
                    },
                    kind: match &event.kind {
                        EventKind::Deliver { .. } => ChoiceKind::Deliver,
                        EventKind::Timer { .. } => ChoiceKind::Timer,
                        EventKind::Crash | EventKind::Restart => ChoiceKind::Control,
                        EventKind::Tombstone { is_timer, .. } => {
                            if *is_timer {
                                ChoiceKind::Timer
                            } else {
                                ChoiceKind::Deliver
                            }
                        }
                    },
                    label: match &event.kind {
                        EventKind::Deliver { msg, .. } => msg.kind(),
                        EventKind::Timer { .. } => "timer",
                        EventKind::Crash => "crash",
                        EventKind::Restart => "restart",
                        EventKind::Tombstone { kind, .. } => kind,
                    },
                }
            })
            .collect();
        out.sort_unstable_by_key(|c| c.seq);
        out
    }

    /// The next sequence number this queue will allocate. The simulator
    /// samples it around each controlled step to report which events the
    /// step created (see [`crate::Scheduler::fired`]).
    pub fn seq_watermark(&self) -> u64 {
        self.next_seq
    }

    /// Fold the *content* of every pending event into `h`, in channel
    /// order: for each ordering class (sorted), the queued payloads oldest
    /// first. Virtual times and sequence numbers are deliberately excluded
    /// — the model checker's state fingerprint must identify two states
    /// that differ only in when their events were minted. Payloads hash
    /// via their `Debug` rendering (every [`crate::Payload`] is `Debug`).
    pub fn pending_fingerprint(&self, h: &mut impl std::hash::Hasher)
    where
        M: std::fmt::Debug,
    {
        use std::hash::Hash;
        let mut pending: Vec<(ClassKey, u64, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|ev| (class_key(ev), ev.seq, i as u32)))
            .collect();
        pending.sort_unstable_by_key(|&(key, seq, _)| (key, seq));
        for (key, _, slot) in pending {
            let event = self.slots[slot as usize].as_ref().expect("slot is live");
            (key.0, key.1 .0, key.2 .0).hash(h);
            match &event.kind {
                EventKind::Deliver { msg, .. } => format!("{msg:?}").hash(h),
                EventKind::Timer { token } => ("timer", token).hash(h),
                EventKind::Crash => "crash".hash(h),
                EventKind::Restart => "restart".hash(h),
                EventKind::Tombstone {
                    kind, redelivery, ..
                } => ("tomb", kind, redelivery).hash(h),
            }
        }
    }

    /// Remove and return the pending event with the given sequence number
    /// (the schedule explorer's controlled step). Wheel residents are
    /// deleted from their bucket directly; overflow residents leave a
    /// stale heap entry behind, swept when it surfaces or at compaction.
    pub fn pop_seq(&mut self, seq: u64) -> Option<Event<M>> {
        self.ensure_by_seq();
        let slot = *self.by_seq.as_ref().unwrap().get(&seq)?;
        // Free the slot *before* the overflow bookkeeping: heap compaction
        // rebuilds from live slots, and the victim must not be one of them.
        let event = self.take_slot(slot);
        if event.at.ticks() < self.base + SPAN as u64 {
            let b = (event.at.ticks() % SPAN as u64) as usize;
            let bucket = &mut self.wheel[b];
            let i = bucket.partition_point(|e| e.seq < seq);
            debug_assert_eq!(bucket[i].seq, seq, "bucket is sorted by seq");
            bucket.remove(i);
            if bucket.is_empty() {
                self.occ[b / 64] &= !(1 << (b % 64));
            }
            self.wheel_count -= 1;
        } else {
            self.stale_heap += 1;
            self.maybe_compact();
        }
        if self.front.is_none_or(|f| f.seq == seq) {
            self.scrub();
        }
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(30), ProcId(0), EventKind::Timer { token: 3 });
        q.push(SimTime(10), ProcId(0), EventKind::Timer { token: 1 });
        q.push(SimTime(20), ProcId(0), EventKind::Timer { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for token in 0..10 {
            q.push(SimTime(5), ProcId(0), EventKind::Timer { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn far_events_overflow_and_migrate_in_order() {
        // Events beyond the wheel window live in the overflow heap and
        // must come back in exact (at, seq) order when the window reaches
        // them — including same-tick seq ties split across the boundary.
        let mut q: EventQueue<u32> = EventQueue::new();
        let far = SPAN as u64 * 3 + 17;
        q.push(SimTime(far), ProcId(0), EventKind::Timer { token: 0 }); // seq 0
        q.push(SimTime(2), ProcId(0), EventKind::Timer { token: 1 }); // seq 1
        q.push(SimTime(far + 1), ProcId(0), EventKind::Timer { token: 2 }); // seq 2
        q.push(SimTime(far), ProcId(0), EventKind::Timer { token: 3 }); // seq 3
        assert_eq!(q.next_at(), Some(SimTime(2)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.at.ticks(), e.seq))
            .collect();
        assert_eq!(order, vec![(2, 1), (far, 0), (far, 3), (far + 1, 2)]);
        // The window re-anchored; near pushes still work afterwards.
        q.push(SimTime(far + 2), ProcId(0), EventKind::Timer { token: 9 });
        assert_eq!(q.pop().unwrap().at, SimTime(far + 2));
        assert!(q.is_empty());
    }

    #[test]
    fn window_advance_catches_overflow_residents() {
        // An event can be pushed beyond the window (→ overflow heap) and
        // then have the window slide over it as nearer events pop. It must
        // migrate into the wheel when that happens, and still order
        // correctly against wheel residents pushed after it.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(4000), ProcId(0), EventKind::Timer { token: 0 });
        // Beyond base(0) + SPAN → overflow heap.
        q.push(SimTime(5000), ProcId(0), EventKind::Timer { token: 1 });
        assert_eq!(q.pop().unwrap().at, SimTime(4000));
        // base is now 4000; 5000 sits inside the new window. A fresh wheel
        // push at 6000 must not overtake it.
        q.push(SimTime(6000), ProcId(0), EventKind::Timer { token: 2 });
        assert_eq!(q.next_at(), Some(SimTime(5000)));
        assert_eq!(q.pop().unwrap().at, SimTime(5000));
        assert_eq!(q.pop().unwrap().at, SimTime(6000));
        assert!(q.is_empty());
    }

    #[test]
    fn requeue_preserves_original_seq_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(5), ProcId(0), EventKind::Timer { token: 0 }); // seq 0
        q.push(SimTime(5), ProcId(0), EventKind::Timer { token: 1 }); // seq 1
        q.push(SimTime(9), ProcId(0), EventKind::Timer { token: 2 }); // seq 2
        let first = q.pop().unwrap();
        assert_eq!(first.seq, 0);
        // Requeue the popped event at tick 9: its old seq (0) must fire
        // before seq 2 at the same tick, exercising the sorted bucket
        // insert.
        q.requeue(SimTime(9), first);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn choices_expose_one_head_per_class() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Two messages on channel 1->0, one on 2->0, a timer on 0, and a
        // crash+restart pair on 1.
        let deliver = |from: u32, msg| EventKind::Deliver {
            from: ProcId(from),
            msg,
            span: None,
        };
        q.push(SimTime(10), ProcId(0), deliver(1, 7)); // seq 0
        q.push(SimTime(5), ProcId(0), deliver(1, 8)); // seq 1 — same channel
        q.push(SimTime(20), ProcId(0), deliver(2, 9)); // seq 2
        q.push(SimTime(1), ProcId(0), EventKind::Timer { token: 3 }); // seq 3
        q.push(SimTime(2), ProcId(1), EventKind::Crash); // seq 4
        q.push(SimTime(9), ProcId(1), EventKind::Restart); // seq 5 — masked
        let choices = q.choices();
        let seqs: Vec<u64> = choices.iter().map(|c| c.seq).collect();
        // Channel 1->0 exposes only seq 0 (its oldest), and the restart is
        // masked by the crash that precedes it.
        assert_eq!(seqs, vec![0, 2, 3, 4]);
        assert_eq!(choices[0].from, Some(ProcId(1)));
        assert_eq!(choices[2].kind, ChoiceKind::Timer);
        assert_eq!(choices[3].kind, ChoiceKind::Control);
        // Popping the crash unmasks the restart.
        assert!(q.pop_seq(4).is_some());
        assert!(q.choices().iter().any(|c| c.seq == 5));
        // pop_seq leaves the rest of the queue intact and ordered.
        assert!(q.pop_seq(99).is_none());
        assert_eq!(q.len(), 5);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![3, 1, 5, 0, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ProcId(0), EventKind::Timer { token: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    impl crate::Payload for u32 {}

    #[test]
    fn cancel_tombstones_deliveries_and_timers_but_not_controls() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let deliver = |from: u32, msg| EventKind::Deliver {
            from: ProcId(from),
            msg,
            span: Some(41),
        };
        q.push(SimTime(10), ProcId(1), deliver(0, 7)); // seq 0 — victim
        q.push(SimTime(12), ProcId(1), EventKind::Timer { token: 9 }); // seq 1 — victim
        q.push(SimTime(15), ProcId(2), deliver(0, 8)); // seq 2 — other target
        q.push(SimTime(20), ProcId(1), EventKind::Restart); // seq 3 — control survives
        q.cancel_for(ProcId(1));
        assert_eq!(q.len(), 4, "cancellation never removes events");

        let e0 = q.pop().unwrap();
        assert_eq!((e0.at, e0.seq, e0.wait), (SimTime(10), 0, 0));
        match e0.kind {
            EventKind::Tombstone {
                from,
                kind,
                redelivery,
                span,
                is_timer,
            } => {
                assert_eq!(from, ProcId(0));
                assert_eq!(kind, "msg");
                assert!(!redelivery);
                assert_eq!(span, Some(41));
                assert!(!is_timer);
            }
            other => panic!("expected deliver tombstone, got {other:?}"),
        }
        let e1 = q.pop().unwrap();
        assert!(
            matches!(e1.kind, EventKind::Tombstone { is_timer: true, .. }),
            "timer becomes a timer tombstone"
        );
        assert!(
            matches!(q.pop().unwrap().kind, EventKind::Deliver { .. }),
            "other targets untouched"
        );
        assert!(
            matches!(q.pop().unwrap().kind, EventKind::Restart),
            "controls survive cancellation"
        );
    }

    #[test]
    fn tombstones_keep_their_class_for_the_explorer() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let deliver = |from: u32, msg| EventKind::Deliver {
            from: ProcId(from),
            msg,
            span: None,
        };
        q.push(SimTime(10), ProcId(1), deliver(0, 7)); // seq 0
        q.push(SimTime(11), ProcId(1), deliver(0, 8)); // seq 1 — same channel
                                                       // Build the incremental index before canceling, then verify the
                                                       // cancellation is class-invisible.
        let before: Vec<u64> = q.choices().iter().map(|c| c.seq).collect();
        q.cancel_for(ProcId(1));
        let after = q.choices();
        assert_eq!(before, vec![0]);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].seq, 0);
        assert_eq!(after[0].kind, ChoiceKind::Deliver);
        assert_eq!(after[0].from, Some(ProcId(0)));
    }

    #[test]
    fn pop_seq_is_indexed_and_structures_stay_compact() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Near events (wheel residents) are deleted from their bucket
        // outright by pop_seq.
        for i in 0..500u64 {
            q.push(SimTime(i), ProcId(0), EventKind::Timer { token: i });
        }
        for seq in 0..400u64 {
            assert!(q.pop_seq(seq).is_some());
        }
        assert_eq!(q.len(), 100);
        assert_eq!(q.wheel_count, 100, "wheel removals leave nothing stale");
        assert_eq!(q.next_at(), Some(SimTime(400)));

        // Far events (overflow residents) leave stale heap entries behind;
        // those must be compacted away, not accumulate.
        let far = SPAN as u64 * 10;
        for i in 0..500u64 {
            q.push(SimTime(far + i), ProcId(0), EventKind::Timer { token: i });
        }
        for seq in 500..900u64 {
            assert!(q.pop_seq(seq).is_some());
        }
        assert_eq!(q.len(), 200);
        assert!(
            q.heap.len() <= 100 + COMPACT_SLACK + 1,
            "stale heap entries must be compacted (heap holds {})",
            q.heap.len()
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        let expected: Vec<u64> = (400..500).chain(900..1000).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn slots_are_reused_after_pop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                q.push(
                    SimTime(round * 1000 + i),
                    ProcId(0),
                    EventKind::Timer { token: i },
                );
            }
            for _ in 0..100 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 100,
            "slab must reuse freed slots (grew to {})",
            q.slots.len()
        );
    }
}
