//! The event heap: a deterministic priority queue of pending deliveries.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::schedule::{Choice, ChoiceKind};
use crate::{ProcId, SimTime};

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to the owning processor. `span` is the
    /// operation the delivery is causally attributable to, resolved at send
    /// time (the payload's own span, else the sending action's).
    Deliver {
        from: ProcId,
        msg: M,
        span: Option<u64>,
    },
    /// Fire a timer with the given token.
    Timer { token: u64 },
    /// Fault-plan control: crash the owning processor.
    Crash,
    /// Fault-plan control: restart the owning processor.
    Restart,
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: SimTime,
    /// Global sequence number: total tiebreaker so runs are deterministic.
    pub seq: u64,
    pub to: ProcId,
    /// Crash epoch of the target when this event was scheduled. A crash
    /// bumps the target's epoch, invalidating deliveries and timers that
    /// were already in flight (the crashed processor's volatile state).
    pub epoch: u32,
    /// Ticks this event has spent requeued behind a busy node manager
    /// (accumulated by the service-time model; traced as queueing delay).
    pub wait: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic min-heap of events.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: SimTime, to: ProcId, kind: EventKind<M>) {
        self.push_epoch(at, to, 0, kind);
    }

    /// Push with an explicit crash-epoch stamp (see [`Event::epoch`]).
    pub fn push_epoch(&mut self, at: SimTime, to: ProcId, epoch: u32, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            seq,
            to,
            epoch,
            wait: 0,
            kind,
        });
    }

    /// Re-insert a popped event at a later time, preserving its original
    /// sequence number so it cannot be overtaken by events sent after it
    /// (the service-time model relies on this for per-channel FIFO).
    pub fn requeue(&mut self, at: SimTime, event: Event<M>) {
        self.heap.push(Event { at, ..event });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The *enabled* events a schedule controller may legally fire next:
    /// the lowest-sequence pending event of each ordering class. Classes
    /// are `(src, dst)` channels for deliveries (per-channel FIFO), the
    /// target processor for timers, and the target processor for
    /// crash/restart controls (a crash precedes its own restart). Sorted by
    /// sequence number so the listing is deterministic.
    pub fn choices(&self) -> Vec<Choice> {
        let mut best: HashMap<(u8, ProcId, ProcId), &Event<M>> = HashMap::new();
        for e in self.heap.iter() {
            let key = match &e.kind {
                EventKind::Deliver { from, .. } => (0u8, *from, e.to),
                EventKind::Timer { .. } => (1, e.to, e.to),
                EventKind::Crash | EventKind::Restart => (2, e.to, e.to),
            };
            let slot = best.entry(key).or_insert(e);
            if e.seq < slot.seq {
                *slot = e;
            }
        }
        let mut out: Vec<Choice> = best
            .into_values()
            .map(|e| Choice {
                seq: e.seq,
                at: e.at,
                to: e.to,
                from: match &e.kind {
                    EventKind::Deliver { from, .. } => Some(*from),
                    _ => None,
                },
                kind: match &e.kind {
                    EventKind::Deliver { .. } => ChoiceKind::Deliver,
                    EventKind::Timer { .. } => ChoiceKind::Timer,
                    EventKind::Crash | EventKind::Restart => ChoiceKind::Control,
                },
            })
            .collect();
        out.sort_unstable_by_key(|c| c.seq);
        out
    }

    /// Remove and return the pending event with the given sequence number.
    /// O(n) — schedule exploration trades heap efficiency for control.
    pub fn pop_seq(&mut self, seq: u64) -> Option<Event<M>> {
        let mut v = std::mem::take(&mut self.heap).into_vec();
        let found = v
            .iter()
            .position(|e| e.seq == seq)
            .map(|i| v.swap_remove(i));
        self.heap = BinaryHeap::from(v);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(30), ProcId(0), EventKind::Timer { token: 3 });
        q.push(SimTime(10), ProcId(0), EventKind::Timer { token: 1 });
        q.push(SimTime(20), ProcId(0), EventKind::Timer { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for token in 0..10 {
            q.push(SimTime(5), ProcId(0), EventKind::Timer { token });
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn choices_expose_one_head_per_class() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Two messages on channel 1->0, one on 2->0, a timer on 0, and a
        // crash+restart pair on 1.
        let deliver = |from: u32, msg| EventKind::Deliver {
            from: ProcId(from),
            msg,
            span: None,
        };
        q.push(SimTime(10), ProcId(0), deliver(1, 7)); // seq 0
        q.push(SimTime(5), ProcId(0), deliver(1, 8)); // seq 1 — same channel
        q.push(SimTime(20), ProcId(0), deliver(2, 9)); // seq 2
        q.push(SimTime(1), ProcId(0), EventKind::Timer { token: 3 }); // seq 3
        q.push(SimTime(2), ProcId(1), EventKind::Crash); // seq 4
        q.push(SimTime(9), ProcId(1), EventKind::Restart); // seq 5 — masked
        let choices = q.choices();
        let seqs: Vec<u64> = choices.iter().map(|c| c.seq).collect();
        // Channel 1->0 exposes only seq 0 (its oldest), and the restart is
        // masked by the crash that precedes it.
        assert_eq!(seqs, vec![0, 2, 3, 4]);
        assert_eq!(choices[0].from, Some(ProcId(1)));
        assert_eq!(choices[2].kind, ChoiceKind::Timer);
        assert_eq!(choices[3].kind, ChoiceKind::Control);
        // Popping the crash unmasks the restart.
        assert!(q.pop_seq(4).is_some());
        assert!(q.choices().iter().any(|c| c.seq == 5));
        // pop_seq leaves the rest of the heap intact and ordered.
        assert!(q.pop_seq(99).is_none());
        assert_eq!(q.len(), 5);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![3, 1, 5, 0, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ProcId(0), EventKind::Timer { token: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
