//! Message accounting.
//!
//! The paper's efficiency claims are message-complexity claims, so the
//! simulator counts every send: total, by kind, by locality, and by sender.

use std::fmt;

use crate::fault::FaultStats;

/// Counters for one message kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Messages between distinct processors.
    pub remote: u64,
    /// Messages a processor sent to itself (local queue hand-offs).
    pub local: u64,
    /// Sum of payload `size_hint`s for remote messages.
    pub remote_bytes: u64,
}

impl KindStats {
    /// Remote + local count.
    pub fn total(&self) -> u64 {
        self.remote + self.local
    }
}

/// Aggregated network statistics for a run.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Touched once per send. Kinds are a small closed set of static
    /// strings and consecutive sends repeat them, so a tiny vector with a
    /// last-hit cache beats hashing the string every time; every read that
    /// exposes ordering sorts by kind first.
    by_kind: Vec<(&'static str, KindStats)>,
    /// Index into `by_kind` of the most recent hit (0 is safe when empty).
    last_kind: usize,
    per_proc_sent: Vec<u64>,
    per_proc_received: Vec<u64>,
    max_inflight: usize,
    faults: FaultStats,
    /// Counters that went *backwards* between the snapshots of a
    /// [`NetStats::delta_since`] — see [`NetStats::underflowed`]. Always
    /// empty on live stats.
    underflow: Vec<String>,
}

impl NetStats {
    pub(crate) fn new(n_procs: usize) -> Self {
        NetStats {
            by_kind: Vec::new(),
            last_kind: 0,
            per_proc_sent: vec![0; n_procs],
            per_proc_received: vec![0; n_procs],
            max_inflight: 0,
            faults: FaultStats::default(),
            underflow: Vec::new(),
        }
    }

    /// Counters for injected faults (all zero without a fault plan).
    pub fn faults(&self) -> &FaultStats {
        &self.faults
    }

    pub(crate) fn faults_mut(&mut self) -> &mut FaultStats {
        &mut self.faults
    }

    pub(crate) fn record_send(
        &mut self,
        kind: &'static str,
        src: usize,
        dst: Option<usize>,
        size: usize,
        local: bool,
    ) {
        let entry = self.kind_slot(kind);
        if local {
            entry.local += 1;
        } else {
            entry.remote += 1;
            entry.remote_bytes += size as u64;
        }
        if let Some(s) = self.per_proc_sent.get_mut(src) {
            *s += 1;
        }
        if let Some(d) = dst.and_then(|d| self.per_proc_received.get_mut(d)) {
            *d += 1;
        }
    }

    /// The mutable counters for `kind`, found without hashing: pointer
    /// compare against the last hit first (static strings make that almost
    /// always correct), then a short content scan, inserting on miss. The
    /// content fallback keeps duplicate literals with equal text merged.
    fn kind_slot(&mut self, kind: &'static str) -> &mut KindStats {
        if let Some((k, _)) = self.by_kind.get(self.last_kind) {
            if std::ptr::eq(*k, kind) {
                return &mut self.by_kind[self.last_kind].1;
            }
        }
        let idx = match self
            .by_kind
            .iter()
            .position(|(k, _)| std::ptr::eq(*k, kind) || *k == kind)
        {
            Some(i) => i,
            None => {
                self.by_kind.push((kind, KindStats::default()));
                self.by_kind.len() - 1
            }
        };
        self.last_kind = idx;
        &mut self.by_kind[idx].1
    }

    pub(crate) fn observe_inflight(&mut self, inflight: usize) {
        self.max_inflight = self.max_inflight.max(inflight);
    }

    /// All messages sent, local and remote, across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.by_kind.iter().map(|(_, v)| v.total()).sum()
    }

    /// Remote messages only — the paper's cost unit.
    pub fn remote_messages(&self) -> u64 {
        self.by_kind.iter().map(|(_, v)| v.remote).sum()
    }

    /// Remote bytes (sum of payload size hints).
    pub fn remote_bytes(&self) -> u64 {
        self.by_kind.iter().map(|(_, v)| v.remote_bytes).sum()
    }

    /// Counters for one message kind (zeros if never seen).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, v)| *v)
            .unwrap_or_default()
    }

    /// Iterate `(kind, counters)` in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        let mut sorted: Vec<(&'static str, KindStats)> = self.by_kind.clone();
        sorted.sort_unstable_by_key(|(k, _)| *k);
        sorted.into_iter()
    }

    /// Sum of remote counts over kinds matching the predicate.
    pub fn remote_matching(&self, mut pred: impl FnMut(&str) -> bool) -> u64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, v)| v.remote)
            .sum()
    }

    /// Messages sent per processor (index = `ProcId.0`).
    pub fn per_proc_sent(&self) -> &[u64] {
        &self.per_proc_sent
    }

    /// Messages received per processor.
    pub fn per_proc_received(&self) -> &[u64] {
        &self.per_proc_received
    }

    /// High-water mark of simultaneously in-flight events.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Difference from a prior snapshot: counters in `self` minus `earlier`.
    ///
    /// Used to attribute message costs to a single phase of a run (e.g. "one
    /// split"), since stats only accumulate.
    ///
    /// Live counters are monotone, so a counter that reads *lower* than in
    /// `earlier` means the snapshots are mismatched (different runs, or
    /// snapshots taken in the wrong order). The subtraction still clamps to
    /// zero — a phase cost can't be negative — but every offending counter
    /// is named in [`NetStats::underflowed`] instead of being silently
    /// masked.
    pub fn delta_since(&self, earlier: &NetStats) -> NetStats {
        let mut out = self.clone();
        let mut underflow = Vec::new();
        let mut sub = |now: u64, prev: u64, name: &dyn Fn() -> String| -> u64 {
            if now < prev {
                underflow.push(name());
            }
            now.saturating_sub(prev)
        };
        let mut earlier_kinds: Vec<(&'static str, &KindStats)> = earlier
            .by_kind
            .iter()
            .map(|(k, v)| (*k, v))
            .collect::<Vec<_>>();
        earlier_kinds.sort_unstable_by_key(|(k, _)| *k);
        for (kind, prev) in earlier_kinds {
            let e = out.kind_slot(kind);
            e.remote = sub(e.remote, prev.remote, &|| format!("kind:{kind}.remote"));
            e.local = sub(e.local, prev.local, &|| format!("kind:{kind}.local"));
            e.remote_bytes = sub(e.remote_bytes, prev.remote_bytes, &|| {
                format!("kind:{kind}.remote_bytes")
            });
        }
        for (i, prev) in earlier.per_proc_sent.iter().enumerate() {
            if let Some(s) = out.per_proc_sent.get_mut(i) {
                *s = sub(*s, *prev, &|| format!("proc{i}.sent"));
            }
        }
        for (i, prev) in earlier.per_proc_received.iter().enumerate() {
            if let Some(r) = out.per_proc_received.get_mut(i) {
                *r = sub(*r, *prev, &|| format!("proc{i}.received"));
            }
        }
        for (now, prev, name) in [
            (
                self.faults.dropped,
                earlier.faults.dropped,
                "faults.dropped",
            ),
            (
                self.faults.duplicated,
                earlier.faults.duplicated,
                "faults.duplicated",
            ),
            (
                self.faults.partition_dropped,
                earlier.faults.partition_dropped,
                "faults.partition_dropped",
            ),
            (
                self.faults.crash_dropped,
                earlier.faults.crash_dropped,
                "faults.crash_dropped",
            ),
            (
                self.faults.timer_dropped,
                earlier.faults.timer_dropped,
                "faults.timer_dropped",
            ),
            (
                self.faults.crashes,
                earlier.faults.crashes,
                "faults.crashes",
            ),
            (
                self.faults.restarts,
                earlier.faults.restarts,
                "faults.restarts",
            ),
        ] {
            if now < prev {
                underflow.push(name.to_string());
            }
        }
        out.faults = self.faults.saturating_sub(&earlier.faults);
        out.underflow = underflow;
        out
    }

    /// Counters that went backwards in the [`NetStats::delta_since`] that
    /// produced this value (their deltas were clamped to zero). Non-empty
    /// means the delta is unreliable: the snapshots don't describe one
    /// monotone accumulation.
    pub fn underflowed(&self) -> &[String] {
        &self.underflow
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "messages: {} total ({} remote, {} remote bytes)",
            self.total_messages(),
            self.remote_messages(),
            self.remote_bytes()
        )?;
        for (kind, ks) in self.kinds() {
            writeln!(
                f,
                "  {:<24} remote {:>8}  local {:>8}",
                kind, ks.remote, ks.local
            )?;
        }
        if self.faults.any() {
            writeln!(
                f,
                "faults: {} dropped, {} duplicated, {} partition-dropped, \
                 {} crash-dropped, {} timers lost, {} crashes, {} restarts",
                self.faults.dropped,
                self.faults.duplicated,
                self.faults.partition_dropped,
                self.faults.crash_dropped,
                self.faults.timer_dropped,
                self.faults.crashes,
                self.faults.restarts
            )?;
        }
        if !self.underflow.is_empty() {
            writeln!(
                f,
                "WARNING: {} counter(s) went backwards in delta: {}",
                self.underflow.len(),
                self.underflow.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind_and_locality() {
        let mut s = NetStats::new(2);
        s.record_send("insert", 0, Some(1), 16, false);
        s.record_send("insert", 0, Some(0), 16, true);
        s.record_send("search", 1, Some(0), 8, false);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.remote_messages(), 2);
        assert_eq!(s.kind("insert").remote, 1);
        assert_eq!(s.kind("insert").local, 1);
        assert_eq!(s.kind("search").remote, 1);
        assert_eq!(s.kind("missing"), KindStats::default());
        assert_eq!(s.remote_bytes(), 24);
        assert_eq!(s.per_proc_sent(), &[2, 1]);
        assert_eq!(s.per_proc_received(), &[2, 1]);
    }

    #[test]
    fn delta_since_attributes_a_phase() {
        let mut s = NetStats::new(1);
        s.record_send("a", 0, Some(0), 4, false);
        let snap = s.clone();
        s.record_send("a", 0, Some(0), 4, false);
        s.record_send("b", 0, Some(0), 4, false);
        let d = s.delta_since(&snap);
        assert_eq!(d.kind("a").remote, 1);
        assert_eq!(d.kind("b").remote, 1);
        assert_eq!(d.per_proc_sent(), &[2]);
        assert!(d.underflowed().is_empty(), "forward deltas are clean");
    }

    #[test]
    fn delta_since_surfaces_underflow() {
        // Snapshots taken in the wrong order: every counter that moved
        // reads backwards, and each must be named rather than silently
        // clamped to zero.
        let mut s = NetStats::new(1);
        s.record_send("a", 0, Some(0), 4, false);
        let later = s.clone();
        s.record_send("a", 0, Some(0), 4, false);
        let d = later.delta_since(&s);
        assert_eq!(d.kind("a").remote, 0, "clamped, not negative");
        let names = d.underflowed();
        assert!(
            names.contains(&"kind:a.remote".to_string()),
            "kind counter named: {names:?}"
        );
        assert!(
            names.contains(&"proc0.sent".to_string()),
            "per-proc counter named: {names:?}"
        );
        let shown = format!("{d}");
        assert!(shown.contains("went backwards"), "Display warns: {shown}");
    }

    #[test]
    fn remote_matching_filters() {
        let mut s = NetStats::new(1);
        s.record_send("split.start", 0, None, 0, false);
        s.record_send("split.end", 0, None, 0, false);
        s.record_send("insert", 0, None, 0, false);
        assert_eq!(s.remote_matching(|k| k.starts_with("split")), 2);
    }

    #[test]
    fn inflight_high_water() {
        let mut s = NetStats::new(0);
        s.observe_inflight(3);
        s.observe_inflight(1);
        assert_eq!(s.max_inflight(), 3);
    }
}
