//! Critical-path profiling: turn the span-attributed causal [`Trace`] into
//! a per-operation latency decomposition.
//!
//! Every operation's trace entries form a causal DAG: the client request
//! arrives, actions fire on processors, their sends become further
//! deliveries, and one action finally emits the reply ([`TraceEvent::Output`]).
//! The **critical path** is the chain of actions that actually carried the
//! op from submission to reply; everything else the op triggered (lazy relay
//! propagation, split rounds completing in the background) is **off-path**
//! work that never delayed the caller — the paper's "a slow operation never
//! blocks a fast operation" made measurable.
//!
//! Along the path, every tick of latency is attributed to one of four
//! segments, and they sum *exactly* to the measured latency on the
//! simulator's service-time model:
//!
//! * **transit** — wire time between a hop's send (predecessor action's
//!   completion) and its arrival at the destination;
//! * **queueing** — ticks the delivery waited for a busy node manager
//!   ([`TraceEntry::wait`]);
//! * **service** — the action's own execution time on its processor;
//! * **stall** — time between the last span-attributed action's completion
//!   and the reply's departure. Zero for non-blocking protocols; for
//!   blocking ones (sync splits, available-copies locks) it is exactly the
//!   time the op sat parked waiting for an action *not* attributed to it.
//!
//! The decomposition telescopes: with `r_i = at_i − wait_i` (arrival),
//! `d_i = at_i + service(proc_i)` (completion) and `d_0 = submitted`,
//! `latency = Σ_i (r_i − d_{i−1}) + wait_i + service_i` plus the final
//! stall — each term non-negative, nothing double-counted.

use std::collections::BTreeMap;

use crate::driver::DriverStats;
use crate::trace::{Trace, TraceEntry, TraceEvent};
use crate::{MetricsRegistry, ProcId, SimTime};

/// Per-processor service times, mirroring
/// [`SimConfig`](crate::SimConfig)`::service_time` + `service_overrides` —
/// the profiler needs them to reconstruct action completion times from the
/// trace (which records arrivals).
#[derive(Clone, Debug, Default)]
pub struct ServiceTimes {
    base: u64,
    overrides: Vec<(ProcId, u64)>,
}

impl ServiceTimes {
    /// Every processor serves actions in `base` ticks.
    pub fn uniform(base: u64) -> Self {
        ServiceTimes {
            base,
            overrides: Vec::new(),
        }
    }

    /// Override one processor's service time (builder style).
    pub fn with_override(mut self, proc: ProcId, ticks: u64) -> Self {
        self.overrides.push((proc, ticks));
        self
    }

    /// The service time of `proc` (external endpoints serve in 0).
    pub fn of(&self, proc: ProcId) -> u64 {
        if proc.is_external() {
            return 0;
        }
        self.overrides
            .iter()
            .rev()
            .find(|(p, _)| *p == proc)
            .map_or(self.base, |&(_, s)| s)
    }
}

/// One hop on an operation's critical path, with its latency contribution.
#[derive(Clone, Debug)]
pub struct Hop {
    /// The processor the action ran on.
    pub proc: ProcId,
    /// Deliver or Timer.
    pub event: TraceEvent,
    /// The payload kind that triggered the action.
    pub kind: &'static str,
    /// Wire ticks from the predecessor's completion to this arrival.
    pub transit: u64,
    /// Ticks waited for the busy node manager.
    pub queueing: u64,
    /// The action's own execution ticks.
    pub service: u64,
}

/// The full latency decomposition of one operation.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// The op's span (driver-assigned id).
    pub span: u64,
    /// Measured end-to-end latency (`completed − submitted`).
    pub latency: u64,
    /// Total wire time along the critical path.
    pub transit: u64,
    /// Total node-manager queueing along the critical path.
    pub queueing: u64,
    /// Total action execution time along the critical path.
    pub service: u64,
    /// Reply-side blocking: completion minus the last path action's end.
    pub stall: u64,
    /// `true` when the four segments sum exactly to `latency` with no
    /// clamped (would-be-negative) term — always the case on clean
    /// simulator runs; reconstruction on truncated or faulty traces may be
    /// approximate.
    pub exact: bool,
    /// The critical path, submission → reply.
    pub hops: Vec<Hop>,
    /// Span-attributed actions that ran *off* the critical path (lazy
    /// background work this op triggered but never waited for).
    pub off_path_actions: u64,
    /// Node-manager ticks those off-path actions waited (load they felt).
    pub off_path_queueing: u64,
    /// Execution ticks of off-path actions (load they imposed).
    pub off_path_service: u64,
    /// Ticks the op's background work kept running past its completion.
    pub lazy_tail: u64,
    /// Fault events (drops, duplicates) attributed to this span.
    pub faults: u64,
}

impl OpProfile {
    /// Sum of the four critical-path segments; equals [`OpProfile::latency`]
    /// when [`OpProfile::exact`].
    pub fn segments_sum(&self) -> u64 {
        self.transit + self.queueing + self.service + self.stall
    }
}

/// Aggregated segment totals over a profiled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Segments {
    /// Operations profiled.
    pub ops: u64,
    /// Summed measured latency.
    pub latency: u64,
    /// Summed wire time.
    pub transit: u64,
    /// Summed node-manager queueing.
    pub queueing: u64,
    /// Summed action execution time.
    pub service: u64,
    /// Summed reply-side blocking.
    pub stall: u64,
    /// Summed off-path action count.
    pub off_path_actions: u64,
    /// Summed off-path queueing ticks.
    pub off_path_queueing: u64,
}

impl Segments {
    /// `part` as a fraction of total latency (0.0 when nothing measured).
    pub fn share(&self, part: u64) -> f64 {
        if self.latency == 0 {
            0.0
        } else {
            part as f64 / self.latency as f64
        }
    }
}

/// A profiled run: per-op decompositions plus the records the profiler had
/// to skip (trace truncated, or the causal chain could not be closed).
#[derive(Debug, Default)]
pub struct RunProfile {
    /// Per-op profiles, in the order the records were supplied.
    pub ops: Vec<OpProfile>,
    /// Records whose critical path could not be reconstructed.
    pub skipped: u64,
}

impl RunProfile {
    /// Segment totals across all profiled ops.
    pub fn totals(&self) -> Segments {
        let mut t = Segments::default();
        for op in &self.ops {
            t.ops += 1;
            t.latency += op.latency;
            t.transit += op.transit;
            t.queueing += op.queueing;
            t.service += op.service;
            t.stall += op.stall;
            t.off_path_actions += op.off_path_actions;
            t.off_path_queueing += op.off_path_queueing;
        }
        t
    }

    /// Number of ops whose decomposition is not exact.
    pub fn inexact(&self) -> u64 {
        self.ops.iter().filter(|o| !o.exact).count() as u64
    }

    /// Record the per-segment distributions into a [`MetricsRegistry`]:
    /// histograms `cp.latency`, `cp.transit`, `cp.queueing`, `cp.service`,
    /// `cp.stall`, `cp.path_hops`, `cp.offpath_actions`; counters `cp.ops`,
    /// `cp.skipped`, `cp.inexact`.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        for op in &self.ops {
            reg.observe("cp.latency", op.latency);
            reg.observe("cp.transit", op.transit);
            reg.observe("cp.queueing", op.queueing);
            reg.observe("cp.service", op.service);
            reg.observe("cp.stall", op.stall);
            reg.observe("cp.path_hops", op.hops.len() as u64);
            reg.observe("cp.offpath_actions", op.off_path_actions);
        }
        reg.inc("cp.ops", self.ops.len() as u64);
        reg.inc("cp.skipped", self.skipped);
        reg.inc("cp.inexact", self.inexact());
    }

    /// Folded-stack export of the critical paths themselves: one line per
    /// distinct hop chain, frames `proc.kind` joined by `;`, weighted by
    /// the total latency ticks spent on ops taking that path — so the hop
    /// chains that dominate latency dominate the flamegraph.
    pub fn folded_paths(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for op in &self.ops {
            let stack = op
                .hops
                .iter()
                .map(|h| format!("{}.{}", proc_label(h.proc), h.kind))
                .collect::<Vec<_>>()
                .join(";");
            *agg.entry(stack).or_insert(0) += op.latency;
        }
        let mut out = String::new();
        for (stack, weight) in agg {
            out.push_str(&format!("{stack} {weight}\n"));
        }
        out
    }
}

/// Reconstructs critical paths from a trace given the runtime's service
/// model.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    svc: ServiceTimes,
}

impl Profiler {
    /// A profiler for runs executed under `svc`.
    pub fn new(svc: ServiceTimes) -> Self {
        Profiler { svc }
    }

    /// Profile every record of a driven run. `records` supplies
    /// `(span, submitted, completed)` triples; entries are looked up via a
    /// [span index](Trace::span_index) built once.
    pub fn profile_run(
        &self,
        trace: &Trace,
        records: impl IntoIterator<Item = (u64, SimTime, SimTime)>,
    ) -> RunProfile {
        let index = trace.span_index();
        let mut out = RunProfile::default();
        for (span, submitted, completed) in records {
            match self.profile_op(span, index.of_span(span), submitted, completed) {
                Some(p) => out.ops.push(p),
                None => out.skipped += 1,
            }
        }
        out
    }

    /// Profile a [`DriverStats`] result directly (the record id is the span).
    pub fn profile_stats<Op, O>(&self, trace: &Trace, stats: &DriverStats<Op, O>) -> RunProfile {
        self.profile_run(
            trace,
            stats
                .records
                .iter()
                .map(|r| (r.id, r.submitted, r.completed)),
        )
    }

    /// Decompose one operation given its span-attributed entries (in trace
    /// order). Returns `None` when the causal chain cannot be closed — no
    /// reply in the trace, or a link evicted from the ring buffer.
    pub fn profile_op(
        &self,
        span: u64,
        entries: &[&TraceEntry],
        submitted: SimTime,
        completed: SimTime,
    ) -> Option<OpProfile> {
        let output = entries
            .iter()
            .find(|e| e.event == TraceEvent::Output && e.at == completed)
            .or_else(|| entries.iter().find(|e| e.event == TraceEvent::Output))?;

        // Walk backward from the action that emitted the reply: at each step
        // the current action's `from` names the predecessor processor, and
        // the predecessor action is the latest span-attributed action on it
        // that had *completed* by the time this hop arrived.
        let mut chain: Vec<&TraceEntry> = Vec::new();
        let mut cur = *entries
            .iter()
            .rev()
            .find(|e| is_action(e) && e.to == output.from && e.seq < output.seq)?;
        loop {
            chain.push(cur);
            if cur.from.is_external() {
                break;
            }
            let arrival = cur.at.ticks().saturating_sub(cur.wait);
            let (pred, bound) = (cur.from, cur.seq);
            match entries.iter().rev().find(|e| {
                is_action(e)
                    && e.to == pred
                    && e.seq < bound
                    && e.at.ticks() + self.svc.of(e.to) <= arrival
            }) {
                Some(prev) => cur = prev,
                // Chain broken: sender's action predates the retained trace
                // window, or the hop was handed off by an action attributed
                // to another span (cross-span hand-off). Treat the walk as
                // closed here only if the first hop came from outside.
                None => return None,
            }
        }
        chain.reverse();

        let mut exact = true;
        let mut sub = |a: u64, b: u64| {
            a.checked_sub(b).unwrap_or_else(|| {
                exact = false;
                0
            })
        };
        let mut hops = Vec::with_capacity(chain.len());
        let mut prev_end = submitted.ticks();
        for e in &chain {
            let service = self.svc.of(e.to);
            let arrival = sub(e.at.ticks(), e.wait);
            let transit = sub(arrival, prev_end);
            hops.push(Hop {
                proc: e.to,
                event: e.event,
                kind: e.kind,
                transit,
                queueing: e.wait,
                service,
            });
            prev_end = e.at.ticks() + service;
        }
        let stall = sub(completed.ticks(), prev_end);

        let on_path = |seq: u64| chain.iter().any(|e| e.seq == seq);
        let mut off_actions = 0u64;
        let mut off_queueing = 0u64;
        let mut off_service = 0u64;
        let mut lazy_tail = 0u64;
        let mut faults = 0u64;
        for e in entries {
            match e.event {
                TraceEvent::Deliver | TraceEvent::Timer if !on_path(e.seq) => {
                    off_actions += 1;
                    off_queueing += e.wait;
                    let svc = self.svc.of(e.to);
                    off_service += svc;
                    lazy_tail =
                        lazy_tail.max((e.at.ticks() + svc).saturating_sub(completed.ticks()));
                }
                TraceEvent::Drop | TraceEvent::Duplicate => faults += 1,
                _ => {}
            }
        }

        let (transit, queueing, service) = hops.iter().fold((0, 0, 0), |(t, q, s), h| {
            (t + h.transit, q + h.queueing, s + h.service)
        });
        let latency = completed - submitted;
        let profile = OpProfile {
            span,
            latency,
            transit,
            queueing,
            service,
            stall,
            exact: exact && transit + queueing + service + stall == latency,
            hops,
            off_path_actions: off_actions,
            off_path_queueing: off_queueing,
            off_path_service: off_service,
            lazy_tail,
            faults,
        };
        Some(profile)
    }
}

fn is_action(e: &TraceEntry) -> bool {
    matches!(e.event, TraceEvent::Deliver | TraceEvent::Timer)
}

fn proc_label(p: ProcId) -> String {
    if p.is_external() {
        "ext".to_string()
    } else {
        format!("P{}", p.0)
    }
}

/// Folded-stack export of the whole trace: one `proc;event;kind count` line
/// per distinct combination (flamegraph-compatible), counting occurrences.
/// The acting processor is `to` for deliveries/timers and `from` for
/// outputs; fault events stick with the intended recipient.
pub fn folded_events(trace: &Trace) -> String {
    fold_by(trace, |_| 1)
}

/// Folded-stack export weighted by queueing: each `proc;event;kind` line
/// carries the total ticks deliveries of that kind waited for that
/// processor's node manager. Zero-weight combinations are omitted — the
/// export directly names the hot (queue-building) processors.
pub fn folded_waits(trace: &Trace) -> String {
    fold_by(trace, |e| e.wait)
}

fn fold_by(trace: &Trace, weight: impl Fn(&TraceEntry) -> u64) -> String {
    let mut agg: BTreeMap<(String, &'static str, &'static str), u64> = BTreeMap::new();
    for e in trace.iter() {
        let w = weight(e);
        if w == 0 {
            continue;
        }
        let actor = if e.event == TraceEvent::Output {
            e.from
        } else {
            e.to
        };
        *agg.entry((proc_label(actor), e.event.as_str(), e.kind))
            .or_insert(0) += w;
    }
    let mut out = String::new();
    for ((proc, event, kind), w) in agg {
        out.push_str(&format!("{proc};{event};{kind} {w}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{ClientProtocol, Completion, Driver, NoScan};
    use crate::{Context, Payload, Process, SimConfig, Simulation};

    fn entry(
        at: u64,
        from: ProcId,
        to: ProcId,
        event: TraceEvent,
        kind: &'static str,
        wait: u64,
    ) -> TraceEntry {
        TraceEntry {
            seq: 0,
            at: SimTime(at),
            from,
            to,
            event,
            kind,
            span: Some(1),
            redelivery: false,
            wait,
            detail: String::new(),
            deltas: Vec::new(),
        }
    }

    /// Hand-built three-hop chain with known arithmetic:
    /// submit t=0; arrive P0 t=5 (transit 5), service 4, depart 9;
    /// arrive P1 t=15 but waited 3 (sent arrival 12 → transit 3), service 4,
    /// depart 19; reply output at 19+4=23... built explicitly below.
    #[test]
    fn hand_built_chain_decomposes_exactly() {
        let mut t = Trace::with_capacity(16);
        t.record(entry(
            5,
            ProcId::EXTERNAL,
            ProcId(0),
            TraceEvent::Deliver,
            "client",
            0,
        ));
        // P0 departs at 9; wire 3 ticks → raw arrival 12; waited 3 → ran 15.
        t.record(entry(
            15,
            ProcId(0),
            ProcId(1),
            TraceEvent::Deliver,
            "descend",
            3,
        ));
        // P1 departs at 19; output stamped at departure.
        t.record(entry(
            19,
            ProcId(1),
            ProcId::EXTERNAL,
            TraceEvent::Output,
            "done",
            0,
        ));
        // An off-path lazy action the op triggered, running past completion.
        t.record(entry(
            30,
            ProcId(1),
            ProcId(2),
            TraceEvent::Deliver,
            "relay",
            2,
        ));

        let profiler = Profiler::new(ServiceTimes::uniform(4));
        let entries: Vec<&TraceEntry> = t.iter().collect();
        let p = profiler
            .profile_op(1, &entries, SimTime(0), SimTime(19))
            .expect("chain closes");
        assert!(p.exact, "clean chain is exact: {p:?}");
        assert_eq!(p.latency, 19);
        assert_eq!(p.hops.len(), 2);
        // transit: 5 (inject→P0) + 3 (P0 depart 9 → raw arrival 12) = 8.
        assert_eq!(p.transit, 8);
        assert_eq!(p.queueing, 3);
        assert_eq!(p.service, 8);
        // P1 departs at 15+4=19 == completion: no stall.
        assert_eq!(p.stall, 0);
        assert_eq!(p.segments_sum(), p.latency);
        assert_eq!(p.off_path_actions, 1);
        assert_eq!(p.off_path_queueing, 2);
        // Off-path action ends at 30+4=34, 15 ticks past completion.
        assert_eq!(p.lazy_tail, 15);
    }

    /// A reply emitted later than the op's last own action shows up as
    /// stall — the blocked-op (sync split / lock wait) shape.
    #[test]
    fn late_reply_is_attributed_to_stall() {
        let mut t = Trace::with_capacity(16);
        t.record(entry(
            5,
            ProcId::EXTERNAL,
            ProcId(0),
            TraceEvent::Deliver,
            "client",
            0,
        ));
        // The op's own work ends at 5+4=9, but the reply (triggered by some
        // other span's action unblocking it) only departs at 40.
        t.record(entry(
            40,
            ProcId(0),
            ProcId::EXTERNAL,
            TraceEvent::Output,
            "done",
            0,
        ));
        let profiler = Profiler::new(ServiceTimes::uniform(4));
        let entries: Vec<&TraceEntry> = t.iter().collect();
        let p = profiler
            .profile_op(1, &entries, SimTime(0), SimTime(40))
            .expect("chain closes");
        assert!(p.exact);
        assert_eq!(p.transit, 5);
        assert_eq!(p.service, 4);
        assert_eq!(p.stall, 31);
        assert_eq!(p.segments_sum(), 40);
    }

    #[test]
    fn missing_output_or_broken_chain_is_skipped() {
        let profiler = Profiler::new(ServiceTimes::uniform(0));
        assert!(profiler
            .profile_op(1, &[], SimTime(0), SimTime(9))
            .is_none());
        // Output present but its emitting action evicted from the ring.
        let mut t = Trace::with_capacity(4);
        t.record(entry(
            19,
            ProcId(1),
            ProcId::EXTERNAL,
            TraceEvent::Output,
            "done",
            0,
        ));
        let entries: Vec<&TraceEntry> = t.iter().collect();
        assert!(profiler
            .profile_op(1, &entries, SimTime(0), SimTime(19))
            .is_none());
    }

    #[test]
    fn service_overrides_shape_the_decomposition() {
        let svc = ServiceTimes::uniform(2).with_override(ProcId(1), 7);
        assert_eq!(svc.of(ProcId(0)), 2);
        assert_eq!(svc.of(ProcId(1)), 7);
        assert_eq!(svc.of(ProcId::EXTERNAL), 0);
    }

    // -- end-to-end: drive a real simulated workload and assert exactness --

    #[derive(Clone, Debug)]
    enum TMsg {
        Req { id: u64, hop: u32 },
        Done { id: u64 },
    }
    impl Payload for TMsg {
        fn kind(&self) -> &'static str {
            match self {
                TMsg::Req { .. } => "req",
                TMsg::Done { .. } => "done",
            }
        }
        fn span(&self) -> Option<u64> {
            match self {
                TMsg::Req { id, .. } | TMsg::Done { id } => Some(*id),
            }
        }
    }

    /// Forwards each request around the ring `hops` times, then replies.
    struct Relay {
        n: u32,
        hops: u32,
    }
    impl Process for Relay {
        type Msg = TMsg;
        fn on_message(&mut self, ctx: &mut Context<'_, TMsg>, _from: ProcId, msg: TMsg) {
            match msg {
                TMsg::Req { id, hop } if hop < self.hops => {
                    let next = ProcId((ctx.me().0 + 1) % self.n);
                    ctx.send(next, TMsg::Req { id, hop: hop + 1 });
                }
                TMsg::Req { id, .. } => ctx.send(ProcId::EXTERNAL, TMsg::Done { id }),
                TMsg::Done { .. } => {}
            }
        }
    }

    enum RelayProtocol {}
    impl ClientProtocol for RelayProtocol {
        type Msg = TMsg;
        type Op = ProcId;
        type Outcome = ();
        type Scan = NoScan;
        type ScanResult = ();
        fn origin(op: &ProcId) -> ProcId {
            *op
        }
        fn request(id: u64, _op: &ProcId) -> TMsg {
            TMsg::Req { id, hop: 0 }
        }
        fn scan_origin(scan: &NoScan) -> ProcId {
            match *scan {}
        }
        fn scan_request(_id: u64, scan: &NoScan) -> TMsg {
            match *scan {}
        }
        fn parse(msg: TMsg) -> Option<Completion<(), ()>> {
            match msg {
                TMsg::Done { id } => Some(Completion::Op { id, outcome: () }),
                _ => None,
            }
        }
    }

    /// Acceptance: on a real contended run (jitter + service times +
    /// closed-loop concurrency), every op's critical-path segments sum to
    /// its measured latency, exactly.
    #[test]
    fn segments_sum_to_latency_on_a_real_run() {
        let mut cfg = SimConfig::jittery(42, 2, 25);
        cfg.service_time = 4;
        cfg.service_overrides = vec![(ProcId(2), 11)];
        cfg.trace_capacity = 1 << 16;
        let mut sim = Simulation::new(cfg, (0..4).map(|_| Relay { n: 4, hops: 6 }).collect());
        let mut driver: Driver<RelayProtocol> = Driver::new();
        let ops: Vec<ProcId> = (0..120).map(|i| ProcId(i % 4)).collect();
        let stats = driver.run_closed_loop(&mut sim, &ops, 3);
        assert_eq!(stats.records.len(), 120);

        let svc = ServiceTimes::uniform(4).with_override(ProcId(2), 11);
        let profile = Profiler::new(svc).profile_stats(sim.trace(), &stats);
        assert_eq!(profile.skipped, 0, "every chain closes");
        assert_eq!(profile.ops.len(), 120);
        for op in &profile.ops {
            assert!(op.exact, "span {} inexact: {op:?}", op.span);
            assert_eq!(
                op.segments_sum(),
                op.latency,
                "span {} segments don't telescope",
                op.span
            );
            assert_eq!(op.hops.len(), 7, "6 forwards + the initial delivery");
            assert_eq!(op.stall, 0, "relay ring never blocks a reply");
        }
        let totals = profile.totals();
        assert_eq!(
            totals.latency,
            totals.transit + totals.queueing + totals.service + totals.stall
        );
        assert!(totals.queueing > 0, "concurrency 3 must queue somewhere");
        let degraded_q: u64 = profile
            .ops
            .iter()
            .flat_map(|o| &o.hops)
            .filter(|h| h.proc == ProcId(2))
            .map(|h| h.queueing)
            .sum();
        assert!(degraded_q > 0, "the slow node manager builds a queue");

        // Registry aggregation and folded exports stay consistent.
        let mut reg = MetricsRegistry::new();
        profile.record_into(&mut reg);
        assert_eq!(reg.counter("cp.ops"), 120);
        assert_eq!(reg.counter("cp.inexact"), 0);
        assert_eq!(reg.histogram("cp.latency").unwrap().count(), 120);
        let folded = profile.folded_paths();
        assert!(!folded.is_empty());
        let weight_sum: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(
            weight_sum, totals.latency,
            "folded weights conserve latency"
        );
    }

    #[test]
    fn folded_event_export_shape() {
        let mut t = Trace::with_capacity(16);
        t.record(entry(
            5,
            ProcId::EXTERNAL,
            ProcId(0),
            TraceEvent::Deliver,
            "client",
            0,
        ));
        t.record(entry(
            8,
            ProcId::EXTERNAL,
            ProcId(0),
            TraceEvent::Deliver,
            "client",
            2,
        ));
        t.record(entry(
            19,
            ProcId(1),
            ProcId::EXTERNAL,
            TraceEvent::Output,
            "done",
            0,
        ));
        let events = folded_events(&t);
        assert!(events.contains("P0;deliver;client 2"));
        assert!(events.contains("P1;output;done 1"));
        let waits = folded_waits(&t);
        assert_eq!(waits, "P0;deliver;client 2\n", "only nonzero waits appear");
    }
}
