//! Schedule control: letting an external controller pick which pending
//! event fires next.
//!
//! The default simulator fires events in virtual-time order, so one seed
//! yields exactly one interleaving — the one the latency model happens to
//! produce. A [`Scheduler`] installed via [`Simulation::set_scheduler`]
//! replaces that policy: before every step the simulator computes the set of
//! *enabled* events and asks the controller which one fires next, turning
//! the same workload into an explorable space of legal interleavings.
//!
//! ## Enabled events
//!
//! Not every pending event is a legal next step: the network guarantees
//! FIFO delivery per `(src, dst)` channel, and a crash must precede its own
//! restart. The simulator therefore groups pending events into classes —
//! deliveries by channel, timers by target processor, crash/restart controls
//! by target processor — and exposes only the oldest (lowest-sequence) event
//! of each class. Picking any enabled event is then schedule-legal by
//! construction: a message can be delayed arbitrarily long, but never
//! overtaken by a later message on its own channel.
//!
//! Virtual time degenerates to causal order under a controller: the chosen
//! event fires at `max(now, at)`, so latencies stop mattering and the
//! schedule-choice sequence alone determines the run. That is exactly what
//! makes a recorded choice string a complete, replayable schedule.
//!
//! [`Simulation::set_scheduler`]: crate::Simulation::set_scheduler

use crate::{ProcId, SimTime};

/// What sort of event a [`Choice`] would fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChoiceKind {
    /// A message delivery (the head of one `(src, dst)` channel).
    Deliver,
    /// A timer firing on the target processor.
    Timer,
    /// A fault-plan control event (crash or restart) on the target.
    Control,
}

/// One enabled event, as presented to a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    /// Global sequence number of the underlying event — unique, and totally
    /// ordering the enabled set (choices are presented sorted by it).
    pub seq: u64,
    /// The virtual time the latency model had scheduled this event for.
    pub at: SimTime,
    /// Target processor.
    pub to: ProcId,
    /// Sending processor for deliveries ([`ProcId::EXTERNAL`] for injected
    /// client messages); `None` for timers and controls.
    pub from: Option<ProcId>,
    /// What firing this choice does.
    pub kind: ChoiceKind,
    /// Static label of the underlying event: the payload's
    /// [`Payload::kind`](crate::Payload::kind) for deliveries (the victim's
    /// for tombstones), `"timer"` for timers, `"crash"`/`"restart"` for
    /// controls. This is the hook the model checker's independence relation
    /// keys on — two deliveries to the same processor may still commute if
    /// the §4.1 taxonomy says their kinds do.
    pub label: &'static str,
}

impl Choice {
    /// Is this the head of a message channel (as opposed to a timer or a
    /// fault control)?
    pub fn is_deliver(self) -> bool {
        self.kind == ChoiceKind::Deliver
    }
}

/// A schedule controller: picks which enabled event the simulator fires
/// next.
///
/// `choose` is called once per step with the enabled set (never empty,
/// sorted by `seq` — index 0 is the oldest enabled event). The return value
/// is an index into `enabled`;
/// out-of-range values are clamped to the last entry, so a replayed choice
/// string recorded against a slightly different run still yields a legal
/// (if different) schedule rather than a panic.
pub trait Scheduler {
    /// Pick the next event to fire.
    fn choose(&mut self, now: SimTime, enabled: &[Choice]) -> usize;

    /// Observation hook: called after the chosen event fired and all its
    /// immediate effects (sends, timer arms) were scheduled. `created` is
    /// the half-open range of event sequence numbers the firing allocated —
    /// the causal "this step created those events" edge DPOR's
    /// happens-before relation is built from. Default: ignore.
    fn fired(&mut self, chosen: &Choice, created: std::ops::Range<u64>) {
        let _ = (chosen, created);
    }
}

/// The identity controller: always picks the lowest-sequence enabled event.
/// Useful as a base case and for exercising the controlled step path itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn choose(&mut self, _now: SimTime, _enabled: &[Choice]) -> usize {
        0
    }
}
