//! The discrete-event simulator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::context::{Context, Effect};
use crate::event::{Event, EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::health::{Alert, HealthConfig, HealthMonitor};
use crate::obs::{metric_deltas, Sampler};
use crate::runtime::{Poll, QuiesceError, Runtime};
use crate::schedule::Scheduler;
use crate::trace::{TraceEntry, TraceEvent};
use crate::{LatencyModel, NetStats, Obs, Payload, ProcId, ProcSample, Process, SimTime, Trace};

/// Configuration of a [`Simulation`] run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Latency model for message deliveries.
    pub latency: LatencyModel,
    /// RNG seed; two runs with equal config, processes, and injections are
    /// identical event-for-event.
    pub seed: u64,
    /// Retain a causal trace of at most this many runtime events — a ring
    /// buffer keeping the most recent (0 = no tracing).
    pub trace_capacity: usize,
    /// Snapshot each processor's [`Process::metrics`] counters at most every
    /// this many virtual ticks, building the per-proc time series exported
    /// via [`Simulation::take_obs`] (0 = no sampling).
    pub sample_interval: u64,
    /// Per-action service time: each processor is a single node manager
    /// (the paper's model), so actions on one processor execute at most
    /// every `service_time` ticks; deliveries to a busy processor wait,
    /// and everything an action sends departs when the action *completes*
    /// (`arrival + service`), so a hop's service shows up in downstream
    /// latency. 0 disables the model (infinitely fast processors).
    pub service_time: u64,
    /// Per-processor overrides of `service_time`, as `(proc, ticks)` pairs
    /// — model a degraded node manager (E17's slow replica) without
    /// touching the network latency model. An override of 0 makes that
    /// processor infinitely fast even when the base is nonzero.
    pub service_overrides: Vec<(ProcId, u64)>,
    /// Abort the run after this many delivered events (runaway protection).
    pub max_events: u64,
    /// Abort the run past this virtual time.
    pub max_time: SimTime,
    /// Fault schedule. The default ([`FaultPlan::none`]) is the paper's
    /// reliable network; an inactive plan adds no RNG draws and no events,
    /// so fault-free runs are bit-identical to the pre-fault simulator.
    pub faults: FaultPlan,
    /// Online health watchdogs evaluated at each sample boundary (needs
    /// `sample_interval > 0` to ever fire; disabled by default, in which
    /// case no monitor state is even allocated).
    pub health: HealthConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::default(),
            seed: 0xDB7EE,
            trace_capacity: 0,
            sample_interval: 0,
            service_time: 0,
            service_overrides: Vec::new(),
            max_events: 100_000_000,
            max_time: SimTime(u64::MAX),
            faults: FaultPlan::none(),
            health: HealthConfig::default(),
        }
    }
}

impl SimConfig {
    /// Default config with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// Default config with jittery remote latency in `[min, max]` and the
    /// given seed — the setup used by the race experiments.
    pub fn jittery(seed: u64, min: u64, max: u64) -> Self {
        SimConfig {
            latency: LatencyModel::jittery(min, max),
            seed,
            ..Default::default()
        }
    }
}

/// Why [`Simulation::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No events remain: the computation terminated (the paper's
    /// "end of the computation", at which copy convergence must hold).
    Quiescent,
    /// `max_events` was hit.
    EventLimit,
    /// `max_time` was passed.
    TimeLimit,
}

/// Per-channel FIFO watermarks, stored flat: `internal[src*n + dst]` for
/// in-cluster channels and `external[to]` for injected client traffic. The
/// zero-initialized vectors are lazily paged by the allocator, so the
/// quadratic capacity only materializes for channel pairs actually used.
struct ChannelClock {
    n: usize,
    internal: Vec<SimTime>,
    external: Vec<SimTime>,
}

impl ChannelClock {
    fn new(n: usize) -> Self {
        ChannelClock {
            n,
            internal: vec![SimTime::ZERO; n * n],
            external: vec![SimTime::ZERO; n],
        }
    }

    #[inline]
    fn internal_mut(&mut self, src: ProcId, dst: ProcId) -> &mut SimTime {
        &mut self.internal[src.index() * self.n + dst.index()]
    }

    #[inline]
    fn external_mut(&mut self, dst: ProcId) -> &mut SimTime {
        &mut self.external[dst.index()]
    }
}

/// A deterministic discrete-event simulation over a set of processes.
///
/// Channel semantics match the paper's §4 assumptions: reliable, exactly-once,
/// FIFO per `(src, dst)` pair. Different channels race freely (subject to the
/// latency model), which is the behaviour the lazy-update protocols must
/// tolerate.
pub struct Simulation<P: Process> {
    /// Boxed so the hot path's take/put around each action moves 8 bytes
    /// instead of memcpying a potentially kilobyte-sized process struct.
    procs: Vec<Option<Box<P>>>,
    queue: EventQueue<P::Msg>,
    now: SimTime,
    rng: SmallRng,
    latency: LatencyModel,
    /// Per-channel watermark that enforces FIFO even under jitter.
    /// Flattened to `internal[src*n + dst]` (plus one row for injected
    /// external traffic): one indexed access per send on the hot path, and
    /// the zero-filled allocation is lazily paged, so untouched channel
    /// pairs cost nothing even at large `n`.
    channel_clock: ChannelClock,
    /// Per-processor node-manager busy horizon (service-time model).
    proc_busy: Vec<SimTime>,
    /// Per-processor service time (base + overrides); all zero disables
    /// the model.
    service: Vec<u64>,
    stats: NetStats,
    trace: Trace,
    trace_cap: usize,
    sampler: Sampler,
    series: Vec<ProcSample>,
    /// Online watchdogs (`None` unless `config.health.enabled`) and the
    /// alerts they have fired so far.
    health: Option<HealthMonitor>,
    alerts: Vec<Alert>,
    outputs: Vec<(SimTime, ProcId, P::Msg)>,
    effects_buf: Vec<Effect<P::Msg>>,
    delivered: u64,
    max_events: u64,
    max_time: SimTime,
    /// Fault schedule and its dedicated RNG stream. Drawing fault decisions
    /// from a separate generator keeps the main RNG sequence — and therefore
    /// every fault-free run — untouched by this machinery.
    faults: FaultPlan,
    fault_rng: SmallRng,
    faults_active: bool,
    /// Per-processor liveness (fault model); all `false` without faults.
    down: Vec<bool>,
    /// Incremented on each crash; events scheduled under an older epoch are
    /// the crashed incarnation's volatile queue and are discarded.
    crash_epoch: Vec<u32>,
    /// Optional schedule controller (see [`crate::schedule`]). When
    /// installed, each step fires the enabled event the controller picks
    /// instead of the earliest-time event.
    scheduler: Option<Box<dyn Scheduler>>,
}

impl<P: Process> Simulation<P> {
    /// Build a simulation over `procs` (assigned `ProcId(0..n)`) and run each
    /// process's `on_start` hook.
    pub fn new(config: SimConfig, procs: Vec<P>) -> Self {
        let n = procs.len();
        let faults_active = config.faults.is_active();
        let mut service = vec![config.service_time; n];
        for &(p, s) in &config.service_overrides {
            assert!(p.index() < n, "service override names unknown processor");
            service[p.index()] = s;
        }
        let mut sim = Simulation {
            procs: procs.into_iter().map(|p| Some(Box::new(p))).collect(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(config.seed),
            latency: config.latency,
            channel_clock: ChannelClock::new(n),
            proc_busy: vec![SimTime::ZERO; n],
            service,
            stats: NetStats::new(n),
            trace: Trace::with_capacity(config.trace_capacity),
            trace_cap: config.trace_capacity,
            sampler: Sampler::new(config.sample_interval, n),
            series: Vec::new(),
            health: config
                .health
                .enabled
                .then(|| HealthMonitor::new(config.health, n)),
            alerts: Vec::new(),
            outputs: Vec::new(),
            effects_buf: Vec::new(),
            delivered: 0,
            max_events: config.max_events,
            max_time: config.max_time,
            // Distinct stream per run seed; the constant only decorrelates it
            // from the main RNG, which sees the identical seed.
            fault_rng: SmallRng::seed_from_u64(config.seed ^ 0xFA017),
            faults: config.faults,
            faults_active,
            down: vec![false; n],
            crash_epoch: vec![0; n],
            scheduler: None,
        };
        // Schedule the crash/restart control events up front; an empty plan
        // pushes nothing, keeping the event sequence of fault-free runs
        // byte-identical.
        for c in sim.faults.crashes.clone() {
            assert!(c.proc.index() < n, "crash plan names unknown processor");
            sim.queue.push(c.at, c.proc, EventKind::Crash);
            if let Some(r) = c.restart_at {
                sim.queue.push(r, c.proc, EventKind::Restart);
            }
        }
        for i in 0..n {
            sim.with_proc(ProcId(i as u32), |p, ctx| p.on_start(ctx));
        }
        sim
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The causal trace (empty unless `trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The metrics time series sampled so far (empty unless
    /// `sample_interval > 0`).
    pub fn series(&self) -> &[ProcSample] {
        &self.series
    }

    /// Take the observability data (trace + series + alerts), leaving fresh
    /// buffers with the same configuration.
    pub fn take_obs(&mut self) -> Obs {
        Obs {
            trace: std::mem::replace(&mut self.trace, Trace::with_capacity(self.trace_cap)),
            series: std::mem::take(&mut self.series),
            alerts: std::mem::take(&mut self.alerts),
        }
    }

    /// Watchdog alerts fired so far (empty unless health monitoring and
    /// sampling are both enabled).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Messages sent to [`ProcId::EXTERNAL`], with their send times.
    pub fn outputs(&self) -> &[(SimTime, ProcId, P::Msg)] {
        &self.outputs
    }

    /// Remove and return all collected outputs.
    pub fn drain_outputs(&mut self) -> Vec<(SimTime, ProcId, P::Msg)> {
        std::mem::take(&mut self.outputs)
    }

    /// Count of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Immutable access to a process, for end-of-run inspection.
    pub fn proc(&self, id: ProcId) -> &P {
        self.procs[id.index()]
            .as_deref()
            .expect("process is resident between events")
    }

    /// Mutable access to a process (e.g. to install checkers between phases).
    pub fn proc_mut(&mut self, id: ProcId) -> &mut P {
        self.procs[id.index()]
            .as_deref_mut()
            .expect("process is resident between events")
    }

    /// Iterate over all processes.
    pub fn procs(&self) -> impl Iterator<Item = (ProcId, &P)> {
        self.procs.iter().enumerate().map(|(i, p)| {
            (
                ProcId(i as u32),
                p.as_deref().expect("process is resident between events"),
            )
        })
    }

    /// Inject a message from [`ProcId::EXTERNAL`], delivered at the current
    /// time plus one local tick.
    pub fn inject(&mut self, to: ProcId, msg: P::Msg) {
        self.inject_at(self.now + 1, to, msg);
    }

    /// Inject a message from [`ProcId::EXTERNAL`] for delivery at `at`
    /// (clamped to be FIFO with earlier injections to the same processor).
    pub fn inject_at(&mut self, at: SimTime, to: ProcId, msg: P::Msg) {
        let at = at.max(self.now);
        let watermark = self.channel_clock.external_mut(to);
        let at = at.max(*watermark);
        *watermark = at;
        self.stats.record_send(
            msg.kind(),
            ProcId::EXTERNAL.index().min(self.procs.len()),
            Some(to.index()),
            msg.size_hint(),
            false,
        );
        let span = msg.span();
        self.queue.push_epoch(
            at,
            to,
            self.crash_epoch[to.index()],
            EventKind::Deliver {
                from: ProcId::EXTERNAL,
                msg,
                span,
            },
        );
    }

    /// Is this processor currently crashed under the fault plan?
    pub fn is_down(&self, id: ProcId) -> bool {
        self.down[id.index()]
    }

    /// Has a run limit already been crossed? `None` means the simulation may
    /// keep stepping. Callers that drive [`Simulation::step`] in their own
    /// loop should consult this so `max_events` / `max_time` are not
    /// silently ignored.
    pub fn limit_exceeded(&self) -> Option<RunOutcome> {
        if self.delivered >= self.max_events {
            Some(RunOutcome::EventLimit)
        } else if self.now > self.max_time {
            Some(RunOutcome::TimeLimit)
        } else {
            None
        }
    }

    /// Install a schedule controller; subsequent steps fire the enabled
    /// event it picks instead of the earliest-time event (see
    /// [`crate::schedule`]).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.scheduler = Some(scheduler);
    }

    /// Remove the schedule controller, restoring time-ordered delivery.
    pub fn clear_scheduler(&mut self) -> Option<Box<dyn Scheduler>> {
        self.scheduler.take()
    }

    /// A digest of the simulation's *logical* state, for the model
    /// checker's visited-state pruning: per-process fingerprints (see
    /// [`Process::fingerprint`]), liveness flags, queued event content in
    /// channel order, and undrained outputs. Virtual times and sequence
    /// numbers are excluded throughout — under a schedule controller only
    /// the choice order matters, so two states reached by different
    /// interleavings of commuting steps must collide.
    ///
    /// Returns `None` — pruning disabled — when any process opts out, or
    /// when the fault plan draws from the fault RNG (message loss,
    /// duplication) or consults the clock (partitions): the RNG stream and
    /// timing are not part of the digest, so states could alias unsoundly.
    /// Scripted crashes are fine — their control events are queued up
    /// front and hash like any other pending event.
    pub fn fingerprint(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        if self.faults.drop_prob > 0.0
            || self.faults.dup_prob > 0.0
            || !self.faults.partitions.is_empty()
        {
            return None;
        }
        let mut h = crate::FxHasher::default();
        for p in &self.procs {
            let p = p.as_deref().expect("process is resident between events");
            p.fingerprint()?.hash(&mut h);
        }
        self.down.hash(&mut h);
        self.queue.pending_fingerprint(&mut h);
        for (_, from, msg) in &self.outputs {
            (from.0, format!("{msg:?}")).hash(&mut h);
        }
        Some(h.finish())
    }

    /// Deliver a single event. Returns `false` if the queue was empty.
    ///
    /// Under a schedule controller the step is: compute the enabled set,
    /// let the scheduler pick, fire the pick immediately (clamped to
    /// `max(at, now)` so time stays monotone — the latency model's opinion
    /// of *when* stops mattering, only the choice order does), then report
    /// back via [`Scheduler::fired`] with the range of event sequence
    /// numbers the firing created.
    pub fn step(&mut self) -> bool {
        if self.scheduler.is_none() {
            let Some(event) = self.queue.pop() else {
                return false;
            };
            self.deliver_event(event);
            return true;
        }
        let enabled = self.queue.choices();
        if enabled.is_empty() {
            return false;
        }
        let scheduler = self.scheduler.as_mut().expect("scheduler installed");
        let idx = scheduler.choose(self.now, &enabled).min(enabled.len() - 1);
        let chosen = enabled[idx];
        let mut event = self
            .queue
            .pop_seq(chosen.seq)
            .expect("enabled choices are pending events");
        event.at = event.at.max(self.now);
        let before = self.queue.seq_watermark();
        self.deliver_event(event);
        let after = self.queue.seq_watermark();
        if let Some(s) = self.scheduler.as_mut() {
            s.fired(&chosen, before..after);
        }
        true
    }

    /// The body of [`Simulation::step`] after the event has been popped:
    /// fault drops, the service-time model, and the action dispatch.
    fn deliver_event(&mut self, event: Event<P::Msg>) {
        debug_assert!(event.at >= self.now, "time runs forward");
        // A tombstone is a delivery or timer invalidated *eagerly* at its
        // target's crash (see [`EventQueue::cancel_for`]): the payload is
        // gone, but the victim still fires at its original time as a drop,
        // exactly as the older lazy epoch-check-at-pop produced.
        if let EventKind::Tombstone {
            from,
            kind,
            redelivery,
            span,
            is_timer,
        } = event.kind
        {
            self.now = event.at;
            if is_timer {
                self.stats.faults_mut().timer_dropped += 1;
            } else {
                self.stats.faults_mut().crash_dropped += 1;
                if self.trace.enabled() {
                    self.trace.record(TraceEntry {
                        seq: 0,
                        at: self.now,
                        from,
                        to: event.to,
                        event: TraceEvent::Drop,
                        kind,
                        span,
                        redelivery,
                        wait: event.wait,
                        detail: "crash".into(),
                        deltas: Vec::new(),
                    });
                }
            }
            self.stats.observe_inflight(self.queue.len());
            return;
        }
        let is_control = matches!(event.kind, EventKind::Crash | EventKind::Restart);
        // Fault model: a message sent to a processor *after* its crash
        // carries the current epoch (so it was not tombstoned) and is lost
        // only if it arrives while the target is still down. Stale epochs
        // cannot reach here — the crash already tombstoned them — which is
        // what the epoch field's backstop assert checks.
        if self.faults_active && !is_control {
            let idx = event.to.index();
            debug_assert_eq!(
                event.epoch, self.crash_epoch[idx],
                "stale-epoch events are tombstoned at the crash"
            );
            if self.down[idx] {
                self.now = event.at;
                match &event.kind {
                    EventKind::Deliver { from, msg, span } => {
                        self.stats.faults_mut().crash_dropped += 1;
                        if self.trace.enabled() {
                            self.trace.record(TraceEntry {
                                seq: 0,
                                at: self.now,
                                from: *from,
                                to: event.to,
                                event: TraceEvent::Drop,
                                kind: msg.kind(),
                                span: *span,
                                redelivery: msg.redelivery(),
                                wait: event.wait,
                                detail: "crash".into(),
                                deltas: Vec::new(),
                            });
                        }
                    }
                    EventKind::Timer { .. } => self.stats.faults_mut().timer_dropped += 1,
                    _ => unreachable!(),
                }
                self.stats.observe_inflight(self.queue.len());
                return;
            }
        }
        // Service-time model: a processor executes one action at a time.
        // If the target is still busy, requeue the event at its free time
        // (requeue order follows pop order, so per-channel FIFO holds).
        // Crash/restart are physical faults, not actions: they bypass the
        // node manager's queue.
        let svc = if is_control {
            0
        } else {
            self.service[event.to.index()]
        };
        if svc > 0 {
            let busy = self.proc_busy[event.to.index()];
            if busy > event.at {
                // Keep the original sequence number: a requeued event must
                // not be overtaken by same-channel events sent after it.
                self.now = event.at;
                let mut event = event;
                event.wait += busy.ticks() - event.at.ticks();
                self.queue.requeue(busy, event);
                return;
            }
            self.proc_busy[event.to.index()] = event.at + svc;
        }
        self.now = event.at;
        self.delivered += 1;
        let to = event.to;
        match event.kind {
            EventKind::Deliver { from, msg, span } => {
                let pending = self.trace.enabled().then(|| PendingTrace {
                    event: TraceEvent::Deliver,
                    from,
                    kind: msg.kind(),
                    redelivery: msg.redelivery(),
                    wait: event.wait,
                    detail: format!("{msg:?}"),
                });
                self.run_action(to, span, svc, pending, |p, ctx| {
                    p.on_message(ctx, from, msg)
                });
            }
            EventKind::Timer { token } => {
                let pending = self.trace.enabled().then(|| PendingTrace {
                    event: TraceEvent::Timer,
                    from: to,
                    kind: "timer",
                    redelivery: false,
                    wait: event.wait,
                    detail: format!("token={token}"),
                });
                self.run_action(to, None, svc, pending, |p, ctx| p.on_timer(ctx, token));
            }
            EventKind::Crash => {
                self.down[to.index()] = true;
                self.crash_epoch[to.index()] += 1;
                // Eager crash invalidation: everything in flight to the
                // dead incarnation becomes a tombstone now (payloads freed
                // at the crash, drops still fire at the original times).
                self.queue.cancel_for(to);
                self.stats.faults_mut().crashes += 1;
                if self.trace.enabled() {
                    self.trace.record(TraceEntry {
                        seq: 0,
                        at: self.now,
                        from: to,
                        to,
                        event: TraceEvent::Crash,
                        kind: "fault.crash",
                        span: None,
                        redelivery: false,
                        wait: 0,
                        detail: String::new(),
                        deltas: Vec::new(),
                    });
                }
            }
            EventKind::Restart => {
                self.down[to.index()] = false;
                // The new incarnation's node manager starts idle.
                self.proc_busy[to.index()] = self.now;
                self.stats.faults_mut().restarts += 1;
                let pending = self.trace.enabled().then(|| PendingTrace {
                    event: TraceEvent::Restart,
                    from: to,
                    kind: "fault.restart",
                    redelivery: false,
                    wait: 0,
                    detail: String::new(),
                });
                self.run_action(to, None, 0, pending, |p, ctx| p.on_restart(ctx));
            }
            EventKind::Tombstone { .. } => unreachable!("handled above"),
        }
        self.stats.observe_inflight(self.queue.len());
    }

    /// Deliver the next event via [`Simulation::step`], then opportunistically
    /// drain the same-tick burst behind it: while the heap's top is an
    /// ordinary delivery or timer at the same instant to a zero-service
    /// processor, fire it without returning to the driver loop, holding each
    /// target process out of its slot across consecutive actions (one
    /// dispatch per burst, not one per event). The batch path is taken only
    /// when it is provably behavior-identical to single-stepping: no
    /// scheduler (choice points must surface), no active faults (drop and
    /// liveness checks must run), and it stops at any output (the driver
    /// polls between steps), at the run limits, and at `bound` (a
    /// `run_until`/`poll` horizon). Events still fire in exact `(at, seq)`
    /// order — the burst only skips redundant loop overhead, never reorders.
    ///
    /// Returns `false` if the queue was empty.
    fn step_burst(&mut self, bound: Option<SimTime>) -> bool {
        if !self.step() {
            return false;
        }
        if self.scheduler.is_some() || self.faults_active {
            return true;
        }
        let at = self.now;
        let mut held: Option<(ProcId, Box<P>)> = None;
        loop {
            if !self.outputs.is_empty()
                || self.delivered >= self.max_events
                || self.now > self.max_time
                || bound.is_some_and(|u| self.now >= u)
            {
                break;
            }
            let Some(to) = self.queue.peek_plain_at(at) else {
                break;
            };
            if self.service[to.index()] != 0 {
                break;
            }
            if held.as_ref().map(|(h, _)| *h) != Some(to) {
                if let Some((h, p)) = held.take() {
                    self.procs[h.index()] = Some(p);
                }
                let p = self.procs[to.index()]
                    .take()
                    .expect("process is resident between events");
                held = Some((to, p));
            }
            let event = self.queue.pop().expect("peeked event is pending");
            self.now = event.at;
            self.delivered += 1;
            let (_, p) = held.as_mut().expect("held above");
            match event.kind {
                EventKind::Deliver { from, msg, span } => {
                    let pending = self.trace.enabled().then(|| PendingTrace {
                        event: TraceEvent::Deliver,
                        from,
                        kind: msg.kind(),
                        redelivery: msg.redelivery(),
                        wait: event.wait,
                        detail: format!("{msg:?}"),
                    });
                    self.run_action_on(p, to, span, 0, pending, |p, ctx| {
                        p.on_message(ctx, from, msg)
                    });
                }
                EventKind::Timer { token } => {
                    let pending = self.trace.enabled().then(|| PendingTrace {
                        event: TraceEvent::Timer,
                        from: to,
                        kind: "timer",
                        redelivery: false,
                        wait: event.wait,
                        detail: format!("token={token}"),
                    });
                    self.run_action_on(p, to, None, 0, pending, |p, ctx| p.on_timer(ctx, token));
                }
                _ => unreachable!("peek_plain_at only yields deliveries and timers"),
            }
            self.stats.observe_inflight(self.queue.len());
        }
        if let Some((h, p)) = held.take() {
            self.procs[h.index()] = Some(p);
        }
        true
    }

    /// Run until quiescence or a limit is hit.
    pub fn run(&mut self) -> RunOutcome {
        loop {
            if let Some(outcome) = self.limit_exceeded() {
                return outcome;
            }
            if !self.step_burst(None) {
                return RunOutcome::Quiescent;
            }
        }
    }

    /// Time of the earliest pending event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.next_at()
    }

    /// Move the clock forward to `t` without delivering anything — but never
    /// past a pending event (time must not skip over scheduled work). Used
    /// by deadline-bounded polling to pace open-loop arrivals.
    pub fn advance_to(&mut self, t: SimTime) {
        let bound = self.queue.next_at().map_or(t, |at| at.min(t));
        if bound > self.now {
            self.now = bound;
        }
    }

    /// Tear the simulation down and return the final process states.
    pub fn into_procs(self) -> Vec<P> {
        self.procs
            .into_iter()
            .map(|p| *p.expect("process is resident between events"))
            .collect()
    }

    /// Run until virtual time reaches `until` or the simulation quiesces.
    pub fn run_until(&mut self, until: SimTime) -> RunOutcome {
        loop {
            if self.now >= until {
                return RunOutcome::TimeLimit;
            }
            if !self.step_burst(Some(until)) {
                return RunOutcome::Quiescent;
            }
        }
    }

    fn with_proc(&mut self, id: ProcId, f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>)) {
        self.run_action(id, None, 0, None, f);
    }

    /// Per-processor service time after overrides (0 = infinitely fast).
    pub fn service_of(&self, id: ProcId) -> u64 {
        self.service[id.index()]
    }

    /// Execute one atomic action on `id`: run `f` with a [`Context`] whose
    /// span is `span`, record the trace entry described by `pending` (with
    /// the action's `Process::metrics` deltas), emit a time-series sample if
    /// one is due, then apply the buffered effects — so the action's entry
    /// lands in the trace *before* the entries its sends generate, keeping
    /// the trace causally ordered. Effects depart at `now + service` (the
    /// action's completion under the service-time model): a hop's service
    /// delays everything downstream of it, which is what lets the profiler
    /// decompose op latency exactly.
    fn run_action(
        &mut self,
        id: ProcId,
        span: Option<u64>,
        service: u64,
        pending: Option<PendingTrace>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let mut p = self.procs[id.index()]
            .take()
            .expect("process is resident between events");
        self.run_action_on(&mut p, id, span, service, pending, f);
        self.procs[id.index()] = Some(p);
    }

    /// [`Simulation::run_action`] with the process already taken out of its
    /// slot — the batched path holds one process across a same-tick burst
    /// and calls this once per event. Applying effects here is safe while
    /// the process is out: effects touch the queue, stats, and trace, never
    /// the process table.
    fn run_action_on(
        &mut self,
        p: &mut P,
        id: ProcId,
        span: Option<u64>,
        service: u64,
        pending: Option<PendingTrace>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let before = if pending.is_some() {
            p.metrics()
        } else {
            Vec::new()
        };
        debug_assert!(self.effects_buf.is_empty());
        let mut effects = std::mem::take(&mut self.effects_buf);
        {
            let mut ctx = Context {
                me: id,
                now: self.now,
                effects: &mut effects,
                rng: &mut self.rng,
                span,
            };
            f(p, &mut ctx);
        }
        if let Some(pt) = pending {
            self.trace.record(TraceEntry {
                seq: 0,
                at: self.now,
                from: pt.from,
                to: id,
                event: pt.event,
                kind: pt.kind,
                span,
                redelivery: pt.redelivery,
                wait: pt.wait,
                detail: pt.detail,
                deltas: metric_deltas(&before, &p.metrics()),
            });
        }
        if self.sampler.due(id, self.now) {
            let pairs = p.metrics();
            let mut gauges = p.gauges(self.now);
            // Runtime-level gauge: pending events across the whole cluster
            // (simulator only — the threaded runtime has no global queue).
            gauges.push(("rt.event_queue_depth", self.queue.len() as u64));
            if let Some(mon) = &mut self.health {
                for alert in mon.observe(self.now, id, &pairs, &gauges) {
                    if self.trace.enabled() {
                        self.trace.record(TraceEntry {
                            seq: 0,
                            at: self.now,
                            from: id,
                            to: id,
                            event: TraceEvent::Alert,
                            kind: alert.rule,
                            span: None,
                            redelivery: false,
                            wait: 0,
                            detail: alert.detail(),
                            deltas: Vec::new(),
                        });
                    }
                    self.alerts.push(alert);
                }
            }
            self.series.push(ProcSample {
                at: self.now,
                proc: id,
                pairs,
                gauges,
            });
        }
        let depart = self.now + service;
        for effect in effects.drain(..) {
            self.apply_effect(id, span, depart, effect);
        }
        self.effects_buf = effects;
    }

    fn apply_effect(
        &mut self,
        src: ProcId,
        action_span: Option<u64>,
        depart: SimTime,
        effect: Effect<P::Msg>,
    ) {
        match effect {
            Effect::Send { to, msg } => {
                // Causal span inheritance: a payload that names its operation
                // wins; everything else is attributed to the action that sent
                // it (split rounds, copy installs, relays, replies).
                let span = msg.span().or(action_span);
                if to.is_external() {
                    self.stats
                        .record_send(msg.kind(), src.index(), None, msg.size_hint(), false);
                    if self.trace.enabled() {
                        self.trace.record(TraceEntry {
                            seq: 0,
                            at: depart,
                            from: src,
                            to: ProcId::EXTERNAL,
                            event: TraceEvent::Output,
                            kind: msg.kind(),
                            span,
                            redelivery: false,
                            wait: 0,
                            detail: format!("{msg:?}"),
                            deltas: Vec::new(),
                        });
                    }
                    self.outputs.push((depart, src, msg));
                    return;
                }
                let local = to == src;
                self.stats.record_send(
                    msg.kind(),
                    src.index(),
                    Some(to.index()),
                    msg.size_hint(),
                    local,
                );
                // Fault injection applies to remote internal traffic only: a
                // processor's hand-offs to itself never cross the network.
                // Dropped messages do NOT advance the FIFO watermark, so the
                // survivors still arrive in send order.
                if self.faults_active && !local {
                    if self.faults.severed(src, to, depart) {
                        self.stats.faults_mut().partition_dropped += 1;
                        self.record_fault(
                            src,
                            to,
                            &msg,
                            span,
                            depart,
                            TraceEvent::Drop,
                            "partition",
                        );
                        return;
                    }
                    if self.faults.drop_prob > 0.0 && self.fault_rng.gen_bool(self.faults.drop_prob)
                    {
                        self.stats.faults_mut().dropped += 1;
                        self.record_fault(src, to, &msg, span, depart, TraceEvent::Drop, "loss");
                        return;
                    }
                }
                let latency = self.latency.sample(src, to, &mut self.rng);
                let mut at = depart + latency;
                // Enforce FIFO per channel: never schedule before an earlier
                // message on the same channel.
                let watermark = self.channel_clock.internal_mut(src, to);
                at = at.max(*watermark);
                *watermark = at;
                let wm = *watermark;
                let epoch = self.crash_epoch[to.index()];
                if self.faults_active
                    && !local
                    && self.faults.dup_prob > 0.0
                    && self.fault_rng.gen_bool(self.faults.dup_prob)
                {
                    // The duplicate takes its own latency draw (clamped to
                    // arrive no earlier than the original) but does not
                    // advance the watermark: it may be overtaken, exactly
                    // like a retransmitted packet on a real network.
                    self.stats.faults_mut().duplicated += 1;
                    self.record_fault(src, to, &msg, span, depart, TraceEvent::Duplicate, "dup");
                    self.queue.push_epoch(
                        dup_at(
                            depart,
                            self.latency.sample(src, to, &mut self.fault_rng),
                            wm,
                        ),
                        to,
                        epoch,
                        EventKind::Deliver {
                            from: src,
                            msg: msg.clone(),
                            span,
                        },
                    );
                }
                self.queue.push_epoch(
                    at,
                    to,
                    epoch,
                    EventKind::Deliver {
                        from: src,
                        msg,
                        span,
                    },
                );
            }
            Effect::Timer { delay, token } => {
                self.queue.push_epoch(
                    depart + delay,
                    src,
                    self.crash_epoch[src.index()],
                    EventKind::Timer { token },
                );
            }
            Effect::Mark {
                event,
                kind,
                detail,
            } => {
                if self.trace.enabled() {
                    self.trace.record(TraceEntry {
                        seq: 0,
                        at: depart,
                        from: src,
                        to: src,
                        event,
                        kind,
                        span: action_span,
                        redelivery: false,
                        wait: 0,
                        detail,
                        deltas: Vec::new(),
                    });
                }
            }
        }
    }

    /// Record a fault-injection trace entry (drop, duplicate) at send time.
    #[allow(clippy::too_many_arguments)]
    fn record_fault(
        &mut self,
        from: ProcId,
        to: ProcId,
        msg: &P::Msg,
        span: Option<u64>,
        at: SimTime,
        event: TraceEvent,
        flavor: &str,
    ) {
        if self.trace.enabled() {
            self.trace.record(TraceEntry {
                seq: 0,
                at,
                from,
                to,
                event,
                kind: msg.kind(),
                span,
                redelivery: msg.redelivery(),
                wait: 0,
                detail: flavor.to_string(),
                deltas: Vec::new(),
            });
        }
    }
}

/// Trace-entry ingredients captured before an action runs (the entry itself
/// is completed with the action's metric deltas afterwards).
struct PendingTrace {
    event: TraceEvent,
    from: ProcId,
    kind: &'static str,
    redelivery: bool,
    wait: u64,
    detail: String,
}

/// Arrival time of a duplicated delivery: its own latency draw, clamped so
/// it cannot arrive before the original's channel watermark.
fn dup_at(now: SimTime, latency: u64, watermark: SimTime) -> SimTime {
    (now + latency).max(watermark)
}

impl<P: Process> Simulation<P> {
    /// The [`QuiesceError`] equivalent of a tripped limit, with counters.
    fn limit_error(&self, outcome: RunOutcome) -> QuiesceError {
        match outcome {
            RunOutcome::EventLimit => QuiesceError::EventLimit {
                delivered: self.delivered,
            },
            _ => QuiesceError::TimeLimit { now: self.now },
        }
    }
}

impl<P: Process> Runtime for Simulation<P> {
    type Proc = P;

    fn num_procs(&self) -> usize {
        Simulation::num_procs(self)
    }

    fn now(&self) -> SimTime {
        Simulation::now(self)
    }

    fn inject(&mut self, to: ProcId, msg: P::Msg) {
        Simulation::inject(self, to, msg);
    }

    fn poll(&mut self, deadline: Option<SimTime>) -> Poll {
        loop {
            if !self.outputs.is_empty() {
                return Poll::Outputs;
            }
            if let Some(outcome) = self.limit_exceeded() {
                return Poll::Limit(self.limit_error(outcome));
            }
            match deadline {
                Some(d) => match self.next_event_at() {
                    Some(at) if at < d => {
                        self.step_burst(Some(d));
                    }
                    _ => {
                        self.advance_to(d);
                        return Poll::Deadline;
                    }
                },
                None => {
                    if !self.step_burst(None) {
                        return Poll::Quiescent;
                    }
                }
            }
        }
    }

    fn settle(&mut self) -> Result<(), QuiesceError> {
        loop {
            if let Some(outcome) = self.limit_exceeded() {
                return Err(self.limit_error(outcome));
            }
            if !self.step_burst(None) {
                return Ok(());
            }
        }
    }

    fn drain_outputs(&mut self) -> Vec<(SimTime, ProcId, P::Msg)> {
        Simulation::drain_outputs(self)
    }

    fn take_obs(&mut self) -> Obs {
        Simulation::take_obs(self)
    }

    fn into_procs(self) -> Vec<P> {
        Simulation::into_procs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "ping",
                Msg::Pong(_) => "pong",
            }
        }
    }

    /// Forwards each ping around a ring `hops` times, then reports out.
    struct Ring {
        n: u32,
        hops: u32,
    }

    impl Process for Ring {
        type Msg = Msg;
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcId, msg: Msg) {
            match msg {
                Msg::Ping(h) if h < self.hops => {
                    let next = ProcId((ctx.me().0 + 1) % self.n);
                    ctx.send(next, Msg::Ping(h + 1));
                }
                Msg::Ping(h) => ctx.send(ProcId::EXTERNAL, Msg::Pong(h)),
                Msg::Pong(_) => {}
            }
        }
    }

    #[test]
    fn ring_terminates_and_counts() {
        let procs = (0..4).map(|_| Ring { n: 4, hops: 8 }).collect();
        let mut sim = Simulation::new(SimConfig::seeded(7), procs);
        sim.inject(ProcId(0), Msg::Ping(0));
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(sim.outputs().len(), 1);
        // 1 injected ping + 8 forwards = 9 pings; 1 pong output.
        assert_eq!(sim.stats().kind("ping").total(), 9);
        assert_eq!(sim.stats().kind("pong").total(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let procs = (0..4).map(|_| Ring { n: 4, hops: 50 }).collect();
            let mut sim = Simulation::new(SimConfig::jittery(seed, 2, 30), procs);
            sim.inject(ProcId(0), Msg::Ping(0));
            sim.run();
            (sim.now(), sim.events_delivered())
        };
        assert_eq!(run(11), run(11));
        // Different seeds give different virtual end times under jitter.
        assert_ne!(run(11).0, run(13).0);
    }

    struct Burst;
    impl Process for Burst {
        type Msg = Msg;
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                // Echo sequence numbers back; FIFO says they arrive in order.
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    struct Collector {
        seen: Vec<u32>,
    }
    impl Process for Collector {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for n in 0..100 {
                ctx.send(ProcId(1), Msg::Ping(n));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: ProcId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.seen.push(n);
            }
        }
    }

    enum Either {
        C(Collector),
        B(Burst),
    }
    impl Process for Either {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            match self {
                Either::C(c) => c.on_start(ctx),
                Either::B(_) => {}
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcId, msg: Msg) {
            match self {
                Either::C(c) => c.on_message(ctx, from, msg),
                Either::B(b) => b.on_message(ctx, from, msg),
            }
        }
    }

    #[test]
    fn fifo_preserved_under_jitter() {
        for seed in 0..20 {
            let procs = vec![Either::C(Collector { seen: vec![] }), Either::B(Burst)];
            let mut sim = Simulation::new(SimConfig::jittery(seed, 1, 100), procs);
            sim.run();
            let Either::C(c) = sim.proc(ProcId(0)) else {
                panic!()
            };
            assert_eq!(c.seen, (0..100).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn scheduler_controls_order_but_preserves_channel_fifo() {
        use crate::schedule::{Choice, Scheduler};
        // Always fire the newest enabled event: maximally perturbs the
        // cross-channel order without being able to break per-channel FIFO.
        struct Newest;
        impl Scheduler for Newest {
            fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
                enabled.len() - 1
            }
        }
        let procs = vec![Either::C(Collector { seen: vec![] }), Either::B(Burst)];
        let mut sim = Simulation::new(SimConfig::jittery(5, 1, 100), procs);
        sim.set_scheduler(Box::new(Newest));
        sim.run();
        let Either::C(c) = sim.proc(ProcId(0)) else {
            panic!()
        };
        assert_eq!(
            c.seen,
            (0..100).collect::<Vec<_>>(),
            "FIFO survives control"
        );
    }

    #[test]
    fn event_limit_stops_runaway() {
        struct Bouncer;
        impl Process for Bouncer {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcId, msg: Msg) {
                // Forward to the other processor forever.
                let other = ProcId(1 - ctx.me().0);
                ctx.send(other, msg);
            }
        }
        let mut cfg = SimConfig::seeded(1);
        cfg.max_events = 1000;
        let mut sim = Simulation::new(cfg, vec![Bouncer, Bouncer]);
        sim.inject(ProcId(0), Msg::Ping(0));
        assert_eq!(sim.run(), RunOutcome::EventLimit);
        assert_eq!(sim.events_delivered(), 1000);
    }

    #[test]
    fn service_time_serializes_a_processor() {
        // 10 simultaneous deliveries to one processor with service_time 5:
        // the last completes no earlier than 10 * 5 ticks after the first.
        struct Sink {
            times: Vec<u64>,
        }
        impl Process for Sink {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ProcId, _: Msg) {
                self.times.push(ctx.now().ticks());
            }
        }
        let mut cfg = SimConfig::seeded(1);
        cfg.service_time = 5;
        let mut sim = Simulation::new(cfg, vec![Sink { times: vec![] }]);
        for i in 0..10 {
            sim.inject_at(SimTime(1), ProcId(0), Msg::Ping(i));
        }
        sim.run();
        let times = &sim.proc(ProcId(0)).times;
        assert_eq!(times.len(), 10, "all delivered");
        for w in times.windows(2) {
            assert!(
                w[1] >= w[0] + 5,
                "actions spaced by service time: {times:?}"
            );
        }
        // FIFO preserved under requeueing.
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn service_time_requeue_preserves_channel_fifo() {
        // Regression: a requeued message (target busy) must keep its heap
        // priority. Channel S->D carries A then B; an interferer from
        // another processor occupies D so A is requeued to the same instant
        // B arrives. D must still observe A before B.
        struct Obs {
            seen: Vec<u32>,
        }
        impl Process for Obs {
            type Msg = Msg;
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcId, msg: Msg) {
                if let Msg::Ping(n) = msg {
                    self.seen.push(n);
                }
            }
        }
        struct Sender {
            at: u64,
            msgs: Vec<(u64, u32)>,
        }
        impl Process for Sender {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                let _ = self.at;
                for &(_, n) in &self.msgs {
                    ctx.send(ProcId(0), Msg::Ping(n));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcId, _: Msg) {}
        }
        enum P {
            Obs(Obs),
            S(Sender),
        }
        impl Process for P {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                if let P::S(s) = self {
                    s.on_start(ctx)
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcId, msg: Msg) {
                if let P::Obs(o) = self {
                    o.on_message(ctx, from, msg)
                }
            }
        }
        // Deliveries: interferer (P2, latency 9) then A (P1, 10) then B
        // (P1, 12): craft with constant latencies via injections instead.
        let mut cfg = SimConfig::seeded(3);
        cfg.service_time = 3;
        let mut sim = Simulation::new(
            cfg,
            vec![
                P::Obs(Obs { seen: vec![] }),
                P::S(Sender {
                    at: 0,
                    msgs: vec![],
                }),
            ],
        );
        // Interferer occupies P0 from t=9..12; A lands t=10, B lands t=12.
        sim.inject_at(SimTime(9), ProcId(0), Msg::Ping(99));
        sim.inject_at(SimTime(10), ProcId(0), Msg::Ping(1)); // A
        sim.inject_at(SimTime(12), ProcId(0), Msg::Ping(2)); // B
        sim.run();
        let P::Obs(o) = sim.proc(ProcId(0)) else {
            panic!()
        };
        assert_eq!(o.seen, vec![99, 1, 2], "A not overtaken by B");
    }

    #[test]
    fn effects_depart_at_action_completion() {
        // With service_time 5, a reply leaves when the action *completes*:
        // inject arrives at t=1, so the output is stamped t=6, not t=1.
        struct Replier;
        impl Process for Replier {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ProcId, msg: Msg) {
                if let Msg::Ping(n) = msg {
                    ctx.send(ProcId::EXTERNAL, Msg::Pong(n));
                }
            }
        }
        let mut cfg = SimConfig::seeded(1);
        cfg.service_time = 5;
        let mut sim = Simulation::new(cfg, vec![Replier]);
        sim.inject_at(SimTime(1), ProcId(0), Msg::Ping(0));
        sim.run();
        assert_eq!(sim.outputs().len(), 1);
        assert_eq!(sim.outputs()[0].0, SimTime(6), "departs at completion");
    }

    #[test]
    fn service_overrides_slow_one_processor() {
        // P0 forwards to P1; P1 replies out. Constant latency 10 remote,
        // base service 2, P1 overridden to 50. End-to-end: arrive P0 at 1,
        // depart 3, arrive P1 at 13, depart (output) at 63.
        struct Fwd {
            next: Option<ProcId>,
        }
        impl Process for Fwd {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: ProcId, msg: Msg) {
                match self.next {
                    Some(next) => ctx.send(next, msg),
                    None => ctx.send(ProcId::EXTERNAL, msg),
                }
            }
        }
        let mut cfg = SimConfig::seeded(1);
        cfg.service_time = 2;
        cfg.service_overrides = vec![(ProcId(1), 50)];
        let mut sim = Simulation::new(
            cfg,
            vec![
                Fwd {
                    next: Some(ProcId(1)),
                },
                Fwd { next: None },
            ],
        );
        assert_eq!(sim.service_of(ProcId(0)), 2);
        assert_eq!(sim.service_of(ProcId(1)), 50);
        sim.inject_at(SimTime(1), ProcId(0), Msg::Ping(0));
        sim.run();
        assert_eq!(sim.outputs()[0].0, SimTime(63));
    }

    #[test]
    fn timers_fire() {
        struct T {
            fired: Vec<u64>,
        }
        impl Process for T {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10, 1);
                ctx.set_timer(5, 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcId, _: Msg) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulation::new(SimConfig::default(), vec![T { fired: vec![] }]);
        sim.run();
        assert_eq!(sim.proc(ProcId(0)).fired, vec![2, 1]);
    }
}
