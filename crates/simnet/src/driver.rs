//! The generic workload driver: one implementation of op-id allocation,
//! pending-op tracking, closed- and open-loop driving, and latency
//! statistics, shared by every search structure and both runtimes.
//!
//! A structure plugs in by implementing [`ClientProtocol`] — how to turn an
//! operation into a request message and recognize its completion — and gets
//! the whole driver surface (`submit`, `run_closed_loop`, `run_open_loop`,
//! quiescence draining, [`DriverStats`]) on any [`Runtime`]. The dB-tree's
//! `DbCluster` and the hash table's `HashCluster` are thin typed wrappers
//! over [`Driver`].

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::runtime::{Poll, QuiesceError, Runtime};
use crate::{Histogram, Payload, ProcId, Process, SimTime};

/// How a search structure talks to clients: request construction and
/// completion parsing. Implementors are zero-sized marker types; all
/// methods are static.
pub trait ClientProtocol {
    /// The wire message type (must match the runtime's process message).
    type Msg: Payload;
    /// A client operation as the workload sees it.
    type Op: Clone;
    /// The structure-reported result of one operation.
    type Outcome;
    /// A range-scan request (use [`NoScan`] if the structure has none).
    type Scan: Clone;
    /// The result of a completed scan.
    type ScanResult;

    /// The processor an operation is submitted to.
    fn origin(op: &Self::Op) -> ProcId;

    /// Build the request message carrying driver-assigned id `id`.
    fn request(id: u64, op: &Self::Op) -> Self::Msg;

    /// The processor a scan is submitted to.
    fn scan_origin(scan: &Self::Scan) -> ProcId;

    /// Build the scan request message carrying driver-assigned id `id`.
    fn scan_request(id: u64, scan: &Self::Scan) -> Self::Msg;

    /// Parse an external output: `Some` if it completes a driver-submitted
    /// operation or scan, `None` for anything else.
    fn parse(msg: Self::Msg) -> Option<Completion<Self::Outcome, Self::ScanResult>>;

    /// Rewrite `op` so the driver submits it to `to` instead of its current
    /// origin. Client-side retry uses this to redirect an operation away
    /// from a suspected-down processor; any live processor can navigate to
    /// the operation's home. The default keeps the op unchanged (no
    /// redirection — retries go back to the original origin).
    fn retarget(op: &Self::Op, to: ProcId) -> Self::Op {
        let _ = to;
        op.clone()
    }
}

/// A parsed completion message.
pub enum Completion<O, S> {
    /// A point operation finished.
    Op {
        /// The driver-assigned operation id.
        id: u64,
        /// The reported outcome.
        outcome: O,
    },
    /// A range scan finished.
    Scan {
        /// The driver-assigned operation id.
        id: u64,
        /// The collected result.
        result: S,
    },
}

/// Scan type for structures without range scans; uninhabited, so
/// [`ClientProtocol::scan_request`] is trivially unreachable.
#[derive(Clone, Copy, Debug)]
pub enum NoScan {}

/// One item of a mixed closed-loop workload: a point operation or a range
/// scan, driven through the same per-origin windows (see
/// [`Driver::run_closed_loop_mixed`]).
#[derive(Clone, Copy, Debug)]
pub enum Submission<Op, Scan> {
    /// A point operation.
    Op(Op),
    /// A range scan.
    Scan(Scan),
}

/// Per-origin submission queues of a mixed closed-loop run.
type SubmissionQueues<C> =
    BTreeMap<ProcId, VecDeque<Submission<<C as ClientProtocol>::Op, <C as ClientProtocol>::Scan>>>;

/// Uniform accessors over protocol-specific outcomes, so [`DriverStats`]
/// can aggregate hops/chases/losses without knowing the structure.
/// Implemented for `()` so outcome-less protocols (driver tests, synthetic
/// profiler workloads) still get the full stats surface.
pub trait OpOutcome {
    /// Nodes visited while navigating to the operation's home.
    fn hops(&self) -> u32 {
        0
    }
    /// Misnavigation recoveries (right-link chases, split-image chases).
    fn chases(&self) -> u32 {
        0
    }
    /// The structure admitted losing the operation (broken strawmen only).
    fn lost(&self) -> bool {
        false
    }
}

impl OpOutcome for () {}

/// A completed operation with its timing.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord<Op, O> {
    /// The driver-assigned operation id — also the op's trace *span*, which
    /// is how the critical-path profiler joins records to trace entries.
    pub id: u64,
    /// The submitted operation.
    pub op: Op,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time (when the reply left the structure).
    pub completed: SimTime,
    /// The protocol-reported outcome.
    pub outcome: O,
}

impl<Op, O> OpRecord<Op, O> {
    /// Latency in ticks.
    pub fn latency(&self) -> u64 {
        self.completed - self.submitted
    }
}

/// A completed range scan with its timing.
#[derive(Clone, Debug)]
pub struct ScanRecord<S, R> {
    /// The driver-assigned operation id.
    pub id: u64,
    /// The request as submitted.
    pub scan: S,
    /// The collected result.
    pub result: R,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

/// Client-side robustness policy: per-attempt deadlines, bounded
/// exponential backoff with jitter, and redirection away from suspected
/// processors. Disabled by default — the driver then never times out an
/// operation, draws no randomness, and behaves byte-identically to builds
/// without the retry layer.
///
/// Time quantities are in runtime ticks (virtual for the simulator,
/// microseconds for threads), so callers set them per substrate.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Per-attempt deadline: an operation unanswered this long is timed
    /// out, its origin suspected, and the op rescheduled.
    pub deadline: u64,
    /// Backoff before the first resubmission; doubles per attempt.
    pub backoff_base: u64,
    /// Backoff ceiling.
    pub backoff_max: u64,
    /// Give an operation up (count it `abandoned`) after this many
    /// attempts, the initial submission included.
    pub max_attempts: u32,
    /// Seed of the jitter stream (each backoff adds a uniform draw from
    /// `[0, backoff/4]` to decorrelate retry storms).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: false,
            deadline: 3_000,
            backoff_base: 50,
            backoff_max: 800,
            max_attempts: 8,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// An enabled policy with default timing.
    pub fn on() -> Self {
        RetryPolicy {
            enabled: true,
            ..RetryPolicy::default()
        }
    }
}

/// One outstanding attempt of a retry-tracked operation.
#[derive(Clone, Copy, Debug)]
struct Attempt {
    /// When this attempt times out.
    deadline_at: SimTime,
    /// How many attempts this op has made, this one included.
    attempts: u32,
    /// The processor this attempt was actually submitted to (the original
    /// origin, or the redirect target if that origin was suspect). A
    /// timeout suspects it; a completion rehabilitates it.
    origin: ProcId,
}

/// An operation waiting out its backoff before resubmission.
struct Resub<Op> {
    op: Op,
    /// Original submission time — latency is measured end to end across
    /// every attempt.
    submitted: SimTime,
    /// Attempts made so far.
    attempts: u32,
}

/// Aggregate results of a driven workload.
#[derive(Clone, Debug)]
pub struct DriverStats<Op, O> {
    /// Completed operations in completion order.
    pub records: Vec<OpRecord<Op, O>>,
    /// Ticks from first injection to last completion.
    pub makespan: u64,
    /// Attempts that hit their per-attempt deadline (retry layer only).
    pub timeouts: u64,
    /// Resubmissions made after a timeout.
    pub retries: u64,
    /// Resubmissions redirected to a different origin because the original
    /// was suspected down.
    pub redirects: u64,
    /// Operations given up after `max_attempts`.
    pub abandoned: u64,
}

/// Completed records of a quiescence run, or the limit that tripped.
pub type QuiesceResult<Op, O> = Result<Vec<OpRecord<Op, O>>, QuiesceError>;

impl<Op, O> Default for DriverStats<Op, O> {
    fn default() -> Self {
        DriverStats {
            records: Vec::new(),
            makespan: 0,
            timeouts: 0,
            retries: 0,
            redirects: 0,
            abandoned: 0,
        }
    }
}

impl<Op, O> DriverStats<Op, O> {
    /// Mean latency in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.latency()).sum::<u64>() as f64 / self.records.len() as f64
    }

    /// The `q`-quantile (clamped to `0..=1`) of latency by nearest-rank;
    /// `q = 0` is the minimum, `q = 1` the maximum, `0` with no records.
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        let mut l: Vec<u64> = self.records.iter().map(|r| r.latency()).collect();
        l.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = (((l.len() - 1) as f64 * q).round() as usize).min(l.len() - 1);
        l[idx]
    }

    /// Operations per 1000 ticks of driven time.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.records.len() as f64 * 1000.0 / self.makespan as f64
    }

    /// The full latency distribution as a log₂-bucketed [`Histogram`] —
    /// the registry-friendly aggregate (mergeable across runs), replacing
    /// ad-hoc percentile arithmetic in experiment binaries.
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in &self.records {
            h.record(r.latency());
        }
        h
    }

    /// Partition the completed records by `class` (e.g. the op kind), so
    /// per-class latency quantiles can be reported alongside the aggregate.
    /// Each partition keeps the run-wide `makespan` (the records shared one
    /// run, so a per-class throughput is still ops over driven time); the
    /// retry counters are run-wide and not attributable to a class, so they
    /// are zeroed in the partitions — read them off the aggregate. Classes
    /// with no records simply don't appear; every accessor is total on an
    /// empty `DriverStats` regardless.
    pub fn split_by<K: Ord, F: FnMut(&Op) -> K>(&self, mut class: F) -> BTreeMap<K, Self>
    where
        Op: Clone,
        O: Clone,
    {
        let mut out: BTreeMap<K, Self> = BTreeMap::new();
        for r in &self.records {
            let part = out.entry(class(&r.op)).or_insert_with(|| DriverStats {
                makespan: self.makespan,
                ..DriverStats::default()
            });
            part.records.push(r.clone());
        }
        out
    }
}

impl<Op, O: OpOutcome> DriverStats<Op, O> {
    /// Mean hops per operation.
    pub fn mean_hops(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.outcome.hops() as u64)
            .sum::<u64>() as f64
            / self.records.len() as f64
    }

    /// Total misnavigation recoveries.
    pub fn total_chases(&self) -> u64 {
        self.records.iter().map(|r| r.outcome.chases() as u64).sum()
    }

    /// Operations the structure reported losing.
    pub fn lost_count(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.lost()).count()
    }
}

/// Arrival schedule for open-loop (fixed-rate) driving.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopCfg {
    /// Target inter-arrival gap in ticks (clamped to ≥ 1).
    pub period: u64,
    /// Draw each gap uniformly from `[1, 2·period)` instead of using the
    /// constant period (mean stays `period`).
    pub jitter: bool,
    /// Seed for the jitter stream; the schedule is a pure function of
    /// `(n, period, jitter, seed)`.
    pub seed: u64,
}

impl OpenLoopCfg {
    /// A constant-rate schedule: one arrival every `period` ticks.
    pub fn fixed(period: u64) -> Self {
        OpenLoopCfg {
            period,
            jitter: false,
            seed: 0,
        }
    }

    /// A jittered schedule with mean gap `period`.
    pub fn jittered(period: u64, seed: u64) -> Self {
        OpenLoopCfg {
            period,
            jitter: true,
            seed,
        }
    }
}

/// The deterministic arrival offsets (ticks after the run starts) for `n`
/// operations under `cfg`. Exposed so tests and experiments can predict —
/// and assert — the schedule.
pub fn arrival_offsets(n: usize, cfg: &OpenLoopCfg) -> Vec<u64> {
    let period = cfg.period.max(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0A11_5EED);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        t += if cfg.jitter {
            rng.gen_range(1..2 * period)
        } else {
            period
        };
        out.push(t);
    }
    out
}

/// Number of consecutive idle polls a threaded run tolerates before a
/// quiescence probe; each idle poll is one grace period long.
const IDLE_PROBE_AFTER: u32 = 1;

/// The generic workload driver. See the module docs; construct with
/// [`Driver::new`] and pass the runtime to each call (the driver does not
/// own the runtime, so wrappers can keep theirs public).
pub struct Driver<C: ClientProtocol> {
    next_op: u64,
    pending: HashMap<u64, (C::Op, SimTime)>,
    pending_scans: HashMap<u64, (C::Scan, SimTime)>,
    scans: Vec<ScanRecord<C::Scan, C::ScanResult>>,
    retry: RetryPolicy,
    retry_rng: SmallRng,
    /// Per-attempt deadlines of retry-tracked live ids (⊆ `pending` keys).
    inflight: BTreeMap<u64, Attempt>,
    /// Timed-out ops waiting out their backoff, keyed by wake time (the
    /// second key component keeps same-tick resubmissions FIFO).
    backlog: BTreeMap<(SimTime, u64), Resub<C::Op>>,
    backlog_seq: u64,
    /// Origins the client currently believes down (an attempt against them
    /// timed out; cleared by the next completion from that origin).
    suspects: BTreeSet<ProcId>,
    timeouts: u64,
    retries: u64,
    redirects: u64,
    abandoned: u64,
}

impl<C: ClientProtocol> Default for Driver<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: ClientProtocol> Driver<C> {
    /// A fresh driver; ids start at 1.
    pub fn new() -> Self {
        Self::with_retry(RetryPolicy::default())
    }

    /// A fresh driver with the given client-side retry policy.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        Driver {
            next_op: 1,
            pending: HashMap::new(),
            pending_scans: HashMap::new(),
            scans: Vec::new(),
            retry,
            retry_rng: SmallRng::seed_from_u64(retry.seed ^ 0x7E7A_11ED),
            inflight: BTreeMap::new(),
            backlog: BTreeMap::new(),
            backlog_seq: 0,
            suspects: BTreeSet::new(),
            timeouts: 0,
            retries: 0,
            redirects: 0,
            abandoned: 0,
        }
    }

    /// Replace the retry policy (resets the jitter stream).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
        self.retry_rng = SmallRng::seed_from_u64(retry.seed ^ 0x7E7A_11ED);
    }

    /// Operations submitted but not yet completed (scans included; ops
    /// waiting out a retry backoff included).
    pub fn pending_ops(&self) -> usize {
        self.pending.len() + self.pending_scans.len() + self.backlog.len()
    }

    /// Origins the retry layer currently suspects down.
    pub fn suspected_origins(&self) -> Vec<ProcId> {
        self.suspects.iter().copied().collect()
    }

    /// Completed scans (drained).
    pub fn take_scans(&mut self) -> Vec<ScanRecord<C::Scan, C::ScanResult>> {
        std::mem::take(&mut self.scans)
    }

    /// Submit one operation; returns the driver-assigned id.
    pub fn submit<R>(&mut self, rt: &mut R, op: C::Op) -> u64
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let now = rt.now();
        self.submit_attempt(rt, op, now, 1)
    }

    /// Submit one attempt of `op` under a fresh id, preserving the original
    /// submission time so latency is end-to-end across attempts. `pending`
    /// keeps the op exactly as the workload issued it (records and
    /// closed-loop refill see original origins); if that origin is
    /// currently suspect, the attempt itself is redirected to the nearest
    /// non-suspect processor on the wire.
    fn submit_attempt<R>(&mut self, rt: &mut R, op: C::Op, submitted: SimTime, attempts: u32) -> u64
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let id = self.next_op;
        self.next_op += 1;
        let mut wire = op.clone();
        if self.retry.enabled && self.suspects.contains(&C::origin(&wire)) {
            let from = C::origin(&wire);
            let n = rt.num_procs() as u32;
            for step in 1..n {
                let cand = ProcId((from.0 + step) % n);
                if !self.suspects.contains(&cand) {
                    wire = C::retarget(&wire, cand);
                    self.redirects += 1;
                    break;
                }
            }
        }
        self.pending.insert(id, (op, submitted));
        if self.retry.enabled {
            self.inflight.insert(
                id,
                Attempt {
                    deadline_at: rt.now() + self.retry.deadline,
                    attempts,
                    origin: C::origin(&wire),
                },
            );
        }
        rt.inject(C::origin(&wire), C::request(id, &wire));
        id
    }

    /// The next instant the retry layer needs the clock to reach: the
    /// earliest attempt deadline or backlog wake-up. `None` when the retry
    /// layer is off or has nothing scheduled.
    fn next_wake(&self) -> Option<SimTime> {
        if !self.retry.enabled {
            return None;
        }
        let d = self.inflight.values().map(|a| a.deadline_at).min();
        let b = self.backlog.keys().next().map(|(at, _)| *at);
        match (d, b) {
            (Some(d), Some(b)) => Some(d.min(b)),
            (x, None) => x,
            (None, y) => y,
        }
    }

    /// Time out overdue attempts and resubmit ops whose backoff expired.
    /// Timed-out attempts suspect their origin; resubmissions against a
    /// suspected origin are redirected to the nearest non-suspect
    /// processor. No-op while the retry layer is off.
    fn service_retries<R>(&mut self, rt: &mut R)
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        if !self.retry.enabled {
            return;
        }
        let now = rt.now();
        let expired: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, a)| a.deadline_at <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            let a = self.inflight.remove(&id).expect("key just listed");
            let Some((op, submitted)) = self.pending.remove(&id) else {
                continue;
            };
            self.timeouts += 1;
            self.suspects.insert(a.origin);
            if a.attempts >= self.retry.max_attempts {
                self.abandoned += 1;
                continue;
            }
            let shift = (a.attempts - 1).min(16);
            let backoff = (self.retry.backoff_base << shift)
                .min(self.retry.backoff_max)
                .max(1);
            let jitter = self.retry_rng.gen_range(0..=backoff / 4);
            self.backlog_seq += 1;
            self.backlog.insert(
                (now + backoff + jitter, self.backlog_seq),
                Resub {
                    op,
                    submitted,
                    attempts: a.attempts,
                },
            );
        }
        let due: Vec<(SimTime, u64)> = self
            .backlog
            .range(..=(now, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let r = self.backlog.remove(&key).expect("key just listed");
            self.retries += 1;
            // `submit_attempt` redirects away from suspect origins itself.
            self.submit_attempt(rt, r.op, r.submitted, r.attempts + 1);
        }
    }

    /// Submit one scan; returns the driver-assigned id.
    pub fn submit_scan<R>(&mut self, rt: &mut R, scan: C::Scan) -> u64
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let id = self.next_op;
        self.next_op += 1;
        self.pending_scans.insert(id, (scan.clone(), rt.now()));
        rt.inject(C::scan_origin(&scan), C::scan_request(id, &scan));
        id
    }

    /// Parse everything the runtime has emitted, matching completions to
    /// pending operations. Returns how many point ops completed.
    fn drain_into<R>(&mut self, rt: &mut R, records: &mut Vec<OpRecord<C::Op, C::Outcome>>) -> usize
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let before = records.len();
        for (at, _from, msg) in rt.drain_outputs() {
            match C::parse(msg) {
                Some(Completion::Op { id, outcome }) => {
                    // Completions of retired attempt ids (the op was
                    // resubmitted under a fresh id after a timeout) are not
                    // in `pending` and fall through silently: the op is
                    // recorded exactly once, under whichever id was live.
                    if let Some((op, submitted)) = self.pending.remove(&id) {
                        if let Some(a) = self.inflight.remove(&id) {
                            // A completion is proof of life for the
                            // processor that served the attempt.
                            self.suspects.remove(&a.origin);
                        }
                        records.push(OpRecord {
                            id,
                            op,
                            submitted,
                            completed: at,
                            outcome,
                        });
                    }
                }
                Some(Completion::Scan { id, result }) => {
                    if let Some((scan, submitted)) = self.pending_scans.remove(&id) {
                        self.scans.push(ScanRecord {
                            id,
                            scan,
                            result,
                            submitted,
                            completed: at,
                        });
                    }
                }
                None => {}
            }
        }
        records.len() - before
    }

    /// Closed-loop windowing: for every record completed since `from`,
    /// submit the next queued op from the same origin (one in, one out).
    fn refill<R>(
        &mut self,
        rt: &mut R,
        queues: &mut BTreeMap<ProcId, VecDeque<C::Op>>,
        records: &[OpRecord<C::Op, C::Outcome>],
        from: usize,
    ) where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let origins: Vec<ProcId> = records[from..].iter().map(|r| C::origin(&r.op)).collect();
        for origin in origins {
            if let Some(op) = queues.get_mut(&origin).and_then(|q| q.pop_front()) {
                self.submit(rt, op);
            }
        }
    }

    /// Replace a stall's placeholder pending count with the real one.
    fn stamp(&self, e: QuiesceError) -> QuiesceError {
        match e {
            QuiesceError::Stalled { .. } => QuiesceError::Stalled {
                pending: self.pending_ops(),
            },
            other => other,
        }
    }

    /// Run until the network is silent, or fail with the limit that
    /// tripped. Completions drained on the way are returned either way
    /// (on error, through the records accumulated so far being dropped —
    /// matching the panicking wrapper's contract that partial results are
    /// unusable).
    pub fn try_run_to_quiescence<R>(&mut self, rt: &mut R) -> QuiesceResult<C::Op, C::Outcome>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let mut records = Vec::new();
        let settled = rt.settle();
        self.drain_into(rt, &mut records);
        match settled {
            Ok(()) => Ok(records),
            Err(e) => Err(self.stamp(e)),
        }
    }

    /// Run until the network is silent; panics if a limit trips first (see
    /// [`Driver::try_run_to_quiescence`] for the non-panicking form).
    pub fn run_to_quiescence<R>(&mut self, rt: &mut R) -> Vec<OpRecord<C::Op, C::Outcome>>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        match self.try_run_to_quiescence(rt) {
            Ok(records) => records,
            Err(e) => panic!(
                "run_to_quiescence: {e} before the network went silent \
                 ({} ops still pending)",
                self.pending_ops()
            ),
        }
    }

    /// Drive `ops` closed-loop with `concurrency` outstanding operations
    /// per origin processor, then run to quiescence.
    ///
    /// If the structure loses operations (the naive strawmen do, by
    /// design), the run still terminates — at quiescence the lost ops'
    /// windows simply never refilled — and the partial records are
    /// returned, so loss shows up as `records.len() < ops.len()`.
    pub fn try_run_closed_loop<R>(
        &mut self,
        rt: &mut R,
        ops: &[C::Op],
        concurrency: usize,
    ) -> Result<DriverStats<C::Op, C::Outcome>, QuiesceError>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let concurrency = concurrency.max(1);
        let mut queues: BTreeMap<ProcId, VecDeque<C::Op>> = BTreeMap::new();
        for op in ops {
            queues
                .entry(C::origin(op))
                .or_default()
                .push_back(op.clone());
        }
        let start = rt.now();
        // Prime each origin's window.
        for q in queues.values_mut() {
            for _ in 0..concurrency {
                if let Some(op) = q.pop_front() {
                    self.submit(rt, op);
                }
            }
        }
        let mut records: Vec<OpRecord<C::Op, C::Outcome>> = Vec::with_capacity(ops.len());
        let mut idle = 0u32;
        loop {
            if self.pending.is_empty()
                && self.backlog.is_empty()
                && queues.values().all(|q| q.is_empty())
            {
                // Workload drained; let stragglers (relays, acks) finish.
                rt.settle().map_err(|e| self.stamp(e))?;
                self.drain_into(rt, &mut records);
                break;
            }
            // With the retry layer on, poll only as far as the next attempt
            // deadline or backoff expiry: ops against a crashed processor
            // then time out and retry instead of hanging the run.
            match rt.poll(self.next_wake()) {
                Poll::Outputs => {
                    idle = 0;
                    let before = records.len();
                    self.drain_into(rt, &mut records);
                    self.refill(rt, &mut queues, &records, before);
                    self.service_retries(rt);
                }
                Poll::Deadline => {
                    self.service_retries(rt);
                }
                Poll::Quiescent => {
                    // Simulator: queue empty with ops still pending — they
                    // were lost. Retry what the retry layer still owns;
                    // break only once it has nothing left to do.
                    self.drain_into(rt, &mut records);
                    self.service_retries(rt);
                    if self.next_wake().is_none() {
                        break;
                    }
                }
                Poll::Idle => {
                    // Threads: no outputs for a grace period. Probe: if the
                    // cluster is genuinely quiescent and nothing new
                    // completed, the pending ops are lost.
                    idle += 1;
                    if idle <= IDLE_PROBE_AFTER {
                        continue;
                    }
                    rt.settle().map_err(|e| self.stamp(e))?;
                    let before = records.len();
                    let completed = self.drain_into(rt, &mut records);
                    self.refill(rt, &mut queues, &records, before);
                    if completed == 0 {
                        break;
                    }
                    idle = 0;
                }
                Poll::Limit(e) => {
                    self.drain_into(rt, &mut records);
                    return Err(self.stamp(e));
                }
            }
        }
        let mut last = start;
        for r in &records {
            last = last.max(r.completed);
        }
        Ok(self.stats_from(records, last - start))
    }

    /// Assemble run stats, folding in the retry layer's counters.
    fn stats_from(
        &self,
        records: Vec<OpRecord<C::Op, C::Outcome>>,
        makespan: u64,
    ) -> DriverStats<C::Op, C::Outcome> {
        DriverStats {
            records,
            makespan,
            timeouts: self.timeouts,
            retries: self.retries,
            redirects: self.redirects,
            abandoned: self.abandoned,
        }
    }

    /// Closed-loop driving; panics if a limit trips (see
    /// [`Driver::try_run_closed_loop`]).
    pub fn run_closed_loop<R>(
        &mut self,
        rt: &mut R,
        ops: &[C::Op],
        concurrency: usize,
    ) -> DriverStats<C::Op, C::Outcome>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        match self.try_run_closed_loop(rt, ops, concurrency) {
            Ok(stats) => stats,
            Err(e) => panic!(
                "run_closed_loop: {e} before the workload drained \
                 ({} ops still pending)",
                self.pending_ops()
            ),
        }
    }

    /// Submit one mixed-workload item.
    fn submit_item<R>(&mut self, rt: &mut R, item: Submission<C::Op, C::Scan>)
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        match item {
            Submission::Op(op) => {
                self.submit(rt, op);
            }
            Submission::Scan(scan) => {
                self.submit_scan(rt, scan);
            }
        }
    }

    /// Mixed-workload refill: scan completions open window slots exactly as
    /// point-op completions do. Without this a scan-bearing closed loop
    /// starves — scans complete into `self.scans`, not `records`, so the
    /// op-only refill never sees them.
    fn refill_mixed<R>(
        &mut self,
        rt: &mut R,
        queues: &mut SubmissionQueues<C>,
        records: &[OpRecord<C::Op, C::Outcome>],
        ops_from: usize,
        scans_from: usize,
    ) where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let mut origins: Vec<ProcId> = records[ops_from..]
            .iter()
            .map(|r| C::origin(&r.op))
            .collect();
        origins.extend(
            self.scans[scans_from..]
                .iter()
                .map(|s| C::scan_origin(&s.scan)),
        );
        for origin in origins {
            if let Some(item) = queues.get_mut(&origin).and_then(|q| q.pop_front()) {
                self.submit_item(rt, item);
            }
        }
    }

    /// Drive a mixed stream of point ops and range scans closed-loop with
    /// `concurrency` outstanding items per origin, then run to quiescence.
    ///
    /// Point-op results land in the returned stats; scan results accumulate
    /// for [`Driver::take_scans`]. Scans are not retried by the retry layer
    /// (they are idempotent reads — the caller can resubmit), and a lost
    /// scan behaves like a lost op: its window slot never refills and the
    /// run still terminates.
    pub fn try_run_closed_loop_mixed<R>(
        &mut self,
        rt: &mut R,
        items: &[Submission<C::Op, C::Scan>],
        concurrency: usize,
    ) -> Result<DriverStats<C::Op, C::Outcome>, QuiesceError>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let concurrency = concurrency.max(1);
        let mut queues: SubmissionQueues<C> = BTreeMap::new();
        for item in items {
            let origin = match item {
                Submission::Op(op) => C::origin(op),
                Submission::Scan(scan) => C::scan_origin(scan),
            };
            queues.entry(origin).or_default().push_back(item.clone());
        }
        let start = rt.now();
        for q in queues.values_mut() {
            for _ in 0..concurrency {
                if let Some(item) = q.pop_front() {
                    self.submit_item(rt, item);
                }
            }
        }
        let mut records: Vec<OpRecord<C::Op, C::Outcome>> = Vec::new();
        let mut idle = 0u32;
        loop {
            if self.pending.is_empty()
                && self.pending_scans.is_empty()
                && self.backlog.is_empty()
                && queues.values().all(|q| q.is_empty())
            {
                rt.settle().map_err(|e| self.stamp(e))?;
                self.drain_into(rt, &mut records);
                break;
            }
            match rt.poll(self.next_wake()) {
                Poll::Outputs => {
                    idle = 0;
                    let ops_before = records.len();
                    let scans_before = self.scans.len();
                    self.drain_into(rt, &mut records);
                    self.refill_mixed(rt, &mut queues, &records, ops_before, scans_before);
                    self.service_retries(rt);
                }
                Poll::Deadline => {
                    self.service_retries(rt);
                }
                Poll::Quiescent => {
                    let ops_before = records.len();
                    let scans_before = self.scans.len();
                    self.drain_into(rt, &mut records);
                    self.refill_mixed(rt, &mut queues, &records, ops_before, scans_before);
                    self.service_retries(rt);
                    if self.next_wake().is_none() {
                        break;
                    }
                }
                Poll::Idle => {
                    idle += 1;
                    if idle <= IDLE_PROBE_AFTER {
                        continue;
                    }
                    rt.settle().map_err(|e| self.stamp(e))?;
                    let ops_before = records.len();
                    let scans_before = self.scans.len();
                    self.drain_into(rt, &mut records);
                    let done = records.len() - ops_before + (self.scans.len() - scans_before);
                    self.refill_mixed(rt, &mut queues, &records, ops_before, scans_before);
                    if done == 0 {
                        break;
                    }
                    idle = 0;
                }
                Poll::Limit(e) => {
                    self.drain_into(rt, &mut records);
                    return Err(self.stamp(e));
                }
            }
        }
        let mut last = start;
        for r in &records {
            last = last.max(r.completed);
        }
        for s in &self.scans {
            last = last.max(s.completed);
        }
        Ok(self.stats_from(records, last - start))
    }

    /// Mixed closed-loop driving; panics if a limit trips (see
    /// [`Driver::try_run_closed_loop_mixed`]).
    pub fn run_closed_loop_mixed<R>(
        &mut self,
        rt: &mut R,
        items: &[Submission<C::Op, C::Scan>],
        concurrency: usize,
    ) -> DriverStats<C::Op, C::Outcome>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        match self.try_run_closed_loop_mixed(rt, items, concurrency) {
            Ok(stats) => stats,
            Err(e) => panic!(
                "run_closed_loop_mixed: {e} before the workload drained \
                 ({} ops still pending)",
                self.pending_ops()
            ),
        }
    }

    /// Drive `ops` open-loop: arrivals follow the deterministic schedule of
    /// [`arrival_offsets`] regardless of completions (the paper's fixed
    /// λ regime), then run to quiescence.
    pub fn try_run_open_loop<R>(
        &mut self,
        rt: &mut R,
        ops: &[C::Op],
        cfg: &OpenLoopCfg,
    ) -> Result<DriverStats<C::Op, C::Outcome>, QuiesceError>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        let offsets = arrival_offsets(ops.len(), cfg);
        let start = rt.now();
        let mut next = 0usize;
        let mut records: Vec<OpRecord<C::Op, C::Outcome>> = Vec::with_capacity(ops.len());
        let mut idle = 0u32;
        loop {
            while next < ops.len() && rt.now() >= start + offsets[next] {
                self.submit(rt, ops[next].clone());
                next += 1;
            }
            if next >= ops.len() {
                if self.pending.is_empty() && self.backlog.is_empty() {
                    rt.settle().map_err(|e| self.stamp(e))?;
                    self.drain_into(rt, &mut records);
                    break;
                }
                match rt.poll(self.next_wake()) {
                    Poll::Outputs => {
                        idle = 0;
                        self.drain_into(rt, &mut records);
                        self.service_retries(rt);
                    }
                    Poll::Deadline => {
                        self.service_retries(rt);
                    }
                    Poll::Quiescent => {
                        self.drain_into(rt, &mut records);
                        self.service_retries(rt);
                        if self.next_wake().is_none() {
                            break;
                        }
                    }
                    Poll::Idle => {
                        idle += 1;
                        if idle <= IDLE_PROBE_AFTER {
                            continue;
                        }
                        rt.settle().map_err(|e| self.stamp(e))?;
                        if self.drain_into(rt, &mut records) == 0 {
                            break;
                        }
                        idle = 0;
                    }
                    Poll::Limit(e) => {
                        self.drain_into(rt, &mut records);
                        return Err(self.stamp(e));
                    }
                }
            } else {
                let arrival = start + offsets[next];
                let wake = self.next_wake().map_or(arrival, |w| w.min(arrival));
                match rt.poll(Some(wake)) {
                    Poll::Outputs => {
                        self.drain_into(rt, &mut records);
                        self.service_retries(rt);
                    }
                    Poll::Deadline | Poll::Quiescent | Poll::Idle => {
                        self.service_retries(rt);
                    }
                    Poll::Limit(e) => {
                        self.drain_into(rt, &mut records);
                        return Err(self.stamp(e));
                    }
                }
            }
        }
        let mut last = start;
        for r in &records {
            last = last.max(r.completed);
        }
        Ok(self.stats_from(records, last - start))
    }

    /// Open-loop driving; panics if a limit trips (see
    /// [`Driver::try_run_open_loop`]).
    pub fn run_open_loop<R>(
        &mut self,
        rt: &mut R,
        ops: &[C::Op],
        cfg: &OpenLoopCfg,
    ) -> DriverStats<C::Op, C::Outcome>
    where
        R: Runtime,
        R::Proc: Process<Msg = C::Msg>,
    {
        match self.try_run_open_loop(rt, ops, cfg) {
            Ok(stats) => stats,
            Err(e) => panic!(
                "run_open_loop: {e} before the workload drained \
                 ({} ops still pending)",
                self.pending_ops()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, SimConfig, Simulation};

    #[derive(Clone, Debug)]
    enum TMsg {
        Req { id: u64 },
        Done { id: u64 },
    }
    impl Payload for TMsg {}

    /// Replies to every request after bouncing it off a peer once.
    struct Echo {
        n: u32,
    }
    impl Process for Echo {
        type Msg = TMsg;
        fn on_message(&mut self, ctx: &mut Context<'_, TMsg>, from: ProcId, msg: TMsg) {
            match msg {
                TMsg::Req { id } if from.is_external() => {
                    let peer = ProcId((ctx.me().0 + 1) % self.n);
                    ctx.send(peer, TMsg::Req { id });
                }
                TMsg::Req { id } => ctx.send(from, TMsg::Done { id }),
                TMsg::Done { id } => ctx.send(ProcId::EXTERNAL, TMsg::Done { id }),
            }
        }
    }

    /// Op = origin processor; outcome = ().
    enum EchoProtocol {}
    impl ClientProtocol for EchoProtocol {
        type Msg = TMsg;
        type Op = ProcId;
        type Outcome = ();
        type Scan = NoScan;
        type ScanResult = ();
        fn origin(op: &ProcId) -> ProcId {
            *op
        }
        fn request(id: u64, _op: &ProcId) -> TMsg {
            TMsg::Req { id }
        }
        fn scan_origin(scan: &NoScan) -> ProcId {
            match *scan {}
        }
        fn scan_request(_id: u64, scan: &NoScan) -> TMsg {
            match *scan {}
        }
        fn parse(msg: TMsg) -> Option<Completion<(), ()>> {
            match msg {
                TMsg::Done { id } => Some(Completion::Op { id, outcome: () }),
                _ => None,
            }
        }
        fn retarget(_op: &ProcId, to: ProcId) -> ProcId {
            to
        }
    }

    fn sim(n: u32, seed: u64) -> Simulation<Echo> {
        Simulation::new(
            SimConfig::jittery(seed, 1, 20),
            (0..n).map(|_| Echo { n }).collect(),
        )
    }

    fn ops(n: u32, count: usize) -> Vec<ProcId> {
        (0..count).map(|i| ProcId(i as u32 % n)).collect()
    }

    #[test]
    fn closed_loop_completes_all() {
        let mut rt = sim(3, 7);
        let mut driver: Driver<EchoProtocol> = Driver::new();
        let work = ops(3, 50);
        let stats = driver.run_closed_loop(&mut rt, &work, 4);
        assert_eq!(stats.records.len(), 50);
        assert_eq!(driver.pending_ops(), 0);
        assert!(stats.makespan > 0);
        assert!(stats.mean_latency() > 0.0);
    }

    /// Every statistics accessor must be total on zero samples: 0, never a
    /// panic or NaN. Downstream (benchsuite, experiment bins) calls these
    /// unconditionally on possibly-empty cells.
    #[test]
    fn empty_stats_are_total() {
        let empty: DriverStats<ProcId, ()> = DriverStats::default();
        assert_eq!(empty.mean_latency(), 0.0);
        assert!(!empty.mean_latency().is_nan());
        assert_eq!(empty.mean_hops(), 0.0);
        assert!(!empty.mean_hops().is_nan());
        assert_eq!(empty.total_chases(), 0);
        assert_eq!(empty.lost_count(), 0);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.latency_quantile(q), 0, "q={q}");
        }
        assert_eq!(empty.throughput_per_kilotick(), 0.0);
        let h = empty.latency_histogram();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn split_by_partitions_records_and_keeps_the_makespan() {
        let rec = |id: u64, origin: u32, lat: u64| OpRecord {
            id,
            op: ProcId(origin),
            submitted: SimTime(0),
            completed: SimTime(lat),
            outcome: (),
        };
        let stats = DriverStats {
            records: vec![rec(0, 0, 10), rec(1, 1, 30), rec(2, 0, 20), rec(3, 1, 50)],
            makespan: 100,
            timeouts: 3,
            retries: 2,
            ..Default::default()
        };
        let by_origin = stats.split_by(|op: &ProcId| op.0);
        assert_eq!(by_origin.len(), 2);
        let p0 = &by_origin[&0];
        assert_eq!(p0.records.len(), 2);
        assert_eq!(p0.latency_quantile(1.0), 20);
        assert_eq!(p0.makespan, 100, "partitions keep the run-wide makespan");
        assert_eq!(p0.timeouts, 0, "retry counters are not attributable");
        assert_eq!(p0.retries, 0);
        let p1 = &by_origin[&1];
        assert_eq!(p1.latency_quantile(0.0), 30);
        assert_eq!(p1.latency_quantile(1.0), 50);
        assert_eq!(
            p0.records.len() + p1.records.len(),
            stats.records.len(),
            "partition is exhaustive"
        );
    }

    #[test]
    fn split_by_on_empty_stats_is_total() {
        // Empty-kind totality: a kind with no completions yields no
        // partition, and every accessor on any partition (or on the empty
        // split itself) is total.
        let empty: DriverStats<ProcId, ()> = DriverStats::default();
        let split = empty.split_by(|op: &ProcId| op.0);
        assert!(split.is_empty(), "no records, no partitions");
        // A partition-shaped empty stats object stays total through every
        // accessor (same contract as `empty_stats_are_total`).
        let part: DriverStats<ProcId, ()> = DriverStats {
            makespan: 42,
            ..DriverStats::default()
        };
        assert_eq!(part.mean_latency(), 0.0);
        assert_eq!(part.latency_quantile(0.99), 0);
        assert_eq!(part.throughput_per_kilotick(), 0.0);
        assert_eq!(part.latency_histogram().count(), 0);
    }

    #[test]
    fn quantile_edge_cases() {
        let empty: DriverStats<ProcId, ()> = DriverStats::default();
        assert_eq!(empty.latency_quantile(0.5), 0, "no records -> 0");
        assert_eq!(empty.mean_latency(), 0.0);
        assert_eq!(empty.throughput_per_kilotick(), 0.0);

        let rec = |lat: u64| OpRecord {
            id: lat,
            op: ProcId(0),
            submitted: SimTime(0),
            completed: SimTime(lat),
            outcome: (),
        };
        let single = DriverStats {
            records: vec![rec(42)],
            makespan: 42,
            ..Default::default()
        };
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(single.latency_quantile(q), 42, "single record at q={q}");
        }

        let many = DriverStats {
            records: (1..=100).map(rec).collect(),
            makespan: 100,
            ..Default::default()
        };
        assert_eq!(many.latency_quantile(0.0), 1, "q=0 is the minimum");
        assert_eq!(many.latency_quantile(1.0), 100, "q=1 is the maximum");
        assert_eq!(many.latency_quantile(2.0), 100, "q>1 clamps to max");
        assert_eq!(many.latency_quantile(-0.5), 1, "q<0 clamps to min");
        // Nearest-rank: index round(99 * 0.5) = 50, i.e. the 51st latency.
        assert_eq!(many.latency_quantile(0.5), 51);
    }

    /// Without the retry layer, ops submitted to a permanently crashed
    /// processor hang a closed-loop run (the driver waits forever). With it
    /// they time out, suspect the dead processor, redirect to a live one,
    /// and the whole workload completes.
    #[test]
    fn retry_redirects_around_a_crashed_processor() {
        use crate::{CrashEvent, FaultPlan};
        let mut cfg = SimConfig::jittery(13, 1, 20);
        cfg.faults = FaultPlan::none().with_crash(CrashEvent {
            proc: ProcId(1),
            at: SimTime(0),
            restart_at: None,
        });
        let mut rt = Simulation::new(cfg, (0..3).map(|_| Echo { n: 3 }).collect());
        let mut driver: Driver<EchoProtocol> = Driver::with_retry(RetryPolicy {
            enabled: true,
            deadline: 500,
            backoff_base: 20,
            backoff_max: 200,
            max_attempts: 8,
            seed: 1,
        });
        let work = ops(3, 30);
        let stats = driver.run_closed_loop(&mut rt, &work, 2);
        assert_eq!(stats.records.len(), 30, "every op completed");
        assert_eq!(driver.pending_ops(), 0);
        assert!(stats.timeouts > 0, "dead-processor attempts timed out");
        assert!(stats.retries > 0, "timed-out ops were resubmitted");
        assert!(stats.redirects > 0, "retries were redirected to live procs");
        assert_eq!(stats.abandoned, 0, "nothing was given up");
        // Records keep the op as the workload issued it (original origin),
        // even when the attempt that completed it was redirected.
        assert!(stats.records.iter().any(|r| r.op == ProcId(1)));
    }

    /// With the retry layer off, a clean run draws no randomness and
    /// behaves exactly as before the layer existed.
    #[test]
    fn retry_disabled_changes_nothing() {
        let run = |retry: RetryPolicy| {
            let mut rt = sim(3, 7);
            let mut driver: Driver<EchoProtocol> = Driver::with_retry(retry);
            let stats = driver.run_closed_loop(&mut rt, &ops(3, 50), 4);
            let lat: Vec<u64> = stats.records.iter().map(|r| r.latency()).collect();
            (lat, stats.makespan, stats.timeouts, stats.retries)
        };
        let base = run(RetryPolicy::default());
        let tuned = run(RetryPolicy {
            enabled: false,
            deadline: 1,
            backoff_base: 1,
            backoff_max: 1,
            max_attempts: 1,
            seed: 9,
        });
        assert_eq!(base, tuned);
        assert_eq!(base.2, 0);
        assert_eq!(base.3, 0);
    }

    /// Collect the resubmission delays (wake - timeout instant) and the
    /// attempt counts of one op retried to exhaustion against a
    /// permanently crashed processor, under a given jitter seed.
    fn backoff_delays(seed: u64) -> (Vec<u64>, Vec<u32>, u64) {
        use crate::{CrashEvent, FaultPlan};
        let mut cfg = SimConfig::jittery(3, 1, 20);
        cfg.faults = FaultPlan::none().with_crash(CrashEvent {
            proc: ProcId(0),
            at: SimTime(0),
            restart_at: None,
        });
        let mut rt = Simulation::new(cfg, vec![Echo { n: 1 }]);
        let mut driver: Driver<EchoProtocol> = Driver::with_retry(RetryPolicy {
            enabled: true,
            deadline: 100,
            backoff_base: 50,
            backoff_max: 800,
            max_attempts: 6,
            seed,
        });
        driver.submit(&mut rt, ProcId(0));
        let mut delays = Vec::new();
        let mut attempts = Vec::new();
        for _ in 0..10_000 {
            if driver.inflight.is_empty() && driver.backlog.is_empty() {
                return (delays, attempts, driver.abandoned);
            }
            if let Poll::Limit(e) = rt.poll(driver.next_wake()) {
                panic!("sim limit tripped: {e}");
            }
            let now = rt.now();
            let had_backlog = driver.backlog.len();
            driver.service_retries(&mut rt);
            if driver.backlog.len() > had_backlog {
                let ((wake, _), resub) = driver.backlog.iter().next().expect("just inserted");
                delays.push(wake.0 - now.0);
                attempts.push(resub.attempts);
            }
        }
        panic!("retry loop failed to terminate");
    }

    /// The backoff schedule is exactly the documented policy — exponential
    /// from `backoff_base`, capped at `backoff_max`, plus a jitter draw
    /// from `[0, backoff/4]` — and the jitter stream is a pure function of
    /// the policy seed, so a reproduced run retries at identical ticks.
    #[test]
    fn retry_backoff_is_exponential_capped_and_seed_deterministic() {
        let (delays, attempts, abandoned) = backoff_delays(7);
        // Six attempts: five rescheduled with backoff, the sixth abandoned.
        assert_eq!(attempts, vec![1, 2, 3, 4, 5]);
        assert_eq!(abandoned, 1);
        for (i, &d) in delays.iter().enumerate() {
            let backoff = (50u64 << i).min(800);
            assert!(
                d >= backoff && d <= backoff + backoff / 4,
                "attempt {}: delay {} outside [{}, {}]",
                i + 1,
                d,
                backoff,
                backoff + backoff / 4
            );
        }
        // The cap engaged: the last uncapped term would be 50 << 4 = 800,
        // so delays 5 and beyond sit at the ceiling, not 1600+.
        assert!(*delays.last().unwrap() <= 1000);
        // Same seed, same jitter draws, same schedule — byte-for-byte.
        assert_eq!(backoff_delays(7), (delays, attempts, abandoned));
    }

    /// When every processor an op could run on stays dead, the op is given
    /// up after `max_attempts` and the closed loop terminates — abandoned
    /// ops are counted, never waited on forever.
    #[test]
    fn retry_exhaustion_abandons_instead_of_hanging() {
        use crate::{CrashEvent, FaultPlan};
        let mut cfg = SimConfig::jittery(11, 1, 20);
        cfg.faults = FaultPlan::none().with_crash(CrashEvent {
            proc: ProcId(0),
            at: SimTime(0),
            restart_at: None,
        });
        let mut rt = Simulation::new(cfg, vec![Echo { n: 1 }]);
        let mut driver: Driver<EchoProtocol> = Driver::with_retry(RetryPolicy {
            enabled: true,
            deadline: 200,
            backoff_base: 20,
            backoff_max: 100,
            max_attempts: 3,
            seed: 5,
        });
        // Window of 2: the two in-flight ops exhaust their attempts; the
        // queued remainder never gets a slot (no completions ever open one).
        let stats = driver.run_closed_loop(&mut rt, &ops(1, 5), 2);
        assert_eq!(stats.records.len(), 0, "nothing can complete");
        assert_eq!(stats.abandoned, 2, "both windowed ops were given up");
        assert_eq!(stats.timeouts, 6, "3 attempts each, all timed out");
        assert_eq!(stats.retries, 4, "2 resubmissions per op");
        assert_eq!(stats.redirects, 0, "a 1-proc wire has nowhere to go");
        assert_eq!(driver.pending_ops(), 0, "no op left in flight or backlog");
        assert_eq!(driver.suspected_origins(), vec![ProcId(0)]);
    }

    /// Redirection picks the nearest processor on the wire that is *not*
    /// currently suspect — never a suspected one, wrapping around the ring,
    /// and falling back to the original origin only when every processor is
    /// suspect (nowhere better to go).
    #[test]
    fn retry_redirects_exclude_suspected_processors() {
        let submit_target = |suspects: &[u32], origin: u32| {
            let mut rt = sim(4, 9);
            let mut driver: Driver<EchoProtocol> = Driver::with_retry(RetryPolicy::on());
            driver.suspects = suspects.iter().map(|&p| ProcId(p)).collect();
            let id = driver.submit(&mut rt, ProcId(origin));
            let attempt = driver.inflight[&id];
            // The pending record keeps the op as issued, redirect or not.
            assert_eq!(driver.pending[&id].0, ProcId(origin));
            (attempt.origin, driver.redirects)
        };
        // Next proc up is suspect too: skip both, land on proc 2.
        assert_eq!(submit_target(&[0, 1], 0), (ProcId(2), 1));
        // Wrap around the end of the ring.
        assert_eq!(submit_target(&[2, 3], 3), (ProcId(0), 1));
        // No suspects: no redirect at all.
        assert_eq!(submit_target(&[], 1), (ProcId(1), 0));
        // Everyone suspect: stay with the original origin, count nothing.
        assert_eq!(submit_target(&[0, 1, 2, 3], 1), (ProcId(1), 0));
    }

    #[test]
    fn open_loop_schedule_is_deterministic() {
        let cfg = OpenLoopCfg::jittered(10, 99);
        let a = arrival_offsets(200, &cfg);
        let b = arrival_offsets(200, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        let c = arrival_offsets(200, &OpenLoopCfg::jittered(10, 100));
        assert_ne!(a, c, "different seed, different schedule");
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "offsets strictly increase"
        );

        let fixed = arrival_offsets(5, &OpenLoopCfg::fixed(7));
        assert_eq!(fixed, vec![7, 14, 21, 28, 35]);
        // Degenerate period clamps to 1 tick, never 0.
        let tight = arrival_offsets(3, &OpenLoopCfg::fixed(0));
        assert_eq!(tight, vec![1, 2, 3]);
    }

    #[test]
    fn open_loop_run_is_deterministic_on_sim() {
        let run = || {
            let mut rt = sim(3, 5);
            let mut driver: Driver<EchoProtocol> = Driver::new();
            let work = ops(3, 80);
            let stats = driver.run_open_loop(&mut rt, &work, &OpenLoopCfg::jittered(8, 21));
            assert_eq!(stats.records.len(), 80);
            let lat: Vec<u64> = stats.records.iter().map(|r| r.latency()).collect();
            (lat, stats.makespan)
        };
        assert_eq!(run(), run(), "open-loop sim runs replay exactly");
    }

    #[test]
    fn open_loop_arrivals_follow_schedule() {
        let mut rt = sim(2, 3);
        let mut driver: Driver<EchoProtocol> = Driver::new();
        let work = ops(2, 20);
        let cfg = OpenLoopCfg::fixed(50);
        let stats = driver.run_open_loop(&mut rt, &work, &cfg);
        let offsets = arrival_offsets(20, &cfg);
        // Records are in completion order; compare submission times sorted.
        let mut submitted: Vec<u64> = stats.records.iter().map(|r| r.submitted.ticks()).collect();
        submitted.sort_unstable();
        assert_eq!(submitted, offsets, "paced by the schedule");
    }
}
