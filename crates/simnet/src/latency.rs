//! Message latency models.
//!
//! The paper assumes a reliable network that delivers each message exactly
//! once, in order per channel. Latency is otherwise unconstrained, and the
//! interesting protocol behaviours (Figs 3–6) arise precisely from *different
//! channels* racing each other. The models here let experiments control that
//! race surface while the simulator core enforces per-channel FIFO.

use rand::Rng;

use crate::ProcId;

/// How long a message takes from send to delivery.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every remote hop takes exactly `remote` ticks, local hand-offs `local`.
    Constant {
        /// Latency of a message a processor sends to itself.
        local: u64,
        /// Latency of a message between two distinct processors.
        remote: u64,
    },
    /// Remote latency drawn uniformly from `[min, max]`; local fixed.
    ///
    /// This is the model used by the race experiments: jitter makes
    /// independently-sent relays arrive in different orders at different
    /// copies, exactly the situation of Fig 3.
    Uniform {
        /// Latency of a local hand-off.
        local: u64,
        /// Minimum remote latency (inclusive).
        min: u64,
        /// Maximum remote latency (inclusive).
        max: u64,
    },
    /// One processor is degraded: every remote message it sends or receives
    /// takes `factor` times longer. Models the paper's motivating scenario
    /// — non-blocking algorithms "enhance concurrency because a slow
    /// operation never blocks a fast operation".
    SlowProc {
        /// Latency of a local hand-off.
        local: u64,
        /// Baseline remote latency.
        remote: u64,
        /// The degraded processor.
        slow: ProcId,
        /// Remote-latency multiplier for traffic touching `slow`.
        factor: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant {
            local: 1,
            remote: 10,
        }
    }
}

impl LatencyModel {
    /// A convenient jittery model for race-heavy experiments.
    pub fn jittery(min: u64, max: u64) -> Self {
        LatencyModel::Uniform { local: 1, min, max }
    }

    /// Sample the latency of one message from `src` to `dst`.
    pub fn sample<R: Rng>(&self, src: ProcId, dst: ProcId, rng: &mut R) -> u64 {
        let local = src == dst;
        match *self {
            LatencyModel::Constant { local: l, remote } => {
                if local {
                    l
                } else {
                    remote
                }
            }
            LatencyModel::Uniform { local: l, min, max } => {
                if local {
                    l
                } else if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
            LatencyModel::SlowProc {
                local: l,
                remote,
                slow,
                factor,
            } => {
                if local {
                    l
                } else if src == slow || dst == slow {
                    // Saturate: an extreme degradation factor should pin the
                    // latency at the horizon, not wrap around to something
                    // tiny (which would silently invert the experiment).
                    remote.saturating_mul(factor)
                } else {
                    remote
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model() {
        let m = LatencyModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.sample(ProcId(0), ProcId(0), &mut rng), 1);
        assert_eq!(m.sample(ProcId(0), ProcId(1), &mut rng), 10);
    }

    #[test]
    fn uniform_model_in_bounds() {
        let m = LatencyModel::jittery(5, 20);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let l = m.sample(ProcId(0), ProcId(1), &mut rng);
            assert!((5..=20).contains(&l), "latency {l} out of bounds");
        }
        assert_eq!(m.sample(ProcId(2), ProcId(2), &mut rng), 1);
    }

    #[test]
    fn slow_proc_penalizes_its_channels_only() {
        let m = LatencyModel::SlowProc {
            local: 1,
            remote: 10,
            slow: ProcId(2),
            factor: 8,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.sample(ProcId(0), ProcId(1), &mut rng), 10);
        assert_eq!(m.sample(ProcId(0), ProcId(2), &mut rng), 80);
        assert_eq!(m.sample(ProcId(2), ProcId(1), &mut rng), 80);
        assert_eq!(
            m.sample(ProcId(2), ProcId(2), &mut rng),
            1,
            "local stays local"
        );
    }

    #[test]
    fn slow_proc_extreme_factor_saturates() {
        // Regression: `remote * factor` used to overflow in release builds,
        // wrapping a "very slow" processor around to a very fast one.
        let m = LatencyModel::SlowProc {
            local: 1,
            remote: 10,
            slow: ProcId(1),
            factor: u64::MAX,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.sample(ProcId(0), ProcId(1), &mut rng), u64::MAX);
        assert_eq!(m.sample(ProcId(0), ProcId(2), &mut rng), 10);
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = LatencyModel::Uniform {
            local: 1,
            min: 7,
            max: 7,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.sample(ProcId(0), ProcId(1), &mut rng), 7);
    }
}
