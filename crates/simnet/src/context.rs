//! The per-action handle a [`Process`](crate::Process) uses to interact with
//! the world: send messages, set timers, read the clock, draw randomness.

use rand::rngs::SmallRng;

use crate::trace::TraceEvent;
use crate::{ProcId, SimTime};

/// Buffered outgoing effects of one action.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send {
        to: ProcId,
        msg: M,
    },
    Timer {
        delay: u64,
        token: u64,
    },
    /// A process-emitted trace annotation (detector transitions, recovery
    /// milestones). Recorded into the causal trace with the action's span;
    /// no message moves.
    Mark {
        event: TraceEvent,
        kind: &'static str,
        detail: String,
    },
}

/// Handle passed to every [`Process`](crate::Process) callback.
///
/// All effects are buffered and applied by the runtime after the callback
/// returns, which is what makes each callback an atomic *action* in the
/// paper's sense.
pub struct Context<'a, M> {
    pub(crate) me: ProcId,
    pub(crate) now: SimTime,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) rng: &'a mut SmallRng,
    /// Span of the action being executed (the delivered message's span, or
    /// the sending action's span it inherited). Everything this action sends
    /// inherits it unless the payload carries its own.
    pub(crate) span: Option<u64>,
}

impl<'a, M> Context<'a, M> {
    /// The processor this action is executing on.
    #[inline]
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Current virtual time (wall-clock-derived in the threaded runtime).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send `msg` to `to`. Sending to [`ProcId::EXTERNAL`] emits a
    /// simulation output; sending to `self.me()` enqueues a local action.
    #[inline]
    pub fn send(&mut self, to: ProcId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Fire `on_timer(token)` on this processor after `delay` ticks.
    #[inline]
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }

    /// Record a trace annotation attributed to this action's span: detector
    /// transitions (suspect/alive) and recovery milestones
    /// (quarantine/rejoin). Purely observational — nothing is sent.
    #[inline]
    pub fn mark(&mut self, event: TraceEvent, kind: &'static str, detail: String) {
        self.effects.push(Effect::Mark {
            event,
            kind,
            detail,
        });
    }

    /// Deterministic per-run randomness (shared stream; do not assume
    /// per-processor independence).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The operation span this action runs on behalf of, if any. Sends from
    /// this action inherit it automatically; protocol code only needs it to
    /// stamp state that *outlives* the action (e.g. buffered relay items
    /// flushed later by a timer).
    #[inline]
    pub fn span(&self) -> Option<u64> {
        self.span
    }
}
