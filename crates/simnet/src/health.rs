//! Online cluster-health watchdogs over the sampled metric series.
//!
//! The paper's laziness claims are only checkable if the *lag* signals —
//! relay backlog, parked writes, retransmit pressure, detector flapping —
//! are watched while the run is still going. A [`HealthMonitor`] evaluates
//! threshold/derivative rules at every sample boundary (the same cadence as
//! the [`Sampler`](crate::obs) series, on both runtimes) and emits
//! schema-pinned [`Alert`]s: each becomes a trace event the moment it fires
//! and is retained for the end-of-run [`HealthReport`].
//!
//! Rules are deliberately per-processor and hysteretic: one incident fires
//! one alert, and the rule re-arms only after the signal recovers, so a
//! long-lived fault cannot flood the trace ring.

use std::collections::BTreeMap;

use crate::trace::json_escape_into;
use crate::{ProcId, SimTime};

/// Watchdog thresholds, identical for both runtimes. The default is fully
/// disabled: no rule is evaluated, no per-sample state is kept, and runs
/// are byte-identical to builds that predate the monitor.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Master switch; `false` (the default) skips evaluation entirely.
    pub enabled: bool,
    /// Fire `backlog_growth` when the `relay.backlog_depth` gauge rises
    /// strictly for this many consecutive samples of one processor
    /// (0 disables the rule).
    pub backlog_growth_windows: u32,
    /// Fire `parked_write_stall` when the `proc.parked_dwell` gauge (oldest
    /// parked write's age in ticks) exceeds this bound (0 disables).
    pub parked_dwell_ticks: u64,
    /// Fire `retransmit_storm` when the `session.retransmissions` counter
    /// grows by more than this between two consecutive samples of one
    /// processor (0 disables).
    pub retransmit_storm_delta: u64,
    /// Fire `suspect_flapping` when the combined `detector.suspects` +
    /// `detector.alives` transition count grows by more than this within
    /// one sampling window (0 disables).
    pub flap_transitions: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: false,
            backlog_growth_windows: 4,
            parked_dwell_ticks: 5_000,
            retransmit_storm_delta: 64,
            flap_transitions: 6,
        }
    }
}

impl HealthConfig {
    /// All rules armed at the default thresholds.
    pub fn watchdogs() -> Self {
        HealthConfig {
            enabled: true,
            ..HealthConfig::default()
        }
    }
}

/// One watchdog firing. The JSON shape (and the `rule` vocabulary) is
/// pinned by golden tests — extend, don't reshape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    /// Sample time the rule tripped (virtual or wall-clock ticks).
    pub at: SimTime,
    /// The processor whose series tripped it.
    pub proc: ProcId,
    /// Rule name: `backlog_growth`, `parked_write_stall`,
    /// `retransmit_storm`, or `suspect_flapping`.
    pub rule: &'static str,
    /// The observed value (gauge level, or per-window delta for the
    /// derivative rules).
    pub value: u64,
    /// The configured bound the value crossed.
    pub threshold: u64,
    /// Consecutive samples the predicate held when the alert fired (1 for
    /// the pure threshold rules).
    pub windows: u32,
}

impl Alert {
    /// One line of the alert JSONL schema (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"at\":{},\"proc\":{},\"rule\":\"",
            self.at.ticks(),
            self.proc.0
        );
        json_escape_into(&mut s, self.rule);
        s.push_str(&format!(
            "\",\"value\":{},\"threshold\":{},\"windows\":{}}}",
            self.value, self.threshold, self.windows
        ));
        s
    }

    /// The human-readable detail string the paired trace event carries.
    pub fn detail(&self) -> String {
        format!(
            "rule={} value={} threshold={} windows={}",
            self.rule, self.value, self.threshold, self.windows
        )
    }
}

/// Per-processor rule state: last-seen levels for the derivative rules and
/// a latched bit per rule for hysteresis.
#[derive(Clone, Debug, Default)]
struct ProcHealth {
    last_backlog: Option<u64>,
    backlog_rising: u32,
    backlog_latched: bool,
    dwell_latched: bool,
    last_retrans: Option<u64>,
    storm_latched: bool,
    last_flaps: Option<u64>,
    flap_latched: bool,
}

/// Evaluates [`HealthConfig`] rules over the per-processor sample stream.
///
/// Feed it every `(at, proc, counters, gauges)` snapshot the sampler takes
/// (both runtimes call it from their sampling site) and record whatever
/// alerts come back. The monitor itself never touches the event stream:
/// with the config disabled it is never even constructed.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    procs: Vec<ProcHealth>,
}

/// Look up a named value in a `(name, value)` snapshot.
fn lookup(pairs: &[(&'static str, u64)], name: &str) -> Option<u64> {
    pairs.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

impl HealthMonitor {
    /// A monitor for `n_procs` processors.
    pub fn new(cfg: HealthConfig, n_procs: usize) -> Self {
        HealthMonitor {
            cfg,
            procs: vec![ProcHealth::default(); n_procs],
        }
    }

    /// Evaluate every armed rule against one sample; returns the alerts
    /// that fired (usually none).
    pub fn observe(
        &mut self,
        at: SimTime,
        proc: ProcId,
        counters: &[(&'static str, u64)],
        gauges: &[(&'static str, u64)],
    ) -> Vec<Alert> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        if proc.index() >= self.procs.len() {
            self.procs.resize(proc.index() + 1, ProcHealth::default());
        }
        let cfg = self.cfg;
        let st = &mut self.procs[proc.index()];
        let mut out = Vec::new();

        // backlog_growth: the relay backlog depth rose strictly for N
        // consecutive windows — relays are being produced faster than they
        // drain (or drainage is wedged entirely).
        if cfg.backlog_growth_windows > 0 {
            if let Some(depth) = lookup(gauges, "relay.backlog_depth") {
                match st.last_backlog {
                    Some(prev) if depth > prev => st.backlog_rising += 1,
                    Some(_) => {
                        st.backlog_rising = 0;
                        st.backlog_latched = false;
                    }
                    None => {}
                }
                st.last_backlog = Some(depth);
                if st.backlog_rising >= cfg.backlog_growth_windows && !st.backlog_latched {
                    st.backlog_latched = true;
                    out.push(Alert {
                        at,
                        proc,
                        rule: "backlog_growth",
                        value: depth,
                        threshold: cfg.backlog_growth_windows as u64,
                        windows: st.backlog_rising,
                    });
                }
            }
        }

        // parked_write_stall: the oldest parked client write has dwelled
        // past the bound — a liveness smell (the wedged-merge livelock's
        // online signature).
        if cfg.parked_dwell_ticks > 0 {
            if let Some(dwell) = lookup(gauges, "proc.parked_dwell") {
                if dwell > cfg.parked_dwell_ticks {
                    if !st.dwell_latched {
                        st.dwell_latched = true;
                        out.push(Alert {
                            at,
                            proc,
                            rule: "parked_write_stall",
                            value: dwell,
                            threshold: cfg.parked_dwell_ticks,
                            windows: 1,
                        });
                    }
                } else {
                    st.dwell_latched = false;
                }
            }
        }

        // retransmit_storm: the session layer's retransmission counter
        // jumped by more than the bound within one window.
        if cfg.retransmit_storm_delta > 0 {
            if let Some(now) = lookup(counters, "session.retransmissions") {
                if let Some(prev) = st.last_retrans {
                    let delta = now.saturating_sub(prev);
                    if delta > cfg.retransmit_storm_delta {
                        if !st.storm_latched {
                            st.storm_latched = true;
                            out.push(Alert {
                                at,
                                proc,
                                rule: "retransmit_storm",
                                value: delta,
                                threshold: cfg.retransmit_storm_delta,
                                windows: 1,
                            });
                        }
                    } else {
                        st.storm_latched = false;
                    }
                }
                st.last_retrans = Some(now);
            }
        }

        // suspect_flapping: the failure detector changed its mind too often
        // within one window (suspect+alive transitions both count).
        if cfg.flap_transitions > 0 {
            let flaps = match (
                lookup(counters, "detector.suspects"),
                lookup(counters, "detector.alives"),
            ) {
                (None, None) => None,
                (s, a) => Some(s.unwrap_or(0) + a.unwrap_or(0)),
            };
            if let Some(now) = flaps {
                if let Some(prev) = st.last_flaps {
                    let delta = now.saturating_sub(prev);
                    if delta > cfg.flap_transitions {
                        if !st.flap_latched {
                            st.flap_latched = true;
                            out.push(Alert {
                                at,
                                proc,
                                rule: "suspect_flapping",
                                value: delta,
                                threshold: cfg.flap_transitions,
                                windows: 1,
                            });
                        }
                    } else {
                        st.flap_latched = false;
                    }
                }
                st.last_flaps = Some(now);
            }
        }

        out
    }
}

/// End-of-run summary of everything the watchdogs fired, with a pinned
/// JSON shape (`obsctl` and the CI must-alert guard parse it).
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    /// Total alerts fired.
    pub alerts: u64,
    /// Alert counts per rule name, in name order.
    pub by_rule: BTreeMap<&'static str, u64>,
    /// Alert counts per processor, in processor order.
    pub by_proc: BTreeMap<u32, u64>,
    /// Time of the first alert, if any fired.
    pub first_at: Option<u64>,
    /// Time of the last alert, if any fired.
    pub last_at: Option<u64>,
}

impl HealthReport {
    /// Summarize a run's alert stream.
    pub fn build(alerts: &[Alert]) -> Self {
        let mut r = HealthReport {
            alerts: alerts.len() as u64,
            ..HealthReport::default()
        };
        for a in alerts {
            *r.by_rule.entry(a.rule).or_insert(0) += 1;
            *r.by_proc.entry(a.proc.0).or_insert(0) += 1;
            let t = a.at.ticks();
            r.first_at = Some(r.first_at.map_or(t, |f| f.min(t)));
            r.last_at = Some(r.last_at.map_or(t, |l| l.max(t)));
        }
        r
    }

    /// `true` when no watchdog fired.
    pub fn healthy(&self) -> bool {
        self.alerts == 0
    }

    /// The pinned report JSON (one object, no trailing newline).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |t| t.to_string());
        let mut s = format!(
            "{{\"healthy\":{},\"alerts\":{},\"first_at\":{},\"last_at\":{},\"rules\":{{",
            self.healthy(),
            self.alerts,
            opt(self.first_at),
            opt(self.last_at),
        );
        for (i, (rule, n)) in self.by_rule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, rule);
            s.push_str(&format!("\":{n}"));
        }
        s.push_str("},\"procs\":{");
        for (i, (p, n)) in self.by_proc.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{p}\":{n}"));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: &mut HealthMonitor, at: u64, gauges: &[(&'static str, u64)]) -> Vec<Alert> {
        m.observe(SimTime(at), ProcId(0), &[], gauges)
    }

    #[test]
    fn disabled_monitor_never_fires() {
        let mut m = HealthMonitor::new(HealthConfig::default(), 1);
        for i in 0..10 {
            assert!(sample(&mut m, i * 10, &[("relay.backlog_depth", i * 5)]).is_empty());
        }
    }

    #[test]
    fn backlog_growth_fires_once_per_incident() {
        let cfg = HealthConfig {
            enabled: true,
            backlog_growth_windows: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, 1);
        // Strictly rising: fires exactly at the 3rd consecutive rise.
        assert!(sample(&mut m, 0, &[("relay.backlog_depth", 1)]).is_empty());
        assert!(sample(&mut m, 10, &[("relay.backlog_depth", 2)]).is_empty());
        assert!(sample(&mut m, 20, &[("relay.backlog_depth", 3)]).is_empty());
        let fired = sample(&mut m, 30, &[("relay.backlog_depth", 4)]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "backlog_growth");
        assert_eq!(fired[0].windows, 3);
        // Still rising: latched, no second alert.
        assert!(sample(&mut m, 40, &[("relay.backlog_depth", 9)]).is_empty());
        // Recovery re-arms; a fresh climb fires again.
        assert!(sample(&mut m, 50, &[("relay.backlog_depth", 1)]).is_empty());
        for (i, d) in [2u64, 3, 4].iter().enumerate() {
            let fired = sample(&mut m, 60 + 10 * i as u64, &[("relay.backlog_depth", *d)]);
            assert_eq!(fired.len(), usize::from(*d == 4));
        }
    }

    #[test]
    fn parked_dwell_threshold_is_hysteretic() {
        let cfg = HealthConfig {
            enabled: true,
            parked_dwell_ticks: 100,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, 1);
        assert!(sample(&mut m, 0, &[("proc.parked_dwell", 100)]).is_empty());
        let fired = sample(&mut m, 10, &[("proc.parked_dwell", 101)]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "parked_write_stall");
        assert!(sample(&mut m, 20, &[("proc.parked_dwell", 500)]).is_empty());
        assert!(sample(&mut m, 30, &[("proc.parked_dwell", 0)]).is_empty());
        assert_eq!(sample(&mut m, 40, &[("proc.parked_dwell", 200)]).len(), 1);
    }

    #[test]
    fn retransmit_storm_watches_the_window_delta() {
        let cfg = HealthConfig {
            enabled: true,
            retransmit_storm_delta: 10,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, 1);
        let c = |v| vec![("session.retransmissions", v)];
        assert!(m.observe(SimTime(0), ProcId(0), &c(100), &[]).is_empty());
        // +5 within the window: fine. +11: storm.
        assert!(m.observe(SimTime(10), ProcId(0), &c(105), &[]).is_empty());
        let fired = m.observe(SimTime(20), ProcId(0), &c(116), &[]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "retransmit_storm");
        assert_eq!(fired[0].value, 11);
    }

    #[test]
    fn flapping_sums_suspect_and_alive_transitions() {
        let cfg = HealthConfig {
            enabled: true,
            flap_transitions: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, 1);
        let c = |s, a| vec![("detector.suspects", s), ("detector.alives", a)];
        assert!(m.observe(SimTime(0), ProcId(0), &c(0, 0), &[]).is_empty());
        assert!(m.observe(SimTime(10), ProcId(0), &c(1, 1), &[]).is_empty());
        let fired = m.observe(SimTime(20), ProcId(0), &c(3, 3), &[]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "suspect_flapping");
        assert_eq!(fired[0].value, 4);
    }

    #[test]
    fn rules_are_tracked_per_processor() {
        let cfg = HealthConfig {
            enabled: true,
            backlog_growth_windows: 2,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg, 2);
        for (at, d) in [(0u64, 1u64), (10, 2), (20, 3)] {
            // Proc 1 rises; proc 0 stays flat and must not fire.
            assert!(m
                .observe(SimTime(at), ProcId(0), &[], &[("relay.backlog_depth", 1)])
                .is_empty());
            let fired = m.observe(SimTime(at), ProcId(1), &[], &[("relay.backlog_depth", d)]);
            assert_eq!(fired.len(), usize::from(d == 3));
            if d == 3 {
                assert_eq!(fired[0].proc, ProcId(1));
            }
        }
    }

    #[test]
    fn alert_and_report_json_shapes_are_pinned() {
        let a = Alert {
            at: SimTime(120),
            proc: ProcId(2),
            rule: "backlog_growth",
            value: 40,
            threshold: 4,
            windows: 5,
        };
        assert_eq!(
            a.to_json(),
            "{\"at\":120,\"proc\":2,\"rule\":\"backlog_growth\",\
             \"value\":40,\"threshold\":4,\"windows\":5}"
        );
        let b = Alert {
            at: SimTime(300),
            proc: ProcId(2),
            rule: "retransmit_storm",
            value: 80,
            threshold: 64,
            windows: 1,
        };
        let report = HealthReport::build(&[a, b]);
        assert!(!report.healthy());
        assert_eq!(
            report.to_json(),
            "{\"healthy\":false,\"alerts\":2,\"first_at\":120,\"last_at\":300,\
             \"rules\":{\"backlog_growth\":1,\"retransmit_storm\":1},\"procs\":{\"2\":2}}"
        );
        let empty = HealthReport::build(&[]);
        assert!(empty.healthy());
        assert_eq!(
            empty.to_json(),
            "{\"healthy\":true,\"alerts\":0,\"first_at\":null,\"last_at\":null,\
             \"rules\":{},\"procs\":{}}"
        );
    }
}
