//! Shared test support for the equivalence and exploration suites.
//!
//! Three test families — `tests/threaded_equivalence.rs`,
//! `tests/trace_equivalence.rs`, `crates/dhash/tests/threaded_equivalence.rs`
//! and the explorer's perturbed-schedule suite — drive the *same* workloads
//! over different substrates and compare schedule-independent facts. The
//! seed lists and workload generators they share used to be copy-pasted
//! into each file; they live here instead so a seed added to the matrix is
//! added everywhere at once, and so a divergence between suites can only
//! come from the runtimes, never from drifted workload definitions.
//!
//! Everything here is deterministic in its arguments: no ambient RNG, no
//! clocks. The equivalence argument depends on it — see
//! [`blink_fresh_workload`].

#![warn(missing_docs)]

use std::collections::BTreeMap;

use dbtree::{BuildSpec, ClientOp, Intent, ProtocolKind, TreeConfig};
use dhash::{HKind, HashOp, HashSpec};
use simnet::ProcId;

/// The canonical seed matrix for cross-runtime equivalence suites.
pub const EQ_SEEDS: std::ops::Range<u64> = 0..8;

/// Processor count used by the equivalence workloads.
pub const EQ_N_PROCS: u32 = 4;

/// Processor count used by the trace-reconstruction workload.
pub const TRACE_N_PROCS: u32 = 3;

/// Simulator seed pinned by the trace-equivalence suite (and reused by the
/// explorer's perturbed-trace runs so their artifacts are comparable).
pub const TRACE_SEED: u64 = 17;

/// Ring-buffer capacity big enough to retain a whole trace-suite run.
pub const TRACE_CAP: usize = 1 << 16;

/// The dB-tree equivalence workload: preload on a coarse grid; inserts land
/// at seed-dependent off-grid offsets so they are fresh, mutually distinct,
/// and disjoint across seeds. Because every insert targets a distinct fresh
/// key with a value derived from the key, the final key→value contents are
/// schedule-independent — the property every equivalence suite compares.
///
/// Returns `(preload, ops, expected final contents)`.
pub fn blink_fresh_workload(
    seed: u64,
    n_inserts: u64,
) -> (Vec<u64>, Vec<ClientOp>, BTreeMap<u64, u64>) {
    let preload: Vec<u64> = (0..120).map(|k| k * 50).collect();
    let mut expected: BTreeMap<u64, u64> = preload.iter().map(|&k| (k, k)).collect();
    let mut ops = Vec::new();
    for i in 0..n_inserts {
        let origin = ProcId(((i + seed) % EQ_N_PROCS as u64) as u32);
        let key = i * 50 + 1 + (seed % 48);
        let value = key * 3 + 7;
        expected.insert(key, value);
        ops.push(ClientOp {
            origin,
            key,
            intent: Intent::Insert(value),
        });
        // Interleave searches of preloaded keys (no effect on contents).
        if i % 3 == 0 {
            ops.push(ClientOp {
                origin,
                key: (i * 150) % 6000,
                intent: Intent::Search,
            });
        }
    }
    (preload, ops, expected)
}

/// The hash-table equivalence workload, same fresh-key discipline as
/// [`blink_fresh_workload`]: distinct stride-7 keys per seed, value derived
/// from the key, so final contents are schedule-independent.
///
/// Returns `(spec, ops, expected final contents)`.
pub fn hash_fresh_workload(
    seed: u64,
    n_inserts: u64,
) -> (HashSpec, Vec<HashOp>, BTreeMap<u64, u64>) {
    let spec = HashSpec {
        preload: (0..60).map(|k| k * 3).collect(),
        n_procs: EQ_N_PROCS,
        cfg: Default::default(),
    };
    let mut expected: BTreeMap<u64, u64> = spec.preload.iter().map(|&k| (k, k)).collect();
    let mut ops = Vec::new();
    for i in 0..n_inserts {
        let r = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let origin = ProcId((r % EQ_N_PROCS as u64) as u32);
        // Distinct fresh keys (stride 7, seed offset) — inserts never
        // conflict, so the final contents don't depend on completion order.
        let key = 10_000 + i * 7 + seed;
        expected.insert(key, key + 1);
        ops.push(HashOp {
            origin,
            key,
            kind: HKind::Insert(key + 1),
        });
        if i % 3 == 0 {
            ops.push(HashOp {
                origin,
                key: (i * 9) % 180, // preloaded territory
                kind: HKind::Search,
            });
        }
    }
    (spec, ops, expected)
}

/// The trace-reconstruction deployment: fanout-8 leaves preloaded close to
/// capacity so the insert burst from [`split_burst_ops`] forces a split,
/// and 3-copy replication so the split runs the full relayed cascade
/// (split.relay, copy installs, relays to every copy).
pub fn split_burst_spec() -> BuildSpec {
    let preload: Vec<u64> = (0..40).map(|k| k * 20).collect();
    BuildSpec::new(
        preload,
        TRACE_N_PROCS,
        TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3),
    )
}

/// The insert burst that overflows one leaf of [`split_burst_spec`], plus
/// two searches — one of which must chase into the fresh sibling.
pub fn split_burst_ops() -> Vec<ClientOp> {
    let mut ops = Vec::new();
    // Nine inserts into one leaf's range: guaranteed to overflow it.
    for i in 0..9u64 {
        ops.push(ClientOp {
            origin: ProcId((i % TRACE_N_PROCS as u64) as u32),
            key: 401 + i,
            intent: Intent::Insert(1000 + i),
        });
    }
    // Searches, one of which must chase into the fresh sibling.
    ops.push(ClientOp {
        origin: ProcId(2),
        key: 405,
        intent: Intent::Search,
    });
    ops.push(ClientOp {
        origin: ProcId(0),
        key: 60,
        intent: Intent::Search,
    });
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_workloads_are_fresh_and_disjoint_across_seeds() {
        let mut all_keys = std::collections::BTreeSet::new();
        for seed in EQ_SEEDS {
            let (preload, ops, expected) = blink_fresh_workload(seed, 60);
            for op in &ops {
                if let Intent::Insert(_) = op.intent {
                    assert!(
                        !preload.contains(&op.key),
                        "insert key collides with preload"
                    );
                    assert!(all_keys.insert((seed, op.key)), "duplicate insert key");
                    assert!(expected.contains_key(&op.key));
                }
            }
        }
    }

    #[test]
    fn hash_workload_values_derive_from_keys() {
        let (_, ops, expected) = hash_fresh_workload(3, 80);
        for op in &ops {
            if let HKind::Insert(v) = op.kind {
                assert_eq!(v, op.key + 1);
                assert_eq!(expected.get(&op.key), Some(&v));
            }
        }
    }
}
