//! The model checker: bounded-exhaustive schedule search with dynamic
//! partial-order reduction (DPOR).
//!
//! Where [`crate::explorer`] *samples* the schedule space, this module
//! *enumerates* it — depth-first over the scheduler's choice points, with
//! three classic prunings layered on top:
//!
//! * **DPOR backtrack sets** (Flanagan–Godefroid). A fresh choice point
//!   starts with only the choice actually taken; after each run a race
//!   analysis walks the executed steps, and wherever two *dependent* steps
//!   could have fired in the other order it plants the later step as a
//!   backtrack point at the earlier one. Independent (commuting) pairs are
//!   never permuted. The independence relation is seeded from the §4.1
//!   taxonomy ([`history::shapes_commute`]): two deliveries to the same
//!   processor are independent when both payloads are pure lazy-update
//!   relays whose shapes commute in every state — see [`shape_of`].
//! * **Sleep sets.** Choices fully explored at an ancestor stay "asleep"
//!   along sibling branches until some dependent step wakes them, so the
//!   tail scheduler never re-runs a continuation an earlier branch covered.
//! * **Visited-state pruning.** After every step of a fault-free run the
//!   simulator's logical fingerprint ([`simnet::Simulation::fingerprint`])
//!   is recorded with the step index it was first reached at; re-reaching a
//!   fingerprint no shallower than before caps how far the run extends the
//!   choice-point stack. (DPOR plus state caching is known to be able to
//!   skip interleavings a pure DPOR search would visit; this checker
//!   accepts that — the bounded depth already makes the search a bug
//!   hunter, not a proof.)
//!
//! The search is **depth-bounded**: only the first [`CheckOptions::depth`]
//! steps of a run become choice points; beyond the bound the run continues
//! under a fair (FIFO-among-awake) tail to quiescence, where the full
//! oracle stack — including the liveness probes of
//! [`crate::scenario`] — judges it. A run that never quiesces within
//! [`CheckOptions::max_steps`] scheduled steps is itself a liveness
//! violation (the fair-schedule bound).
//!
//! The entire frontier — the choice-point stack, the visited set, the
//! schedule count — is a plain value ([`CheckState`]) that
//! [`crate::frontier`] persists to disk, so a budget-capped run is
//! resumable: relaunching replays the saved stack prefix once and
//! continues where it stopped, skipping double-visits via the saved
//! fingerprints.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use history::{shapes_commute, Shape};
use simnet::{Choice, ChoiceKind, Scheduler, SimTime};

use crate::scenario::{build_blink, finish_blink, Proto, RunReport, Scenario};
use crate::shrink::{shrink, Failure, ShrinkStats};

/// Race-analysis bound: runs longer than this only have their first
/// `ANALYSIS_CAP` steps analysed for backtrack points (the happens-before
/// closure is quadratic). Choice points never exceed `depth` anyway, so the
/// cap only limits how far *ahead* a race can look; runs this long are tail
/// traffic (retransmissions) far past every choice point.
const ANALYSIS_CAP: usize = 2_048;

/// Map a delivery label (see [`simnet::Choice::label`]) to its §4.1 action
/// shape, for the independence relation. Only the **pure apply-relays** are
/// mapped — deliveries whose handler just applies a lazy update to the
/// local replica. Initial actions (`insert.initial`, `split.start`,
/// `merge.absorb`, ...) also run decision logic (splitting, forwarding,
/// grant protocol), so they stay conservatively dependent on everything at
/// the same processor, as do all structural/control messages.
pub fn shape_of(label: &str) -> Option<Shape> {
    Some(match label {
        "insert.relay" => Shape::InsertRelayed,
        "split.relay" => Shape::SplitRelayed,
        "merge.retire-relay" => Shape::RetireRelayed,
        "merge.absorb-relay" => Shape::AbsorbRelayed,
        _ => return None,
    })
}

/// The checker's independence relation over enabled choices.
///
/// Choices targeting different processors always commute: each step mutates
/// only its target's state, and channel FIFO order is preserved by the
/// enabled-set construction itself. At the same processor everything is
/// dependent **except** two relay deliveries whose shapes the §4.1
/// commutativity table proves commute in every state — the assume/guarantee
/// reduction the paper's history theory buys the checker.
pub fn dependent(a: &Choice, b: &Choice) -> bool {
    if a.to != b.to {
        return false;
    }
    if a.kind == ChoiceKind::Deliver && b.kind == ChoiceKind::Deliver {
        if let (Some(sa), Some(sb)) = (shape_of(a.label), shape_of(b.label)) {
            if shapes_commute(sa, sb) && shapes_commute(sb, sa) {
                return false;
            }
        }
    }
    true
}

/// Tunables for one [`check`] run.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Apply DPOR backtrack/sleep sets. Off = plain bounded-exhaustive
    /// enumeration (every enabled choice at every point), the baseline the
    /// CI smoke job compares reduction against.
    pub dpor: bool,
    /// Choice-point depth: scheduler picks beyond this many steps are fair
    /// FIFO, not branched over.
    pub depth: usize,
    /// Stop after this many schedules (this session; resumable).
    pub max_schedules: u64,
    /// Per-run scheduled-step bound; exceeding it is a liveness violation.
    pub max_steps: u64,
    /// Keep (and shrink) at most this many failures; further failing runs
    /// are only counted.
    pub max_failures: usize,
    /// Shrink budget (candidate replays) per kept failure; 0 = keep raw.
    pub shrink_candidates: u64,
    /// Prune subtrees whose post-state fingerprint was already visited at
    /// the same or a shallower step. Automatically inert when the fault
    /// plan makes fingerprints unavailable.
    pub prune_visited: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            dpor: true,
            depth: 20,
            max_schedules: 5_000,
            max_steps: 20_000,
            max_failures: 5,
            shrink_candidates: 400,
            prune_visited: true,
        }
    }
}

/// One persisted choice point: which event is currently selected, which are
/// scheduled to be tried (backtrack), which are finished (done). The
/// enabled set itself is *not* persisted — it is a deterministic function
/// of the prefix and is refreshed from the first replayed run on resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameState {
    /// Sequence number of the event this branch of the DFS fires here.
    pub selected: u64,
    /// Event seqs scheduled for exploration at this point.
    pub backtrack: Vec<u64>,
    /// Event seqs fully explored at this point.
    pub done: Vec<u64>,
}

/// The resumable search frontier: everything [`check`] needs to continue
/// where a previous session stopped. Serialized by [`crate::frontier`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckState {
    /// The DFS stack of choice points (root first).
    pub frames: Vec<FrameState>,
    /// Visited-state store: `(fingerprint, earliest step reached at)`.
    pub visited: Vec<(u64, u32)>,
    /// Schedules executed across all sessions.
    pub schedules: u64,
    /// The frontier is exhausted; nothing left to explore.
    pub complete: bool,
}

/// What a [`check`] session did.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Schedules executed this session.
    pub schedules: u64,
    /// Schedules executed across all sessions (resume-aware).
    pub total_schedules: u64,
    /// Scheduler steps executed this session.
    pub steps: u64,
    /// Runs whose frame extension was cut short by a visited fingerprint.
    pub pruned: u64,
    /// Backtrack points planted by the race analysis.
    pub races: u64,
    /// Slept choices skipped over by the fair tail scheduler.
    pub sleep_skips: u64,
    /// Runs on which at least one oracle fired (kept or not).
    pub failing_runs: u64,
    /// Stopped by [`CheckOptions::max_schedules`] with frontier remaining.
    pub capped: bool,
    /// The frontier is exhausted: every schedule in the bound was covered.
    pub complete: bool,
    /// Kept failures, shrunk when a budget was given.
    pub failures: Vec<Failure>,
    /// Aggregate shrink effort across kept failures.
    pub shrink_stats: ShrinkStats,
}

/// Can [`check`] explore this scenario? Blink scenarios only (the hash
/// table has no independence theory to reduce with), and no timed
/// partitions (not schedulable as choices).
pub fn supports(scenario: &Scenario) -> bool {
    matches!(scenario.proto, Proto::Blink { .. }) && scenario.faults.partitions.is_empty()
}

/// In-memory frame: [`FrameState`] plus the cached enabled set (refreshed
/// from the next run after a resume, when it starts out empty).
#[derive(Clone, Debug)]
struct Frame {
    enabled: Vec<Choice>,
    selected: u64,
    backtrack: BTreeSet<u64>,
    done: BTreeSet<u64>,
}

/// One executed scheduler step, as recorded by the [`Driver`].
#[derive(Clone, Debug)]
struct StepRec {
    enabled: Vec<Choice>,
    chosen: Choice,
    chosen_idx: u32,
    created: std::ops::Range<u64>,
    fp: Option<u64>,
}

#[derive(Default)]
struct RunLog {
    steps: Vec<StepRec>,
    sleep_skips: u64,
}

/// The scheduler that executes one DFS branch: replay the frame stack's
/// selected seqs, run a tail that skips slept choices while still inside
/// the branching depth, then fall back to plain FIFO, recording every step
/// for the race analysis.
struct Driver {
    prefix: Vec<u64>,
    sleep: Vec<Choice>,
    /// The search's branching bound. Sleep-set skipping only applies to
    /// steps that can become frames (`k < depth`); past the bound the tail
    /// is pure FIFO. Skipping there would buy no pruning (the tail never
    /// branches) and can *starve* a slept event — e.g. a crash-restart
    /// control event independent of everything a retransmission loop keeps
    /// generating — turning a fair, quiescing schedule into a false
    /// livelock report.
    depth: usize,
    log: Rc<RefCell<RunLog>>,
}

impl Scheduler for Driver {
    fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
        let k = self.log.borrow().steps.len();
        let idx = if k < self.prefix.len() {
            // Deterministic replay: the same prefix always re-produces the
            // same enabled set, so the selected seq is present. The FIFO
            // fallback keeps a (hypothetically) diverged run legal.
            enabled
                .iter()
                .position(|c| c.seq == self.prefix[k])
                .unwrap_or(0)
        } else if k < self.depth {
            // Within the branching bound: oldest enabled choice that is not
            // asleep. If every choice is asleep the continuation is provably
            // redundant, but the run must still go somewhere — take the
            // oldest.
            match enabled
                .iter()
                .position(|c| !self.sleep.iter().any(|s| s.seq == c.seq))
            {
                Some(i) => {
                    self.log.borrow_mut().sleep_skips += i as u64;
                    i
                }
                None => 0,
            }
        } else {
            // Beyond the bound: fair FIFO, no skipping (see `depth`).
            0
        };
        let chosen = enabled[idx];
        if k >= self.prefix.len() && k < self.depth {
            // Sleeping choices wake when a dependent step fires.
            self.sleep.retain(|s| !dependent(s, &chosen));
        }
        self.log.borrow_mut().steps.push(StepRec {
            enabled: enabled.to_vec(),
            chosen,
            chosen_idx: idx as u32,
            created: 0..0,
            fp: None,
        });
        idx
    }

    fn fired(&mut self, _chosen: &Choice, created: std::ops::Range<u64>) {
        if let Some(s) = self.log.borrow_mut().steps.last_mut() {
            s.created = created;
        }
    }
}

struct RunOutcome {
    report: RunReport,
    steps: Vec<StepRec>,
    sleep_skips: u64,
}

/// Execute one schedule: build the cluster, drive it step by step under the
/// [`Driver`] (fingerprinting after each step when pruning), then apply the
/// oracle stack at quiescence — or synthesize the fair-schedule-bound
/// liveness violation if the run never got there.
fn run_one(
    scenario: &Scenario,
    opts: &CheckOptions,
    prefix: Vec<u64>,
    sleep: Vec<Choice>,
) -> RunOutcome {
    let Proto::Blink {
        protocol,
        fanout,
        merge,
    } = scenario.proto
    else {
        unreachable!("check() rejects unsupported scenarios up front");
    };
    let mut cluster = build_blink(scenario, protocol, fanout, merge);
    let log = Rc::new(RefCell::new(RunLog::default()));
    cluster.sim.set_scheduler(Box::new(Driver {
        prefix,
        sleep,
        depth: opts.depth,
        log: Rc::clone(&log),
    }));

    let mut steps_run = 0u64;
    let mut capped = false;
    loop {
        if steps_run >= opts.max_steps {
            capped = true;
            break;
        }
        if !cluster.sim.step() {
            break;
        }
        steps_run += 1;
        if opts.prune_visited {
            let fp = cluster.sim.fingerprint();
            if let Some(s) = log.borrow_mut().steps.last_mut() {
                s.fp = fp;
            }
        }
    }

    let report = if capped {
        RunReport {
            violations: vec![format!(
                "liveness: no quiescence within {} scheduled steps \
                 (fair-schedule bound exceeded — livelock)",
                opts.max_steps
            )],
            completed: 0,
        }
    } else {
        finish_blink(scenario, &mut cluster)
    };
    let mut log = log.borrow_mut();
    RunOutcome {
        report,
        steps: std::mem::take(&mut log.steps),
        sleep_skips: log.sleep_skips,
    }
}

/// The sleep set the tail scheduler starts with, recomputed from the frame
/// stack: walking root to top, siblings fully explored at each frame join
/// the set, and whatever the frame's selected step is dependent with is
/// woken. Frames with an unrefreshed enabled set (just resumed) reset the
/// chain — sound (sleep sets only skip redundant work), merely less pruned
/// for that one run.
fn sleep_chain(frames: &[Frame]) -> Vec<Choice> {
    let mut sleep: Vec<Choice> = Vec::new();
    for f in frames {
        let Some(sel) = f.enabled.iter().find(|c| c.seq == f.selected).copied() else {
            return Vec::new();
        };
        for c in &f.enabled {
            if f.done.contains(&c.seq)
                && c.seq != f.selected
                && !sleep.iter().any(|s| s.seq == c.seq)
            {
                sleep.push(*c);
            }
        }
        sleep.retain(|s| !dependent(s, &sel));
    }
    sleep
}

/// The DPOR race analysis: find executed step pairs `(i, j)` that were
/// *racing* — dependent, `j`'s event already pending when `i` fired, and
/// not ordered through any intermediate step — and plant backtrack points
/// at `i` so the reversed order gets explored. Returns how many points were
/// planted.
fn add_backtracks(frames: &mut [Frame], steps: &[StepRec]) -> u64 {
    let n = steps.len().min(ANALYSIS_CAP);
    if n == 0 || frames.is_empty() {
        return 0;
    }
    // pred[j]: bitset of steps i < j with i →hb j (dependence ∪ creation
    // edges, transitively closed in execution order).
    let words = n.div_ceil(64);
    let mut pred: Vec<Vec<u64>> = Vec::with_capacity(n);
    for j in 0..n {
        let mut bits = vec![0u64; words];
        for i in 0..j {
            let direct = steps[i].created.contains(&steps[j].chosen.seq)
                || dependent(&steps[i].chosen, &steps[j].chosen);
            if direct {
                bits[i / 64] |= 1 << (i % 64);
                for w in 0..words {
                    bits[w] |= pred[i][w];
                }
            }
        }
        pred.push(bits);
    }
    let has = |set: &[u64], i: usize| set[i / 64] >> (i % 64) & 1 == 1;

    let mut planted = 0u64;
    for j in 1..n {
        for i in 0..j.min(frames.len()) {
            if !dependent(&steps[i].chosen, &steps[j].chosen) {
                continue;
            }
            // `j`'s event must have been pending (hence schedulable) before
            // step `i` fired — otherwise there is no reversal to explore.
            if steps[j].chosen.seq >= steps[i].created.start {
                continue;
            }
            // Ordered through an intermediate step ⇒ the reversal is not
            // reachable by flipping this one pair.
            if (i + 1..j).any(|k| has(&pred[j], k) && has(&pred[k], i)) {
                continue;
            }
            let f = &mut frames[i];
            if f.enabled.iter().any(|c| c.seq == steps[j].chosen.seq) {
                if f.backtrack.insert(steps[j].chosen.seq) {
                    planted += 1;
                }
            } else {
                // The racing event is pending but not currently enabled at
                // `i` (behind its channel head): conservatively schedule
                // everything, per Flanagan–Godefroid.
                for c in f.enabled.clone() {
                    if f.backtrack.insert(c.seq) {
                        planted += 1;
                    }
                }
            }
        }
    }
    planted
}

/// Run the bounded-exhaustive search. `resume` continues a saved frontier
/// (pass the [`CheckState`] a previous call returned); `None` starts fresh.
/// Returns the session report and the frontier to persist.
///
/// Errors if [`supports`] rejects the scenario.
pub fn check(
    scenario: &Scenario,
    opts: &CheckOptions,
    resume: Option<CheckState>,
) -> Result<(CheckReport, CheckState), String> {
    if !supports(scenario) {
        return Err("model checking supports blink scenarios without timed partitions".into());
    }
    let state = resume.unwrap_or_default();
    let mut frames: Vec<Frame> = state
        .frames
        .iter()
        .map(|f| Frame {
            enabled: Vec::new(), // refreshed from the first replayed run
            selected: f.selected,
            backtrack: f.backtrack.iter().copied().collect(),
            done: f.done.iter().copied().collect(),
        })
        .collect();
    let mut visited: HashMap<u64, u32> = state.visited.iter().copied().collect();
    let mut total_schedules = state.schedules;
    let mut report = CheckReport::default();

    if state.complete {
        report.complete = true;
        report.total_schedules = total_schedules;
        return Ok((report, state));
    }

    loop {
        if report.schedules >= opts.max_schedules {
            report.capped = true;
            break;
        }
        let prefix: Vec<u64> = frames.iter().map(|f| f.selected).collect();
        let sleep = if opts.dpor {
            sleep_chain(&frames)
        } else {
            Vec::new()
        };
        let out = run_one(scenario, opts, prefix, sleep);
        report.schedules += 1;
        total_schedules += 1;
        report.steps += out.steps.len() as u64;
        report.sleep_skips += out.sleep_skips;

        // Refresh enabled sets on frames restored from a saved frontier.
        for (f, s) in frames.iter_mut().zip(&out.steps) {
            if f.enabled.is_empty() {
                f.enabled = s.enabled.clone();
            }
        }

        if !out.report.violations.is_empty() {
            report.failing_runs += 1;
            if report.failures.len() < opts.max_failures {
                let failure = Failure {
                    scenario: scenario.clone(),
                    choices: out.steps.iter().map(|s| s.chosen_idx).collect(),
                    violations: out.report.violations.clone(),
                    strategy: if opts.dpor { "dpor" } else { "exhaustive" },
                    sched_seed: 0,
                };
                let kept = if opts.shrink_candidates > 0 {
                    let (best, stats) = shrink(&failure, opts.shrink_candidates);
                    report.shrink_stats.candidates += stats.candidates;
                    report.shrink_stats.accepted += stats.accepted;
                    best
                } else {
                    failure
                };
                report.failures.push(kept);
            }
        }

        // Visited-state pruning: a post-state re-reached no shallower than
        // before caps how far this run grows the stack — branch points in
        // the already-covered subtree are redundant. Only steps from the
        // current branch point onward are candidates: earlier prefix steps
        // re-produce their own previously recorded states on every run of
        // this subtree and must not prune the path they sit on. (Each
        // distinct prefix serves as a run's branch point exactly once, so
        // the scan never sees its own insertions.)
        let full_limit = out.steps.len().min(opts.depth);
        let mut limit = full_limit;
        let scan_from = frames.len().saturating_sub(1);
        for (i, s) in out.steps.iter().enumerate().take(limit).skip(scan_from) {
            let Some(fp) = s.fp else { continue };
            match visited.entry(fp) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if i as u32 >= *e.get() {
                        limit = i + 1;
                        if limit < full_limit {
                            report.pruned += 1;
                        }
                        break;
                    }
                    e.insert(i as u32);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i as u32);
                }
            }
        }
        // States beyond the extension limit still feed the visited store.
        for (i, s) in out.steps.iter().enumerate().skip(limit.max(scan_from)) {
            if let Some(fp) = s.fp {
                visited
                    .entry(fp)
                    .and_modify(|d| *d = (*d).min(i as u32))
                    .or_insert(i as u32);
            }
        }

        // Grow the stack with the fresh choice points this run executed.
        for s in out.steps.iter().take(limit).skip(frames.len()) {
            let backtrack: BTreeSet<u64> = if opts.dpor {
                [s.chosen.seq].into()
            } else {
                s.enabled.iter().map(|c| c.seq).collect()
            };
            frames.push(Frame {
                enabled: s.enabled.clone(),
                selected: s.chosen.seq,
                backtrack,
                done: BTreeSet::new(),
            });
        }

        if opts.dpor {
            report.races += add_backtracks(&mut frames, &out.steps);
        }

        // Advance the DFS: mark the top selected done, move to the next
        // backtrack candidate, popping exhausted frames.
        let mut advanced = false;
        while let Some(top) = frames.last_mut() {
            top.done.insert(top.selected);
            match top.backtrack.iter().find(|s| !top.done.contains(s)) {
                Some(&next) => {
                    top.selected = next;
                    advanced = true;
                    break;
                }
                None => {
                    frames.pop();
                }
            }
        }
        if !advanced {
            report.complete = true;
            break;
        }
    }

    report.total_schedules = total_schedules;
    let mut visited: Vec<(u64, u32)> = visited.into_iter().collect();
    visited.sort_unstable();
    let next = CheckState {
        frames: frames
            .iter()
            .map(|f| FrameState {
                selected: f.selected,
                backtrack: f.backtrack.iter().copied().collect(),
                done: f.done.iter().copied().collect(),
            })
            .collect(),
        visited,
        schedules: total_schedules,
        complete: report.complete,
    };
    Ok((report, next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{merge_race_scenario, wedged_merge_scenario, MergeMode};
    use simnet::ProcId;

    fn choice(seq: u64, to: u32, kind: ChoiceKind, label: &'static str) -> Choice {
        Choice {
            seq,
            at: SimTime(0),
            to: ProcId(to),
            from: Some(ProcId(9)),
            kind,
            label,
        }
    }

    /// The label→shape map only ever claims independence the §4.1 table
    /// backs: every mapped pair that `dependent` treats as commuting must
    /// commute in the derived table, and the structural merge messages
    /// (unmapped) must stay dependent — the Naive insert/split race and the
    /// unsafe-merge race both live on same-target structural pairs.
    #[test]
    fn independence_is_backed_by_the_taxonomy() {
        let relays = [
            "insert.relay",
            "split.relay",
            "merge.retire-relay",
            "merge.absorb-relay",
        ];
        for a in relays {
            for b in relays {
                let ca = choice(1, 0, ChoiceKind::Deliver, a);
                let cb = choice(2, 0, ChoiceKind::Deliver, b);
                let sa = shape_of(a).expect("mapped");
                let sb = shape_of(b).expect("mapped");
                assert_eq!(
                    dependent(&ca, &cb),
                    !(shapes_commute(sa, sb) && shapes_commute(sb, sa)),
                    "{a} vs {b} must mirror the table"
                );
            }
        }
        // Structural messages never commute with anything at one target.
        for s in ["insert.initial", "split.start", "merge.grant", "merge.req"] {
            let cs = choice(1, 0, ChoiceKind::Deliver, s);
            let cr = choice(2, 0, ChoiceKind::Deliver, "insert.relay");
            assert!(dependent(&cs, &cr), "{s} must stay dependent");
            assert!(dependent(&cr, &cs), "{s} must stay dependent (flipped)");
        }
        // Different targets always commute; timers/controls never do at one.
        let t0 = choice(1, 0, ChoiceKind::Deliver, "split.start");
        let t1 = choice(2, 1, ChoiceKind::Deliver, "split.start");
        assert!(!dependent(&t0, &t1));
        let timer = choice(3, 0, ChoiceKind::Timer, "timer");
        assert!(dependent(&t0, &timer));
    }

    /// A tiny exhaustive run over the safe merge-race scenario terminates
    /// with zero violations, and resuming a capped frontier picks up where
    /// it stopped without redoing schedules.
    #[test]
    fn safe_scenario_checks_clean_and_resumes() {
        let scenario = merge_race_scenario(MergeMode::Safe);
        let opts = CheckOptions {
            depth: 6,
            max_schedules: 40,
            shrink_candidates: 0,
            ..CheckOptions::default()
        };
        let (full, _) = check(&scenario, &opts, None).expect("supported");
        assert!(full.schedules > 1, "the race must branch");
        assert_eq!(full.failing_runs, 0, "safe merge survives every schedule");

        // Same search, chunked through the frontier.
        let chunk = CheckOptions {
            max_schedules: 7,
            ..opts.clone()
        };
        let mut state: Option<CheckState> = None;
        let mut total = 0u64;
        for _ in 0..32 {
            let (r, s) = check(&scenario, &chunk, state.take()).expect("supported");
            total += r.schedules;
            let done = r.complete;
            state = Some(s);
            if done {
                break;
            }
        }
        assert!(state.unwrap().complete, "chunked search must finish");
        // Resuming resets the sleep chain (enabled sets are not persisted),
        // so tails — and thus exact counts — may differ from the one-shot
        // search; the frontier still guarantees no branch is run twice and
        // the whole bound gets covered.
        assert!(total > 1, "chunked search explored {total} schedules");
    }

    /// The wedged scenario trips the liveness oracles on the very first
    /// schedule and the failure shrinks to a pure-delete repro.
    #[test]
    fn wedged_scenario_trips_liveness_and_shrinks() {
        let scenario = wedged_merge_scenario();
        let opts = CheckOptions {
            depth: 4,
            max_schedules: 5,
            max_failures: 1,
            shrink_candidates: 200,
            ..CheckOptions::default()
        };
        let (report, _) = check(&scenario, &opts, None).expect("supported");
        assert!(report.failing_runs > 0, "every wedged schedule livelocks");
        let f = &report.failures[0];
        assert!(
            f.violations.iter().any(|v| v.starts_with("liveness:")),
            "violations: {:?}",
            f.violations
        );
        assert!(
            f.scenario.ops.len() <= 2,
            "shrinks to the emptying deletes, got {:?}",
            f.scenario.ops
        );
    }

    /// DPOR must explore strictly fewer schedules than the unreduced
    /// enumeration on the same bound, and still catch the unsafe-merge bug.
    #[test]
    fn dpor_reduces_and_still_catches_the_bug() {
        let scenario = merge_race_scenario(MergeMode::Unsafe);
        let base = CheckOptions {
            depth: 5,
            max_schedules: 2_000,
            max_failures: 1,
            shrink_candidates: 0,
            ..CheckOptions::default()
        };
        let unreduced = CheckOptions {
            dpor: false,
            ..base.clone()
        };
        let (a, _) = check(&scenario, &unreduced, None).expect("supported");
        let (b, _) = check(&scenario, &base, None).expect("supported");
        assert!(b.complete, "DPOR search must finish in the budget");
        assert!(
            b.schedules < a.schedules || a.capped,
            "DPOR ({}) must beat enumeration ({})",
            b.schedules,
            a.schedules
        );
    }
}
