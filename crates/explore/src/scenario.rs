//! Scenarios: the replayable unit of exploration.
//!
//! A [`Scenario`] pins everything about one run *except* the schedule: the
//! protocol under test, the deployment shape, the preloaded keys, the
//! client operations, the fault plan, and the simulator seed (which fixes
//! every latency and fault-RNG draw). Running a scenario under a
//! [`simnet::Scheduler`] then makes the schedule itself the only free
//! variable, so a `(scenario, choice string)` pair identifies an execution
//! byte-for-byte — the property the shrinker and the repro files rely on.
//!
//! After each run the full oracle stack is applied:
//!
//! * the structural checkers (`dbtree::checker::check_all` /
//!   `dhash::check_hash_cluster`): convergence digests, key findability
//!   from every processor, leaf-chain and stash invariants;
//! * the §3 history log check (coverage sets and final digests), which
//!   both checkers already embed;
//! * the sequence oracle ([`history::check_sequences`]) over each copy's
//!   reconstructed action log: completeness, orderedness, and
//!   compatibility (only commuting reorders) — wired into `check_all` for
//!   the dB-tree and applied here for the hash table;
//! * a completion check: with no crash in the plan, the session layer owes
//!   every submitted operation an acknowledgement, whatever the schedule.

use std::collections::{BTreeMap, BTreeSet};

use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, ProtocolKind, TreeConfig};
use dhash::{check_hash_cluster, HKind, HashCluster, HashConfig, HashSpec};
use history::check_sequences;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::{CrashEvent, FaultPlan, ProcId, Scheduler, SessionConfig, SimConfig, SimTime};

use crate::sched::{Recording, Replay, Strategy};

/// Which search structure (and which of its protocol variants) a scenario
/// exercises.
#[derive(Clone, Debug, PartialEq)]
pub enum Proto {
    /// The dB-tree under one of its replica-maintenance protocols.
    Blink {
        /// Replica-maintenance protocol variant.
        protocol: ProtocolKind,
        /// Node fanout (small values force splits early).
        fanout: usize,
        /// Lazy merge-at-empty policy (off, safe, or deliberately broken).
        merge: MergeMode,
    },
    /// The lazy-directory distributed hash table.
    Hash {
        /// Bucket capacity before a split.
        capacity: usize,
    },
}

/// What one explorer operation does to its key.
///
/// Deletes need care to keep the oracle exact: a delete racing an insert of
/// the *same* key would make the expected final contents schedule-dependent.
/// The canned generators therefore keep the two key sets disjoint (deletes
/// target preloaded keys, inserts fresh ones), and the oracle conservatively
/// skips any key a hand-written scenario contests both ways.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExKind {
    /// Insert the value at the key.
    Insert(u64),
    /// Point lookup.
    Search,
    /// Tombstone the key (and, with merging enabled, maybe empty a leaf).
    Delete,
}

/// One client operation in explorer form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExOp {
    /// Submitting processor (taken modulo the scenario's processor count).
    pub origin: u32,
    /// Target key.
    pub key: u64,
    /// What to do at the key.
    pub kind: ExKind,
}

/// Whether (and how honestly) a blink scenario runs lazy merge-at-empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeMode {
    /// Merging disabled — the paper's never-merge baseline.
    Off,
    /// Merging with the commit-time emptiness re-verify (the shipped
    /// protocol).
    Safe,
    /// Merging with the re-verify skipped: the injected check-then-act bug
    /// (an insert that raced the grant round-trip dies with the node),
    /// there for the explorer to catch and shrink.
    Unsafe,
    /// Merging with every `MergeReq` silently dropped by the parent: the
    /// injected *liveness* bug (`merge_wedge_grants`). A quiescent
    /// all-tombstone leaf keeps its merge pending forever and leaf writes
    /// park behind the grant that never comes — there for the liveness
    /// oracle to catch and shrink.
    Wedged,
}

/// Everything about a run except the schedule. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Structure and protocol under test.
    pub proto: Proto,
    /// Deployment size.
    pub n_procs: u32,
    /// Simulator seed (latency draws, fault RNG).
    pub seed: u64,
    /// Keys present before the workload starts.
    pub preload: Vec<u64>,
    /// The client workload, submitted up front (open loop) so delivery
    /// order is maximally schedulable.
    pub ops: Vec<ExOp>,
    /// Fault plan (drops, duplicates, crashes).
    pub faults: FaultPlan,
}

/// Outcome of one scheduled run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Every oracle violation, rendered. Empty = the run was correct.
    pub violations: Vec<String>,
    /// Operations acknowledged before quiescence.
    pub completed: usize,
}

impl Scenario {
    fn sim_cfg(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            faults: self.faults.clone(),
            // Generous runaway bound: adversarial schedules legitimately
            // run long (retransmissions under starvation), but a protocol
            // livelock must still terminate the run.
            max_events: 500_000,
            ..SimConfig::default()
        }
    }

    /// The session configuration explorer runs use. Retries are raised far
    /// beyond the default because an adversarial scheduler may starve a
    /// channel for a long stretch; letting the session layer give up would
    /// manufacture a message loss the protocol never caused, and the
    /// completeness oracle would mis-blame the protocol.
    fn session(&self) -> SessionConfig {
        if self.faults.is_active() {
            SessionConfig {
                max_retries: 10_000,
                ..SessionConfig::reliable()
            }
        } else {
            // A perfect network still wants the session layer once crashes
            // are possible; without faults the pass-through keeps runs
            // identical to the plain simulator.
            SessionConfig::default()
        }
    }
}

/// Run `scenario` under `scheduler` and apply the oracle stack.
pub fn run_under(scenario: &Scenario, scheduler: Box<dyn Scheduler>) -> RunReport {
    match &scenario.proto {
        Proto::Blink {
            protocol,
            fanout,
            merge,
        } => run_blink(scenario, *protocol, *fanout, *merge, scheduler),
        Proto::Hash { capacity } => run_hash(scenario, *capacity, scheduler),
    }
}

/// Run under a named strategy, returning the report and the recorded
/// schedule-choice string.
pub fn run_recorded(
    scenario: &Scenario,
    strategy: Strategy,
    sched_seed: u64,
) -> (RunReport, Vec<u32>) {
    let inner = strategy.build(sched_seed, scenario.n_procs);
    let (recording, trace) = Recording::new(inner);
    let report = run_under(scenario, Box::new(recording));
    let choices = trace.borrow().clone();
    (report, choices)
}

/// Replay a recorded choice string against (a possibly shrunk) scenario.
pub fn replay_run(scenario: &Scenario, choices: &[u32]) -> RunReport {
    run_under(scenario, Box::new(Replay::new(choices.to_vec())))
}

/// Build the dB-tree cluster for a blink scenario and submit its workload
/// (open loop). Shared between [`run_under`]'s one-shot path and the model
/// checker ([`crate::dpor`]), which steps the simulator manually between
/// state fingerprints.
pub(crate) fn build_blink(
    scenario: &Scenario,
    protocol: ProtocolKind,
    fanout: usize,
    merge: MergeMode,
) -> DbCluster {
    let cfg = TreeConfig {
        fanout,
        merge_at_empty: merge != MergeMode::Off,
        merge_unsafe_no_reverify: merge == MergeMode::Unsafe,
        merge_wedge_grants: merge == MergeMode::Wedged,
        ..TreeConfig::fixed_copies(protocol, 3)
    };
    let spec = BuildSpec::new(scenario.preload.clone(), scenario.n_procs, cfg);
    let mut cluster = DbCluster::build_with_session(&spec, scenario.sim_cfg(), scenario.session());

    for op in &scenario.ops {
        cluster.submit(ClientOp {
            origin: ProcId(op.origin % scenario.n_procs),
            key: op.key,
            intent: match op.kind {
                ExKind::Insert(v) => Intent::Insert(v),
                ExKind::Search => Intent::Search,
                ExKind::Delete => Intent::Delete,
            },
        });
    }
    cluster
}

/// Drain the driver and apply the full oracle stack to a blink cluster
/// whose schedule has run its course. Shared with [`crate::dpor`].
pub(crate) fn finish_blink(scenario: &Scenario, cluster: &mut DbCluster) -> RunReport {
    let mut violations = Vec::new();
    let completed = match cluster.try_run_to_quiescence() {
        Ok(records) => {
            check_completion(scenario, records.len(), &mut violations);
            // Expected keys: the preload plus every *acknowledged* insert,
            // minus every key any delete targets. (With crashes in the plan
            // an unacknowledged op may or may not have landed, so presence
            // is only owed for acknowledged inserts, and absence only for
            // acknowledged deletes.) A key both inserted and deleted is
            // schedule-dependent either way — the canned generators never
            // produce one, and the oracle claims nothing about it.
            let inserted: BTreeSet<u64> = scenario
                .ops
                .iter()
                .filter(|op| matches!(op.kind, ExKind::Insert(_)))
                .map(|op| op.key)
                .collect();
            let delete_targets: BTreeSet<u64> = scenario
                .ops
                .iter()
                .filter(|op| op.kind == ExKind::Delete)
                .map(|op| op.key)
                .collect();
            let mut expected: BTreeSet<u64> = scenario.preload.iter().copied().collect();
            let mut deleted: BTreeSet<u64> = BTreeSet::new();
            for rec in &records {
                match rec.op.intent {
                    Intent::Insert(_) => {
                        expected.insert(rec.op.key);
                    }
                    Intent::Delete if !inserted.contains(&rec.op.key) => {
                        deleted.insert(rec.op.key);
                    }
                    _ => {}
                }
            }
            expected.retain(|k| !delete_targets.contains(k));
            violations.extend(
                checker::check_all(cluster, &expected)
                    .iter()
                    .map(|v| v.to_string()),
            );
            violations.extend(
                checker::check_deleted_keys(&cluster.sim, &deleted)
                    .iter()
                    .map(|v| v.to_string()),
            );
            check_liveness(scenario, cluster, &mut violations);
            records.len()
        }
        Err(e) => {
            violations.push(format!("quiescence: {e}"));
            0
        }
    };
    RunReport {
        violations,
        completed,
    }
}

fn run_blink(
    scenario: &Scenario,
    protocol: ProtocolKind,
    fanout: usize,
    merge: MergeMode,
    scheduler: Box<dyn Scheduler>,
) -> RunReport {
    let mut cluster = build_blink(scenario, protocol, fanout, merge);
    cluster.sim.set_scheduler(scheduler);
    finish_blink(scenario, &mut cluster)
}

/// The liveness oracles, applied at quiescence under the same fairness
/// bound as [`check_completion`]: the explorer's schedules always drain
/// every deliverable event, so "pending forever at quiescence" *is*
/// "pending forever". Two probes:
///
/// * **No merge grant held forever** — a leaf's `merge_pending` bit is set
///   by the first `MergeReq` and cleared by the grant or decline; at
///   quiescence with every crash restarted, a set bit means the answer
///   never came (the seeded `merge_wedge_grants` wedge, or a protocol bug
///   that lost the reply).
/// * **No write parked forever** — client writes parked behind a pending
///   merge are ops the session layer owes an acknowledgement; a non-empty
///   park at quiescence is a livelock, not slowness.
///
/// (The third liveness property — every submitted op completes — is
/// [`check_completion`]; an infinite right-link chase cannot quiesce at
/// all and surfaces as the `quiescence:` event-budget violation.)
fn check_liveness(scenario: &Scenario, cluster: &DbCluster, violations: &mut Vec<String>) {
    let recoverable = scenario
        .faults
        .crashes
        .iter()
        .all(|c| c.restart_at.is_some());
    if !recoverable {
        // A crash that never restarts may legitimately strand a MergeReq
        // with the dead parent; liveness is only owed on recoverable plans.
        return;
    }
    for (pid, p) in cluster.sim.procs() {
        let pending = p.merge_pending_count();
        if pending > 0 {
            violations.push(format!(
                "liveness: proc {} holds {pending} merge request(s) pending \
                 forever (no grant or decline ever arrived)",
                pid.0
            ));
        }
        let parked = p.parked_write_count();
        if parked > 0 {
            violations.push(format!(
                "liveness: {parked} client write(s) parked behind a \
                 never-granted merge on proc {}",
                pid.0
            ));
        }
    }
}

fn run_hash(scenario: &Scenario, capacity: usize, scheduler: Box<dyn Scheduler>) -> RunReport {
    let spec = HashSpec {
        preload: scenario.preload.clone(),
        n_procs: scenario.n_procs,
        cfg: HashConfig {
            capacity,
            ..HashConfig::default()
        },
    };
    let mut cluster =
        HashCluster::build_with_session(&spec, scenario.sim_cfg(), scenario.session());
    cluster.sim.set_scheduler(scheduler);

    for op in &scenario.ops {
        let origin = ProcId(op.origin % scenario.n_procs);
        // Values derive from keys so concurrent duplicate-key inserts agree
        // on the final value whatever the schedule.
        let kind = match op.kind {
            ExKind::Insert(_) => HKind::Insert(op.key + 1),
            ExKind::Search => HKind::Search,
            ExKind::Delete => HKind::Delete,
        };
        cluster.submit(origin, op.key, kind);
    }

    let mut violations = Vec::new();
    let completed = match cluster.try_run_to_quiescence() {
        Ok(stats) => {
            check_completion(scenario, stats.records.len(), &mut violations);
            if stats.lost() > 0 {
                violations.push(format!("{} operations reported lost", stats.lost()));
            }
            let mut expected: BTreeMap<u64, u64> =
                scenario.preload.iter().map(|&k| (k, k)).collect();
            for op in &scenario.ops {
                match op.kind {
                    ExKind::Insert(_) => {
                        expected.insert(op.key, op.key + 1);
                    }
                    ExKind::Delete => {
                        expected.remove(&op.key);
                    }
                    ExKind::Search => {}
                }
            }
            violations.extend(
                check_hash_cluster(&mut cluster, &expected)
                    .iter()
                    .map(|v| format!("{v:?}")),
            );
            // The hash checker predates the sequence oracle; apply it here.
            // `dir-patch` updates commute pairwise (each patches its own
            // slot), so the dB-tree relation — splits conflict with splits,
            // everything else commutes — is vacuously safe and still buys
            // the completeness and orderedness checks.
            let log = cluster.log();
            let log = log.lock();
            violations.extend(
                check_sequences(&log, &dbtree::db_class_conflicts)
                    .iter()
                    .map(|v| v.to_string()),
            );
            stats.records.len()
        }
        Err(e) => {
            violations.push(format!("quiescence: {e}"));
            0
        }
    };
    RunReport {
        violations,
        completed,
    }
}

/// With no crash in the plan, the session layer owes every operation an
/// acknowledgement regardless of schedule. With crashes the scenario
/// generator keeps client origins off the crashing processors, so
/// completion is still owed once every crash has a restart.
fn check_completion(scenario: &Scenario, completed: usize, violations: &mut Vec<String>) {
    let recoverable = scenario
        .faults
        .crashes
        .iter()
        .all(|c| c.restart_at.is_some());
    if recoverable && completed != scenario.ops.len() {
        violations.push(format!(
            "completion: {completed}/{} operations acknowledged",
            scenario.ops.len()
        ));
    }
}

/// A canned dB-tree scenario: a small tree (low fanout) with an insert/
/// search mix clustered tightly enough to force splits and split races.
/// Deterministic in its arguments.
pub fn blink_scenario(
    protocol: ProtocolKind,
    seed: u64,
    n_ops: usize,
    faults: FaultPlan,
) -> Scenario {
    let n_procs = 3;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB11A);
    // A tight key range over a small fanout-4 preload: inserts concentrate
    // in a handful of leaves, so even ~8-op workloads overflow one and the
    // explorer gets split races to reorder (the regime §3 quantifies over).
    let preload: Vec<u64> = (0..6).map(|k| k * 10).collect();
    let crashers: Vec<u32> = faults.crashes.iter().map(|c| c.proc.0).collect();
    let ops = (0..n_ops)
        .map(|i| {
            let mut origin = rng.gen_range(0..n_procs);
            // Clients avoid crashing processors (an injection into a down
            // processor is lost with the rest of its volatile queue).
            while crashers.contains(&origin) {
                origin = (origin + 1) % n_procs;
            }
            let key = rng.gen_range(0..70u64);
            let kind = if rng.gen_bool(0.75) {
                ExKind::Insert(1_000 + i as u64)
            } else {
                ExKind::Search
            };
            ExOp { origin, key, kind }
        })
        .collect();
    Scenario {
        proto: Proto::Blink {
            protocol,
            fanout: 4,
            merge: MergeMode::Off,
        },
        n_procs,
        seed,
        preload,
        ops,
        faults,
    }
}

/// A canned merge-enabled dB-tree scenario: deletes cluster on the upper
/// preloaded leaves (so some leaf usually empties and retires), inserts
/// stay on fresh keys (so the expected final contents are exact whatever
/// the schedule), and every run goes through the full oracle stack plus
/// the deleted-key check. Deterministic in its arguments.
pub fn merge_scenario(
    protocol: ProtocolKind,
    seed: u64,
    n_ops: usize,
    faults: FaultPlan,
) -> Scenario {
    let n_procs = 3;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4E26);
    // Eight preloaded keys over fanout 4: two-plus leaves, and the delete
    // band (the upper four keys) covers the rightmost leaf entirely, so a
    // handful of deletes reliably empties it and the merge family actually
    // runs under exploration.
    let preload: Vec<u64> = (0..8).map(|k| k * 10).collect();
    let band: Vec<u64> = preload[4..].to_vec();
    let crashers: Vec<u32> = faults.crashes.iter().map(|c| c.proc.0).collect();
    let ops = (0..n_ops)
        .map(|i| {
            let mut origin = rng.gen_range(0..n_procs);
            while crashers.contains(&origin) {
                origin = (origin + 1) % n_procs;
            }
            let roll: f64 = rng.gen();
            let (key, kind) = if roll < 0.45 {
                // Delete a band key (repeats are fine: a second tombstone
                // of the same key is just a later stamp).
                (band[rng.gen_range(0..band.len())], ExKind::Delete)
            } else if roll < 0.8 {
                // Insert a fresh key: off the preload grid, some inside the
                // deleted band's range so re-admission races absorbs.
                let mut key = rng.gen_range(1..80u64);
                if key % 10 == 0 {
                    key += 1;
                }
                (key, ExKind::Insert(1_000 + i as u64))
            } else {
                (rng.gen_range(0..80u64), ExKind::Search)
            };
            ExOp { origin, key, kind }
        })
        .collect();
    Scenario {
        proto: Proto::Blink {
            protocol,
            fanout: 4,
            merge: MergeMode::Safe,
        },
        n_procs,
        seed,
        preload,
        ops,
        faults,
    }
}

/// The injected merge/insert race, distilled: the four-key preload builds
/// one root over leaves `[0,20)` and `[20,∞)` — siblings under the *same*
/// parent, so the right one is grantable (a leftmost child never is). The
/// two deletes empty the right leaf while one insert targets a key inside
/// it. Under [`MergeMode::Unsafe`] the commit skips the emptiness
/// re-verify, so a schedule that lands the insert inside the grant round
/// trip loses it — the check-then-act bug the explorer must catch and
/// shrink. The same scenario under [`MergeMode::Safe`] must survive every
/// schedule.
pub fn merge_race_scenario(merge: MergeMode) -> Scenario {
    let preload: Vec<u64> = (0..4).map(|k| k * 10).collect();
    let ops = vec![
        ExOp {
            origin: 0,
            key: 20,
            kind: ExKind::Delete,
        },
        ExOp {
            origin: 1,
            key: 30,
            kind: ExKind::Delete,
        },
        ExOp {
            origin: 2,
            key: 25,
            kind: ExKind::Insert(1_025),
        },
        ExOp {
            origin: 1,
            key: 25,
            kind: ExKind::Search,
        },
    ];
    Scenario {
        proto: Proto::Blink {
            protocol: ProtocolKind::SemiSync,
            fanout: 4,
            merge,
        },
        n_procs: 3,
        seed: 5,
        preload,
        ops,
        faults: FaultPlan::none(),
    }
}

/// The seeded livelock: the [`merge_race_scenario`] shape under
/// [`MergeMode::Wedged`], where the parent silently drops every `MergeReq`.
/// Any schedule that empties the right leaf leaves its `merge_pending` bit
/// set forever, and the insert into that leaf's range parks behind the
/// never-granted merge — exactly what the liveness oracles exist to catch.
/// The checker must flag it on every such schedule and shrink the repro to
/// the two deletes (plus the insert for the parked-write variant).
pub fn wedged_merge_scenario() -> Scenario {
    merge_race_scenario(MergeMode::Wedged)
}

/// A canned hash-table scenario: small buckets, keys spread over preloaded
/// and fresh territory so inserts race bucket splits.
pub fn hash_scenario(seed: u64, n_ops: usize, faults: FaultPlan) -> Scenario {
    let n_procs = 3;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDA5);
    let preload: Vec<u64> = (0..16).map(|k| k * 3).collect();
    let crashers: Vec<u32> = faults.crashes.iter().map(|c| c.proc.0).collect();
    let ops = (0..n_ops)
        .map(|_| {
            let mut origin = rng.gen_range(0..n_procs);
            while crashers.contains(&origin) {
                origin = (origin + 1) % n_procs;
            }
            let key = rng.gen_range(0..96u64);
            let kind = if rng.gen_bool(0.75) {
                ExKind::Insert(key + 1)
            } else {
                ExKind::Search
            };
            ExOp { origin, key, kind }
        })
        .collect();
    Scenario {
        proto: Proto::Hash { capacity: 4 },
        n_procs,
        seed,
        preload,
        ops,
        faults,
    }
}

/// The light fault plan canned scenarios default to: drops and duplicates,
/// no crashes.
pub fn light_faults() -> FaultPlan {
    FaultPlan::lossy(0.05).with_dup(0.05)
}

/// A fault plan with one crash/restart on top of the light plan, for the
/// fault-alignment strategy to play with.
pub fn crash_faults(proc: u32) -> FaultPlan {
    light_faults().with_crash(CrashEvent {
        proc: ProcId(proc),
        at: SimTime(400),
        restart_at: Some(SimTime(1_500)),
    })
}
