//! Exploration schedulers: the strategies that pick which enabled event
//! fires next, plus the recording/replay wrappers that turn every run into
//! a replayable choice string.
//!
//! Each strategy implements [`simnet::Scheduler`] and therefore only ever
//! picks among the simulator's *enabled* set — one head per FIFO channel,
//! one timer per processor, crash-before-restart (see
//! `simnet::schedule`). Any sequence of picks is thus a legal execution of
//! the protocol's fault and ordering model; the strategies differ only in
//! how adversarially they search the space:
//!
//! * [`Strategy::Fifo`] — the baseline order (index 0 = lowest seq).
//! * [`Strategy::Random`] — uniform among enabled events (the classic
//!   randomized scheduler; good general coverage).
//! * [`Strategy::Lifo`] — newest message first, starving old traffic as
//!   long as possible; surfaces bugs hidden by quasi-FIFO delivery.
//! * [`Strategy::DelayProc`] — starves one victim processor of incoming
//!   messages for a bounded prefix of the run, then reverts to FIFO. The
//!   bound matters: the session layer's retransmission timers regenerate
//!   non-victim events forever, so an unbounded delay never quiesces.
//! * [`Strategy::FaultAlign`] — holds scheduled crash/restart events until
//!   a delivery burst is pending, aligning the fault with the moment the
//!   most protocol state is in flight.
//!
//! A [`Recording`] wrapper logs every pick into a shared trace; [`Replay`]
//! feeds a trace back, clamping out-of-range or exhausted entries to the
//! FIFO choice so a trace stays legal even after the shrinker mutates the
//! scenario underneath it.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::{Choice, ChoiceKind, ProcId, Scheduler, SimTime};

/// A named exploration strategy, the unit the explorer round-robins over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Baseline simulator order.
    Fifo,
    /// Uniform random among enabled events.
    Random,
    /// Newest delivery first.
    Lifo,
    /// Starve one processor for a bounded prefix.
    DelayProc,
    /// Align scheduled faults with delivery bursts.
    FaultAlign,
}

impl Strategy {
    /// Every strategy, in the order the explorer cycles through them.
    pub const ALL: [Strategy; 5] = [
        Strategy::Fifo,
        Strategy::Random,
        Strategy::Lifo,
        Strategy::DelayProc,
        Strategy::FaultAlign,
    ];

    /// Stable name (used in repro files and reports).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Fifo => "fifo",
            Strategy::Random => "random",
            Strategy::Lifo => "lifo",
            Strategy::DelayProc => "delay-proc",
            Strategy::FaultAlign => "fault-align",
        }
    }

    /// Parse a [`Strategy::name`] back.
    pub fn from_name(name: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Instantiate the strategy for one run. `seed` feeds the strategy's
    /// private RNG (deterministic per run); `n_procs` lets the
    /// processor-targeting strategies pick a victim.
    pub fn build(self, seed: u64, n_procs: u32) -> Box<dyn Scheduler> {
        match self {
            Strategy::Fifo => Box::new(simnet::FifoScheduler),
            Strategy::Random => Box::new(UniformRandom::new(seed)),
            Strategy::Lifo => Box::new(Lifo),
            Strategy::DelayProc => {
                let victim = ProcId((seed % n_procs.max(1) as u64) as u32);
                let budget = 200 + seed % 300;
                Box::new(DelayProc::new(victim, budget, seed))
            }
            Strategy::FaultAlign => Box::new(FaultAlign::new(seed)),
        }
    }
}

/// Uniform random among the enabled events.
pub struct UniformRandom {
    rng: SmallRng,
}

impl UniformRandom {
    /// A fresh scheduler with its own deterministic RNG.
    pub fn new(seed: u64) -> Self {
        UniformRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for UniformRandom {
    fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
        self.rng.gen_range(0..enabled.len())
    }
}

/// Newest delivery first; timers and control events only when no delivery
/// is enabled. Starves old in-flight traffic maximally.
pub struct Lifo;

impl Scheduler for Lifo {
    fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
        // `enabled` is sorted by seq, so the last delivery is the newest.
        enabled
            .iter()
            .rposition(|c| c.kind == ChoiceKind::Deliver)
            .unwrap_or(0)
    }
}

/// Starve `victim` of incoming deliveries for the first `budget` choices,
/// picking randomly among the others; past the budget, plain FIFO. The
/// bound keeps runs finite: retransmission timers for the starved channels
/// keep generating non-victim events, so "never deliver to the victim"
/// never quiesces.
pub struct DelayProc {
    victim: ProcId,
    budget: u64,
    rng: SmallRng,
}

impl DelayProc {
    /// Delay deliveries to `victim` for the first `budget` choices.
    pub fn new(victim: ProcId, budget: u64, seed: u64) -> Self {
        DelayProc {
            victim,
            budget,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for DelayProc {
    fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
        if self.budget == 0 {
            return 0;
        }
        self.budget -= 1;
        let spared: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(_, c)| !(c.kind == ChoiceKind::Deliver && c.to == self.victim))
            .map(|(i, _)| i)
            .collect();
        if spared.is_empty() {
            0 // only the victim has pending events; delaying further is moot
        } else {
            spared[self.rng.gen_range(0..spared.len())]
        }
    }
}

/// Hold scheduled crash/restart (control) events back until at least two
/// deliveries are pending, then fire the control — the crash lands exactly
/// when a burst of protocol state is in flight. Between bursts, picks
/// randomly among non-control events.
pub struct FaultAlign {
    rng: SmallRng,
}

impl FaultAlign {
    /// A fresh fault-aligning scheduler.
    pub fn new(seed: u64) -> Self {
        FaultAlign {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for FaultAlign {
    fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
        let control = enabled.iter().position(|c| c.kind == ChoiceKind::Control);
        let delivers = enabled
            .iter()
            .filter(|c| c.kind == ChoiceKind::Deliver)
            .count();
        if let Some(ctrl) = control {
            if delivers >= 2 {
                return ctrl;
            }
        }
        let rest: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind != ChoiceKind::Control)
            .map(|(i, _)| i)
            .collect();
        if rest.is_empty() {
            0
        } else {
            rest[self.rng.gen_range(0..rest.len())]
        }
    }
}

/// A shared, growable choice trace (the run's schedule-choice string).
pub type ChoiceTrace = Rc<RefCell<Vec<u32>>>;

/// Wraps any scheduler and records every pick into a [`ChoiceTrace`] the
/// caller keeps a handle to — the simulator owns the scheduler box, so the
/// trace rides outside it.
pub struct Recording {
    inner: Box<dyn Scheduler>,
    trace: ChoiceTrace,
}

impl Recording {
    /// Wrap `inner`; returns the wrapper and the shared trace handle.
    pub fn new(inner: Box<dyn Scheduler>) -> (Self, ChoiceTrace) {
        let trace: ChoiceTrace = Rc::new(RefCell::new(Vec::new()));
        (
            Recording {
                inner,
                trace: Rc::clone(&trace),
            },
            trace,
        )
    }
}

impl Scheduler for Recording {
    fn choose(&mut self, now: SimTime, enabled: &[Choice]) -> usize {
        // Clamp before recording so the trace replays exactly, even if the
        // inner strategy returned an out-of-range index.
        let idx = self.inner.choose(now, enabled).min(enabled.len() - 1);
        self.trace.borrow_mut().push(idx as u32);
        idx
    }

    fn fired(&mut self, chosen: &Choice, created: std::ops::Range<u64>) {
        self.inner.fired(chosen, created);
    }
}

/// Replays a recorded choice string. Entries past the end of the string —
/// or out of range for the current enabled set, which happens once the
/// shrinker has removed operations from the scenario — degrade to the FIFO
/// choice, keeping every replay a legal schedule.
pub struct Replay {
    choices: Vec<u32>,
    cursor: usize,
}

impl Replay {
    /// Replay `choices` from the start.
    pub fn new(choices: Vec<u32>) -> Self {
        Replay { choices, cursor: 0 }
    }
}

impl Scheduler for Replay {
    fn choose(&mut self, _now: SimTime, enabled: &[Choice]) -> usize {
        let idx = self.choices.get(self.cursor).copied().unwrap_or(0) as usize;
        self.cursor += 1;
        if idx < enabled.len() {
            idx
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(seq: u64, to: u32) -> Choice {
        Choice {
            seq,
            at: SimTime(0),
            to: ProcId(to),
            from: Some(ProcId(9)),
            kind: ChoiceKind::Deliver,
            label: "msg",
        }
    }

    fn control(seq: u64, to: u32) -> Choice {
        Choice {
            seq,
            at: SimTime(0),
            to: ProcId(to),
            from: None,
            kind: ChoiceKind::Control,
            label: "crash",
        }
    }

    #[test]
    fn lifo_prefers_newest_delivery() {
        let enabled = [deliver(1, 0), control(2, 1), deliver(5, 2)];
        assert_eq!(Lifo.choose(SimTime(0), &enabled), 2);
        let only_control = [control(2, 1)];
        assert_eq!(Lifo.choose(SimTime(0), &only_control), 0);
    }

    #[test]
    fn delay_proc_spares_victim_until_budget_runs_out() {
        let mut s = DelayProc::new(ProcId(1), 2, 7);
        let enabled = [deliver(1, 1), deliver(2, 0)];
        assert_eq!(s.choose(SimTime(0), &enabled), 1);
        assert_eq!(s.choose(SimTime(0), &enabled), 1);
        // Budget exhausted: FIFO again.
        assert_eq!(s.choose(SimTime(0), &enabled), 0);
    }

    #[test]
    fn fault_align_waits_for_a_burst() {
        let mut s = FaultAlign::new(3);
        // One delivery pending: the control is held back.
        let calm = [deliver(1, 0), control(9, 2)];
        assert_eq!(s.choose(SimTime(0), &calm), 0);
        // Two deliveries pending: the control fires.
        let burst = [deliver(1, 0), deliver(2, 1), control(9, 2)];
        assert_eq!(s.choose(SimTime(0), &burst), 2);
    }

    #[test]
    fn replay_clamps_out_of_range_and_exhausted_entries() {
        let mut r = Replay::new(vec![1, 7]);
        let enabled = [deliver(1, 0), deliver(2, 1)];
        assert_eq!(r.choose(SimTime(0), &enabled), 1);
        assert_eq!(r.choose(SimTime(0), &enabled), 0); // 7 out of range
        assert_eq!(r.choose(SimTime(0), &enabled), 0); // exhausted
    }

    #[test]
    fn recording_captures_the_clamped_choice() {
        let (mut rec, trace) = Recording::new(Box::new(Lifo));
        let enabled = [deliver(1, 0), deliver(5, 2)];
        rec.choose(SimTime(0), &enabled);
        rec.choose(SimTime(0), &enabled);
        assert_eq!(*trace.borrow(), vec![1, 1]);
    }
}
