//! `explore` — the schedule-exploration CLI.
//!
//! Runs the canned scenarios (dB-tree protocols × hash table, with and
//! without faults) under an iteration/time budget, reports schedules
//! explored and oracle verdicts, and writes a shrunk repro file for every
//! failure found. Exit status is non-zero iff any oracle fired, so CI can
//! run it as a smoke job.
//!
//! ```text
//! cargo run --release -p explore -- --iters 200 --seed 7 --out target/repros
//! cargo run --release -p explore -- --secs 60          # wall-clock budget
//! cargo run --release -p explore -- --scenario naive   # the broken variant
//! ```

use std::path::PathBuf;
use std::time::Duration;

use dbtree::ProtocolKind;
use explore::{
    blink_scenario, check, crash_faults, dpor, emit_test, explore, format_repro_lossy, frontier,
    hash_scenario, light_faults, merge_race_scenario, merge_scenario, wedged_merge_scenario,
    Budget, CheckOptions, CheckState, MergeMode, Scenario,
};
use simnet::FaultPlan;

struct Args {
    iters: u64,
    secs: Option<u64>,
    seed: u64,
    out: Option<PathBuf>,
    scenario: String,
    ops: usize,
    exhaustive: bool,
    dpor: bool,
    depth: usize,
    max_schedules: u64,
    frontier: Option<PathBuf>,
    procs: Option<u32>,
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [--iters N] [--secs S] [--seed S] [--ops N] \
         [--scenario all|blink|hash|crash|merge|unsafe-merge|naive|wedged] [--out DIR]\n\
         \n\
         Explores schedules for the canned scenarios, checking every run\n\
         against the structural and history-theory oracles. Writes shrunk\n\
         repro files (and a generated #[test] next to each) to --out.\n\
         Exits non-zero if any oracle violation was found.\n\
         \n\
         Model-checking mode:\n\
         --exhaustive          bounded-exhaustive search instead of random\n\
         --dpor                partial-order reduction (also prints the\n\
                               unreduced schedule count for comparison)\n\
         --depth N             choice-point depth bound (default 12)\n\
         --max-schedules N     schedule budget per scenario (default 5000)\n\
         --frontier FILE       persist/resume the search frontier\n\
         --procs N             override the scenario's processor count"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 100,
        secs: None,
        seed: 1,
        out: None,
        scenario: "all".to_string(),
        ops: 10,
        exhaustive: false,
        dpor: false,
        depth: 12,
        max_schedules: 5_000,
        frontier: None,
        procs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--iters" => args.iters = val("--iters").parse().unwrap_or_else(|_| usage()),
            "--secs" => args.secs = Some(val("--secs").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--ops" => args.ops = val("--ops").parse().unwrap_or_else(|_| usage()),
            "--scenario" => args.scenario = val("--scenario"),
            "--out" => args.out = Some(PathBuf::from(val("--out"))),
            "--exhaustive" => args.exhaustive = true,
            "--dpor" => args.dpor = true,
            "--depth" => args.depth = val("--depth").parse().unwrap_or_else(|_| usage()),
            "--max-schedules" => {
                args.max_schedules = val("--max-schedules").parse().unwrap_or_else(|_| usage())
            }
            "--frontier" => args.frontier = Some(PathBuf::from(val("--frontier"))),
            "--procs" => args.procs = Some(val("--procs").parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn usage_missing(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage();
}

/// The scenario matrix. `naive` is the deliberately-broken Fig 4 protocol —
/// useful for watching the explorer catch and shrink a real bug.
fn scenarios(which: &str, seed: u64, ops: usize) -> Vec<(&'static str, Scenario)> {
    let mut out: Vec<(&'static str, Scenario)> = Vec::new();
    let blink = |p, f| blink_scenario(p, seed, ops, f);
    match which {
        "blink" => {
            out.push((
                "blink-semisync",
                blink(ProtocolKind::SemiSync, light_faults()),
            ));
            out.push(("blink-sync", blink(ProtocolKind::Sync, light_faults())));
        }
        "hash" => {
            out.push(("hash", hash_scenario(seed, ops, light_faults())));
        }
        "crash" => {
            out.push((
                "blink-crash",
                blink(ProtocolKind::SemiSync, crash_faults(1)),
            ));
            out.push(("hash-crash", hash_scenario(seed, ops, crash_faults(1))));
        }
        "naive" => {
            out.push(("naive", blink(ProtocolKind::Naive, FaultPlan::none())));
        }
        "merge" => {
            out.push((
                "merge-semisync",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, light_faults()),
            ));
            out.push((
                "merge-crash",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, crash_faults(1)),
            ));
        }
        "unsafe-merge" => {
            // The injected check-then-act bug — like `naive`, exists to
            // watch the explorer catch and shrink a real violation.
            out.push(("unsafe-merge", merge_race_scenario(MergeMode::Unsafe)));
        }
        "wedged" => {
            // The injected liveness bug: every schedule that empties a leaf
            // wedges its merge forever — the liveness oracle's test dummy.
            out.push(("wedged", wedged_merge_scenario()));
        }
        "all" => {
            out.push((
                "blink-semisync",
                blink(ProtocolKind::SemiSync, light_faults()),
            ));
            out.push(("blink-sync", blink(ProtocolKind::Sync, light_faults())));
            out.push((
                "blink-crash",
                blink(ProtocolKind::SemiSync, crash_faults(1)),
            ));
            out.push((
                "merge-semisync",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, light_faults()),
            ));
            out.push((
                "merge-crash",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, crash_faults(1)),
            ));
            out.push(("hash", hash_scenario(seed, ops, light_faults())));
            out.push(("hash-crash", hash_scenario(seed, ops, crash_faults(1))));
        }
        _ => usage(),
    }
    out
}

/// Report one failure and write its repro artifacts. Never panics: an
/// unrepresentable failure (e.g. a liveness trip whose plan carries
/// partitions) degrades to a commented, non-replayable file — the exit
/// status still goes non-zero and the evidence still lands on disk.
fn emit_failure(out: &Option<PathBuf>, name: &str, i: usize, failure: &explore::Failure) {
    println!(
        "  failure {i}: strategy={} ops={} choices={} — {}",
        failure.strategy,
        failure.scenario.ops.len(),
        failure.choices.len(),
        failure.violations.first().map(String::as_str).unwrap_or(""),
    );
    let repro = format_repro_lossy(failure);
    if let Some(dir) = out {
        let path = dir.join(format!("{name}-{i}.repro"));
        std::fs::write(&path, &repro).expect("write repro file");
        if let Ok(test) = emit_test(&format!("repro_{}_{i}", name.replace('-', "_")), failure) {
            std::fs::write(dir.join(format!("{name}-{i}.rs")), test).expect("write repro test");
        }
        println!("  wrote {}", path.display());
    } else {
        print!("{repro}");
    }
}

/// Run the model checker over one scenario, chunking through the frontier
/// file (if any) so an interrupted run resumes. Returns the aggregated
/// report.
fn check_chunked(
    scenario: &Scenario,
    opts: &CheckOptions,
    frontier_path: Option<&PathBuf>,
) -> Result<dpor::CheckReport, String> {
    let id = frontier::scenario_id(scenario, opts);
    let mut state: Option<CheckState> = match frontier_path {
        Some(p) => frontier::load(p, id)?,
        None => None,
    };
    let mut agg = dpor::CheckReport::default();
    loop {
        let remaining = opts.max_schedules.saturating_sub(agg.schedules);
        if remaining == 0 {
            agg.capped = true;
            return Ok(agg);
        }
        let chunk = CheckOptions {
            // Checkpoint the frontier every few hundred schedules; without
            // a frontier file there is nothing to checkpoint, so run the
            // whole budget in one call.
            max_schedules: if frontier_path.is_some() {
                remaining.min(250)
            } else {
                remaining
            },
            ..opts.clone()
        };
        let (r, s) = check(scenario, &chunk, state.take())?;
        agg.schedules += r.schedules;
        agg.total_schedules = r.total_schedules;
        agg.steps += r.steps;
        agg.pruned += r.pruned;
        agg.races += r.races;
        agg.sleep_skips += r.sleep_skips;
        agg.failing_runs += r.failing_runs;
        agg.shrink_stats.candidates += r.shrink_stats.candidates;
        agg.shrink_stats.accepted += r.shrink_stats.accepted;
        let room = opts.max_failures.saturating_sub(agg.failures.len());
        agg.failures.extend(r.failures.into_iter().take(room));
        agg.complete = r.complete;
        if let Some(p) = frontier_path {
            frontier::save(p, id, &s)?;
        }
        if r.complete {
            return Ok(agg);
        }
        state = Some(s);
    }
}

/// The `--exhaustive` mode: bounded-exhaustive model checking per scenario,
/// with an unreduced comparison pass when `--dpor` is on. Returns the
/// failure count.
fn run_exhaustive(args: &Args, matrix: Vec<(&'static str, Scenario)>) -> usize {
    let mut total_failures = 0usize;
    let multi = matrix.len() > 1;
    for (name, mut scenario) in matrix {
        // A scenario keyword can expand to several sub-scenarios; each gets
        // its own frontier file (they are distinct searches, and the store
        // rightly refuses to mix them).
        let frontier_path = args.frontier.as_ref().map(|p| {
            if multi {
                let mut os = p.clone().into_os_string();
                os.push(format!(".{name}"));
                PathBuf::from(os)
            } else {
                p.clone()
            }
        });
        if let Some(p) = args.procs {
            let p = p.max(1);
            scenario.n_procs = p;
            // Scenarios script their ops and crashes against their native
            // processor count; fold both into the override so no op targets
            // a processor that doesn't exist (it would never complete and
            // read as a livelock).
            for op in &mut scenario.ops {
                op.origin %= p;
            }
            scenario.faults.crashes.retain(|c| c.proc.0 < p);
        }
        // Probabilistic faults are RNG draws, not schedule choices — the
        // checker can't enumerate them and they poison state fingerprints.
        // Scripted crashes stay: they are schedulable control events.
        if scenario.faults.drop_prob > 0.0 || scenario.faults.dup_prob > 0.0 {
            scenario.faults.drop_prob = 0.0;
            scenario.faults.dup_prob = 0.0;
            println!("{name:16} note: probabilistic faults stripped for exhaustive search");
        }
        if !dpor::supports(&scenario) {
            println!("{name:16} skipped: not model-checkable (hash or partitions)");
            continue;
        }
        let opts = CheckOptions {
            dpor: args.dpor,
            depth: args.depth,
            max_schedules: args.max_schedules,
            ..CheckOptions::default()
        };
        // The unreduced baseline: same bound, no reduction, count only.
        // Skipped when a frontier file is in play — the comparison would
        // re-pay the full unreduced search on every resume.
        let baseline = if args.dpor && args.frontier.is_none() {
            let unreduced = CheckOptions {
                dpor: false,
                max_failures: 0,
                shrink_candidates: 0,
                ..opts.clone()
            };
            match check_chunked(&scenario, &unreduced, None) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("{name}: baseline pass failed: {e}");
                    None
                }
            }
        } else {
            None
        };
        let start = std::time::Instant::now();
        let report = match check_chunked(&scenario, &opts, frontier_path.as_ref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(2);
            }
        };
        let secs = start.elapsed().as_secs_f64();
        let mut line = format!("exhaustive {name}: schedules={}", report.total_schedules);
        if let Some(b) = &baseline {
            let suffix = if b.capped { "+" } else { "" };
            line += &format!(" unreduced={}{suffix}", b.total_schedules);
            line += &format!(
                " reduction={:.1}x",
                b.total_schedules as f64 / report.total_schedules.max(1) as f64
            );
        }
        line += &format!(
            " steps={} pruned={} races={} sleep-skips={} failing={} {} ({:.1}s)",
            report.steps,
            report.pruned,
            report.races,
            report.sleep_skips,
            report.failing_runs,
            if report.complete {
                "complete"
            } else {
                "capped"
            },
            secs,
        );
        println!("{line}");
        if report.failing_runs > 0 && report.failures.is_empty() {
            // Count-only configuration still must fail the job.
            total_failures += report.failing_runs as usize;
        }
        for (i, failure) in report.failures.iter().enumerate() {
            total_failures += 1;
            emit_failure(&args.out, name, i, failure);
        }
    }
    total_failures
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }
    let matrix = scenarios(&args.scenario, args.seed, args.ops);

    if args.exhaustive {
        let total_failures = run_exhaustive(&args, matrix);
        println!("total: {total_failures} failure(s)");
        if total_failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    let budget = Budget {
        iterations: args.iters,
        wall: args.secs.map(Duration::from_secs),
        ..Budget::default()
    };
    let mut total_runs = 0u64;
    let mut total_failures = 0usize;
    for (name, scenario) in matrix {
        let start = std::time::Instant::now();
        let report = explore(&scenario, args.seed, &budget);
        let secs = start.elapsed().as_secs_f64();
        total_runs += report.runs;
        println!(
            "{name:16} {:6} schedules  {:8} choices  digest {:016x}  {:7.1} sched/s  {}",
            report.runs,
            report.choices_made,
            report.schedule_digest,
            report.runs as f64 / secs.max(1e-9),
            if report.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", report.failures.len())
            },
        );
        for (i, failure) in report.failures.iter().enumerate() {
            total_failures += 1;
            emit_failure(&args.out, name, i, failure);
        }
    }
    println!("total: {total_runs} schedules, {total_failures} failure(s)");
    if total_failures > 0 {
        std::process::exit(1);
    }
}
