//! `explore` — the schedule-exploration CLI.
//!
//! Runs the canned scenarios (dB-tree protocols × hash table, with and
//! without faults) under an iteration/time budget, reports schedules
//! explored and oracle verdicts, and writes a shrunk repro file for every
//! failure found. Exit status is non-zero iff any oracle fired, so CI can
//! run it as a smoke job.
//!
//! ```text
//! cargo run --release -p explore -- --iters 200 --seed 7 --out target/repros
//! cargo run --release -p explore -- --secs 60          # wall-clock budget
//! cargo run --release -p explore -- --scenario naive   # the broken variant
//! ```

use std::path::PathBuf;
use std::time::Duration;

use dbtree::ProtocolKind;
use explore::{
    blink_scenario, crash_faults, emit_test, explore, format_repro, hash_scenario, light_faults,
    merge_race_scenario, merge_scenario, Budget, MergeMode, Scenario,
};
use simnet::FaultPlan;

struct Args {
    iters: u64,
    secs: Option<u64>,
    seed: u64,
    out: Option<PathBuf>,
    scenario: String,
    ops: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [--iters N] [--secs S] [--seed S] [--ops N] \
         [--scenario all|blink|hash|crash|merge|unsafe-merge|naive] [--out DIR]\n\
         \n\
         Explores schedules for the canned scenarios, checking every run\n\
         against the structural and history-theory oracles. Writes shrunk\n\
         repro files (and a generated #[test] next to each) to --out.\n\
         Exits non-zero if any oracle violation was found."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 100,
        secs: None,
        seed: 1,
        out: None,
        scenario: "all".to_string(),
        ops: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--iters" => args.iters = val("--iters").parse().unwrap_or_else(|_| usage()),
            "--secs" => args.secs = Some(val("--secs").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--ops" => args.ops = val("--ops").parse().unwrap_or_else(|_| usage()),
            "--scenario" => args.scenario = val("--scenario"),
            "--out" => args.out = Some(PathBuf::from(val("--out"))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn usage_missing(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage();
}

/// The scenario matrix. `naive` is the deliberately-broken Fig 4 protocol —
/// useful for watching the explorer catch and shrink a real bug.
fn scenarios(which: &str, seed: u64, ops: usize) -> Vec<(&'static str, Scenario)> {
    let mut out: Vec<(&'static str, Scenario)> = Vec::new();
    let blink = |p, f| blink_scenario(p, seed, ops, f);
    match which {
        "blink" => {
            out.push((
                "blink-semisync",
                blink(ProtocolKind::SemiSync, light_faults()),
            ));
            out.push(("blink-sync", blink(ProtocolKind::Sync, light_faults())));
        }
        "hash" => {
            out.push(("hash", hash_scenario(seed, ops, light_faults())));
        }
        "crash" => {
            out.push((
                "blink-crash",
                blink(ProtocolKind::SemiSync, crash_faults(1)),
            ));
            out.push(("hash-crash", hash_scenario(seed, ops, crash_faults(1))));
        }
        "naive" => {
            out.push(("naive", blink(ProtocolKind::Naive, FaultPlan::none())));
        }
        "merge" => {
            out.push((
                "merge-semisync",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, light_faults()),
            ));
            out.push((
                "merge-crash",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, crash_faults(1)),
            ));
        }
        "unsafe-merge" => {
            // The injected check-then-act bug — like `naive`, exists to
            // watch the explorer catch and shrink a real violation.
            out.push(("unsafe-merge", merge_race_scenario(MergeMode::Unsafe)));
        }
        "all" => {
            out.push((
                "blink-semisync",
                blink(ProtocolKind::SemiSync, light_faults()),
            ));
            out.push(("blink-sync", blink(ProtocolKind::Sync, light_faults())));
            out.push((
                "blink-crash",
                blink(ProtocolKind::SemiSync, crash_faults(1)),
            ));
            out.push((
                "merge-semisync",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, light_faults()),
            ));
            out.push((
                "merge-crash",
                merge_scenario(ProtocolKind::SemiSync, seed, ops, crash_faults(1)),
            ));
            out.push(("hash", hash_scenario(seed, ops, light_faults())));
            out.push(("hash-crash", hash_scenario(seed, ops, crash_faults(1))));
        }
        _ => usage(),
    }
    out
}

fn main() {
    let args = parse_args();
    let budget = Budget {
        iterations: args.iters,
        wall: args.secs.map(Duration::from_secs),
        ..Budget::default()
    };
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    let mut total_runs = 0u64;
    let mut total_failures = 0usize;
    for (name, scenario) in scenarios(&args.scenario, args.seed, args.ops) {
        let start = std::time::Instant::now();
        let report = explore(&scenario, args.seed, &budget);
        let secs = start.elapsed().as_secs_f64();
        total_runs += report.runs;
        println!(
            "{name:16} {:6} schedules  {:8} choices  digest {:016x}  {:7.1} sched/s  {}",
            report.runs,
            report.choices_made,
            report.schedule_digest,
            report.runs as f64 / secs.max(1e-9),
            if report.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", report.failures.len())
            },
        );
        for (i, failure) in report.failures.iter().enumerate() {
            total_failures += 1;
            println!(
                "  failure {i}: strategy={} ops={} choices={} — {}",
                failure.strategy,
                failure.scenario.ops.len(),
                failure.choices.len(),
                failure.violations.first().map(String::as_str).unwrap_or(""),
            );
            let repro = format_repro(failure).expect("explorer scenarios are representable");
            if let Some(dir) = &args.out {
                let path = dir.join(format!("{name}-{i}.repro"));
                std::fs::write(&path, &repro).expect("write repro file");
                let test_name = format!("repro_{}_{i}", name.replace('-', "_"));
                let test = emit_test(&test_name, failure).expect("render repro test");
                std::fs::write(dir.join(format!("{name}-{i}.rs")), test).expect("write repro test");
                println!("  wrote {}", path.display());
            } else {
                print!("{repro}");
            }
        }
    }
    println!("total: {total_runs} schedules, {total_failures} failure(s)");
    if total_failures > 0 {
        std::process::exit(1);
    }
}
