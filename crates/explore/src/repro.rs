//! Self-contained repro files.
//!
//! A repro file is a line-oriented text serialization of a [`Failure`]:
//! the scenario, the schedule-choice string, and (informationally) the
//! violations observed when it was written. [`run_repro`] parses and
//! replays one; because a scenario plus a choice string determines the
//! execution byte-for-byte, replaying the file reproduces the original
//! run exactly — same schedule, same oracle verdicts.
//!
//! The format is hand-rolled (this workspace deliberately has no serde
//! JSON): one `key value...` pair per line, `#` comments, order
//! insignificant except that `op` lines keep their relative order.
//! Floats round-trip through Rust's shortest-representation `Display`.
//!
//! ```text
//! # explore repro v1
//! strategy lifo
//! sched-seed 7
//! proto blink
//! protocol naive
//! fanout 4
//! n-procs 3
//! seed 42
//! drop 0.05
//! dup 0
//! crash 1 400 1500
//! preload 0 10 20 30
//! op 0 17 insert 1017
//! op 2 88 search
//! choices 0 3 1 2
//! violation sequence oracle: lost update #12 (leaf-write)
//! ```
//!
//! [`emit_test`] renders a `#[test]` function that embeds the file and
//! asserts it still reproduces — paste it into any suite that depends on
//! `explore`.

use std::fmt::Write as _;

use dbtree::ProtocolKind;
use simnet::{CrashEvent, FaultPlan, ProcId, SimTime};

use crate::scenario::{replay_run, ExKind, ExOp, MergeMode, Proto, RunReport, Scenario};
use crate::shrink::Failure;

const HEADER: &str = "# explore repro v1";

fn protocol_name(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::Sync => "sync",
        ProtocolKind::SemiSync => "semisync",
        ProtocolKind::Naive => "naive",
        ProtocolKind::AvailableCopies => "available-copies",
    }
}

fn protocol_from_name(s: &str) -> Option<ProtocolKind> {
    Some(match s {
        "sync" => ProtocolKind::Sync,
        "semisync" => ProtocolKind::SemiSync,
        "naive" => ProtocolKind::Naive,
        "available-copies" => ProtocolKind::AvailableCopies,
        _ => return None,
    })
}

/// Serialize a failure to repro-file text.
///
/// Timed partitions are not representable (the explorer never generates
/// them); a plan carrying any is rejected rather than silently truncated.
pub fn format_repro(failure: &Failure) -> Result<String, String> {
    let s = &failure.scenario;
    if !s.faults.partitions.is_empty() {
        return Err("repro format does not carry timed partitions".into());
    }
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "strategy {}", failure.strategy);
    let _ = writeln!(out, "sched-seed {}", failure.sched_seed);
    match &s.proto {
        Proto::Blink {
            protocol,
            fanout,
            merge,
        } => {
            let _ = writeln!(out, "proto blink");
            let _ = writeln!(out, "protocol {}", protocol_name(*protocol));
            let _ = writeln!(out, "fanout {fanout}");
            // Only a non-default merge mode is written, so pre-merge repro
            // files stay canonical byte-for-byte.
            match merge {
                MergeMode::Off => {}
                MergeMode::Safe => {
                    let _ = writeln!(out, "merge safe");
                }
                MergeMode::Unsafe => {
                    let _ = writeln!(out, "merge unsafe");
                }
                MergeMode::Wedged => {
                    let _ = writeln!(out, "merge wedged");
                }
            }
        }
        Proto::Hash { capacity } => {
            let _ = writeln!(out, "proto hash");
            let _ = writeln!(out, "capacity {capacity}");
        }
    }
    let _ = writeln!(out, "n-procs {}", s.n_procs);
    let _ = writeln!(out, "seed {}", s.seed);
    let _ = writeln!(out, "drop {}", s.faults.drop_prob);
    let _ = writeln!(out, "dup {}", s.faults.dup_prob);
    for c in &s.faults.crashes {
        match c.restart_at {
            Some(r) => {
                let _ = writeln!(out, "crash {} {} {}", c.proc.0, c.at.0, r.0);
            }
            None => {
                let _ = writeln!(out, "crash {} {} never", c.proc.0, c.at.0);
            }
        }
    }
    let preload: Vec<String> = s.preload.iter().map(u64::to_string).collect();
    let _ = writeln!(out, "preload {}", preload.join(" "));
    for op in &s.ops {
        match op.kind {
            ExKind::Insert(v) => {
                let _ = writeln!(out, "op {} {} insert {v}", op.origin, op.key);
            }
            ExKind::Search => {
                let _ = writeln!(out, "op {} {} search", op.origin, op.key);
            }
            ExKind::Delete => {
                let _ = writeln!(out, "op {} {} delete", op.origin, op.key);
            }
        }
    }
    let choices: Vec<String> = failure.choices.iter().map(u32::to_string).collect();
    let _ = writeln!(out, "choices {}", choices.join(" "));
    for v in &failure.violations {
        let _ = writeln!(out, "violation {}", v.replace('\n', " "));
    }
    Ok(out)
}

/// [`format_repro`] that never fails: an unrepresentable failure (timed
/// partitions) degrades to a commented-out file that still records the
/// scenario debug form and the violations, so the CLI always has *bytes
/// to write* even when it can't produce a replayable repro. The comment
/// body deliberately fails [`parse_repro`]'s header check — nobody can
/// mistake it for a replayable file.
pub fn format_repro_lossy(failure: &Failure) -> String {
    match format_repro(failure) {
        Ok(text) => text,
        Err(why) => {
            let mut out = String::new();
            let _ = writeln!(out, "# explore repro (NOT replayable: {why})");
            let _ = writeln!(out, "# strategy {}", failure.strategy);
            let _ = writeln!(out, "# sched-seed {}", failure.sched_seed);
            let _ = writeln!(out, "# scenario {:?}", failure.scenario);
            let _ = writeln!(out, "# choices {:?}", failure.choices);
            for v in &failure.violations {
                let _ = writeln!(out, "# violation {}", v.replace('\n', " "));
            }
            out
        }
    }
}

fn parse_nums<T: std::str::FromStr>(rest: &str, what: &str) -> Result<Vec<T>, String> {
    rest.split_whitespace()
        .map(|t| t.parse().map_err(|_| format!("bad {what}: {t:?}")))
        .collect()
}

/// Parse repro-file text back into a [`Failure`].
pub fn parse_repro(text: &str) -> Result<Failure, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(format!("missing header line {HEADER:?}"));
    }

    let mut strategy: &'static str = "replay";
    let mut sched_seed = 0u64;
    let mut proto: Option<&str> = None;
    let mut protocol = None;
    let mut fanout = 4usize;
    let mut merge = MergeMode::Off;
    let mut saw_merge = false;
    let mut capacity = 4usize;
    let mut n_procs = 0u32;
    let mut seed = 0u64;
    let mut faults = FaultPlan::none();
    let mut preload = Vec::new();
    let mut ops = Vec::new();
    let mut choices = Vec::new();
    let mut violations = Vec::new();

    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "strategy" => {
                strategy = match rest {
                    // The model checker's strategies aren't in the random
                    // explorer's rotation; preserve their names anyway so
                    // a re-formatted repro says where it came from.
                    "exhaustive" => "exhaustive",
                    "dpor" => "dpor",
                    _ => crate::sched::Strategy::from_name(rest)
                        .map(|s| s.name())
                        .unwrap_or("replay"),
                };
            }
            "sched-seed" => sched_seed = rest.parse().map_err(|_| "bad sched-seed")?,
            "proto" => proto = Some(if rest == "hash" { "hash" } else { "blink" }),
            "protocol" => {
                protocol =
                    Some(protocol_from_name(rest).ok_or(format!("unknown protocol {rest:?}"))?)
            }
            "fanout" => fanout = rest.parse().map_err(|_| "bad fanout")?,
            "merge" => {
                merge = match rest {
                    "safe" => MergeMode::Safe,
                    "unsafe" => MergeMode::Unsafe,
                    "wedged" => MergeMode::Wedged,
                    _ => return Err(format!("merge wants `safe|unsafe|wedged`: {line:?}")),
                };
                saw_merge = true;
            }
            "capacity" => capacity = rest.parse().map_err(|_| "bad capacity")?,
            "n-procs" => n_procs = rest.parse().map_err(|_| "bad n-procs")?,
            "seed" => seed = rest.parse().map_err(|_| "bad seed")?,
            "drop" => faults.drop_prob = rest.parse().map_err(|_| "bad drop")?,
            "dup" => faults.dup_prob = rest.parse().map_err(|_| "bad dup")?,
            "crash" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(format!("crash wants `proc at restart|never`: {line:?}"));
                }
                faults.crashes.push(CrashEvent {
                    proc: ProcId(parts[0].parse().map_err(|_| "bad crash proc")?),
                    at: SimTime(parts[1].parse().map_err(|_| "bad crash time")?),
                    restart_at: if parts[2] == "never" {
                        None
                    } else {
                        Some(SimTime(parts[2].parse().map_err(|_| "bad restart time")?))
                    },
                });
            }
            "preload" => preload = parse_nums(rest, "preload key")?,
            "op" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let kind = match parts.as_slice() {
                    [_, _, "search"] => ExKind::Search,
                    [_, _, "delete"] => ExKind::Delete,
                    [_, _, "insert", v] => {
                        ExKind::Insert(v.parse().map_err(|_| "bad insert value")?)
                    }
                    _ => {
                        return Err(format!(
                            "op wants `origin key insert v|search|delete`: {line:?}"
                        ))
                    }
                };
                ops.push(ExOp {
                    origin: parts[0].parse().map_err(|_| "bad op origin")?,
                    key: parts[1].parse().map_err(|_| "bad op key")?,
                    kind,
                });
            }
            "choices" => choices = parse_nums(rest, "choice")?,
            "violation" => violations.push(rest.to_string()),
            _ => return Err(format!("unknown repro key {key:?}")),
        }
    }

    let proto = match proto.ok_or("missing proto line")? {
        "hash" => {
            if saw_merge {
                // Accepting it would parse, then re-format without the line —
                // breaking the format's canonical round-trip.
                return Err("merge is a blink setting; hash repros may not carry it".into());
            }
            Proto::Hash { capacity }
        }
        _ => Proto::Blink {
            protocol: protocol.ok_or("blink repro missing protocol line")?,
            fanout,
            merge,
        },
    };
    if n_procs == 0 {
        return Err("missing or zero n-procs".into());
    }
    Ok(Failure {
        scenario: Scenario {
            proto,
            n_procs,
            seed,
            preload,
            ops,
            faults,
        },
        choices,
        violations,
        strategy,
        sched_seed,
    })
}

/// Parse and replay a repro file, returning what the oracles say *now*.
/// (The stored `violation` lines are what they said when it was written.)
pub fn run_repro(text: &str) -> Result<RunReport, String> {
    let failure = parse_repro(text)?;
    Ok(replay_run(&failure.scenario, &failure.choices))
}

/// Render a `#[test]` function that embeds the repro and asserts it still
/// reproduces — byte-for-byte, since the embedded text is the whole input.
pub fn emit_test(name: &str, failure: &Failure) -> Result<String, String> {
    let repro = format_repro(failure)?;
    Ok(format!(
        r####"/// Auto-generated by `explore` — replays a shrunk failing schedule.
#[test]
fn {name}() {{
    let repro = r##"{repro}"##;
    let report = explore::run_repro(repro).expect("repro parses");
    assert!(
        !report.violations.is_empty(),
        "shrunk repro no longer reproduces a violation"
    );
}}
"####
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_failure() -> Failure {
        Failure {
            scenario: Scenario {
                proto: Proto::Blink {
                    protocol: ProtocolKind::Naive,
                    fanout: 4,
                    merge: MergeMode::Off,
                },
                n_procs: 3,
                seed: 42,
                preload: vec![0, 10, 20],
                ops: vec![
                    ExOp {
                        origin: 0,
                        key: 17,
                        kind: ExKind::Insert(1017),
                    },
                    ExOp {
                        origin: 2,
                        key: 88,
                        kind: ExKind::Search,
                    },
                ],
                faults: FaultPlan::lossy(0.05).with_dup(0.1).with_crash(CrashEvent {
                    proc: ProcId(1),
                    at: SimTime(400),
                    restart_at: Some(SimTime(1500)),
                }),
            },
            choices: vec![0, 3, 1, 2],
            violations: vec!["sequence oracle: lost update #12 (leaf-write)".into()],
            strategy: "lifo",
            sched_seed: 7,
        }
    }

    /// The three merge modes round-trip, and the model checker's strategy
    /// names survive a reparse instead of degrading to `replay`.
    #[test]
    fn wedged_mode_and_checker_strategies_round_trip() {
        let mut failure = sample_failure();
        failure.strategy = "dpor";
        let Proto::Blink { merge, .. } = &mut failure.scenario.proto else {
            unreachable!()
        };
        *merge = MergeMode::Wedged;
        let text = format_repro(&failure).expect("representable");
        assert!(text.contains("merge wedged"));
        assert!(text.contains("strategy dpor"));
        let back = parse_repro(&text).expect("parse");
        assert_eq!(back, failure);
        failure.strategy = "exhaustive";
        let back = parse_repro(&format_repro(&failure).unwrap()).unwrap();
        assert_eq!(back.strategy, "exhaustive");
    }

    /// Regression: a liveness failure whose fault plan carries a timed
    /// partition is not representable as a replayable repro — the CLI used
    /// to panic on it mid-report. The lossy formatter must always return
    /// bytes that carry the violations, and those bytes must *not* parse
    /// back as a replayable file.
    #[test]
    fn lossy_formatter_degrades_unrepresentable_failures() {
        let mut failure = sample_failure();
        failure.violations = vec!["liveness: proc 1 holds 1 merge request(s) pending forever \
             (no grant or decline ever arrived)"
            .into()];
        failure.scenario.faults = failure.scenario.faults.with_partition(simnet::Partition {
            start: SimTime(100),
            end: SimTime(200),
            side_a: vec![ProcId(0)],
            side_b: vec![ProcId(1)],
        });
        assert!(format_repro(&failure).is_err(), "still unrepresentable");
        let lossy = format_repro_lossy(&failure);
        assert!(lossy.contains("NOT replayable"));
        assert!(lossy.contains("liveness: proc 1"));
        assert!(
            parse_repro(&lossy).is_err(),
            "must not masquerade as a repro"
        );
        // And on a representable failure the lossy path is the real format.
        let ok = sample_failure();
        assert_eq!(format_repro_lossy(&ok), format_repro(&ok).unwrap());
    }

    #[test]
    fn round_trips() {
        let failure = sample_failure();
        let text = format_repro(&failure).unwrap();
        let parsed = parse_repro(&text).unwrap();
        assert_eq!(parsed, failure);
        // And formatting the parse is byte-identical: the format is
        // canonical.
        assert_eq!(format_repro(&parsed).unwrap(), text);
    }

    #[test]
    fn hash_round_trips() {
        let mut failure = sample_failure();
        failure.scenario.proto = Proto::Hash { capacity: 6 };
        let text = format_repro(&failure).unwrap();
        assert_eq!(parse_repro(&text).unwrap(), failure);
    }

    #[test]
    fn merge_and_delete_round_trip() {
        let mut failure = sample_failure();
        failure.scenario.proto = Proto::Blink {
            protocol: ProtocolKind::SemiSync,
            fanout: 4,
            merge: MergeMode::Unsafe,
        };
        failure.scenario.ops.push(ExOp {
            origin: 1,
            key: 10,
            kind: ExKind::Delete,
        });
        let text = format_repro(&failure).unwrap();
        assert!(text.contains("merge unsafe"));
        assert!(text.contains("op 1 10 delete"));
        let parsed = parse_repro(&text).unwrap();
        assert_eq!(parsed, failure);
        assert_eq!(format_repro(&parsed).unwrap(), text, "canonical");
    }

    #[test]
    fn merge_off_is_not_written_and_old_files_still_parse() {
        // The sample is MergeMode::Off: the line must be absent, and a file
        // written before the merge family existed parses to Off.
        let text = format_repro(&sample_failure()).unwrap();
        assert!(!text.contains("merge "));
        match parse_repro(&text).unwrap().scenario.proto {
            Proto::Blink { merge, .. } => assert_eq!(merge, MergeMode::Off),
            other => panic!("expected blink, got {other:?}"),
        }
        // And a hash repro smuggling a merge line is rejected outright.
        assert!(parse_repro("# explore repro v1\nproto hash\nmerge safe\nn-procs 3\n").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_repro("not a repro").is_err());
        assert!(parse_repro("# explore repro v1\nfrobnicate 3").is_err());
        assert!(parse_repro("# explore repro v1\nproto blink\nn-procs 3").is_err());
    }

    #[test]
    fn emitted_test_embeds_the_repro() {
        let failure = sample_failure();
        let test = emit_test("shrunk_case", &failure).unwrap();
        assert!(test.contains("fn shrunk_case()"));
        assert!(test.contains(&format_repro(&failure).unwrap()));
    }
}
