//! The shrinker: minimize a failing `(ops, fault plan, choice string)`
//! triple to a smallest case that still trips an oracle.
//!
//! Classic delta debugging, specialized to the three axes a scenario can
//! shrink along, iterated to a fixpoint (or a replay budget):
//!
//! 1. **Operations** — ddmin over the op list: remove contiguous chunks,
//!    halving the chunk size until single ops; greedily restart whenever a
//!    removal still reproduces.
//! 2. **Faults** — zero the drop and duplicate probabilities, drop each
//!    crash, clear partitions. A failure that survives with the faults
//!    gone is a pure reordering bug — the most valuable kind of repro.
//! 3. **Choices** — try the empty string (pure FIFO), then binary
//!    truncation: [`crate::sched::Replay`] pads an exhausted string with
//!    FIFO picks, so any prefix is a legal schedule.
//!
//! Every candidate is *re-run* and kept only if some oracle still fires;
//! the shrinker never assumes a mutation preserves the failure. The final
//! violations are whatever the minimized case actually produces (they may
//! differ in detail from the original's — the bug reached by a shorter
//! path often reports fewer symptoms).

use crate::scenario::{replay_run, Scenario};

/// A failing run: the scenario, the schedule-choice string that drove it,
/// and what the oracles reported. Produced by the explorer, consumed by the
/// shrinker and the repro writer.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure {
    /// The scenario (shrunk in place by [`shrink`]).
    pub scenario: Scenario,
    /// The recorded schedule-choice string.
    pub choices: Vec<u32>,
    /// Rendered oracle violations (non-empty).
    pub violations: Vec<String>,
    /// Which strategy found the failure (provenance, kept through
    /// shrinking).
    pub strategy: &'static str,
    /// The strategy's seed (provenance).
    pub sched_seed: u64,
}

/// Shrink statistics, mostly for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate replays attempted.
    pub candidates: u64,
    /// Candidates that still reproduced (i.e. accepted improvements).
    pub accepted: u64,
}

/// Minimize `original`, re-running at most `max_candidates` replays.
pub fn shrink(original: &Failure, max_candidates: u64) -> (Failure, ShrinkStats) {
    let mut best = original.clone();
    let mut stats = ShrinkStats::default();

    loop {
        let mut improved = false;
        improved |= shrink_ops(&mut best, max_candidates, &mut stats);
        improved |= shrink_faults(&mut best, max_candidates, &mut stats);
        improved |= shrink_choices(&mut best, max_candidates, &mut stats);
        if !improved || stats.candidates >= max_candidates {
            break;
        }
    }
    (best, stats)
}

/// Replay one candidate; if it still fails, install it as the new best.
fn attempt(
    best: &mut Failure,
    scenario: Scenario,
    choices: Vec<u32>,
    max_candidates: u64,
    stats: &mut ShrinkStats,
) -> bool {
    if stats.candidates >= max_candidates {
        return false;
    }
    stats.candidates += 1;
    let report = replay_run(&scenario, &choices);
    if report.violations.is_empty() {
        return false;
    }
    stats.accepted += 1;
    *best = Failure {
        scenario,
        choices,
        violations: report.violations,
        strategy: best.strategy,
        sched_seed: best.sched_seed,
    };
    true
}

/// ddmin over the op list. Returns whether anything was removed.
fn shrink_ops(best: &mut Failure, max_candidates: u64, stats: &mut ShrinkStats) -> bool {
    let mut improved = false;
    let mut chunk = best.scenario.ops.len().div_ceil(2).max(1);
    while chunk >= 1 && !best.scenario.ops.is_empty() {
        let mut start = 0;
        while start < best.scenario.ops.len() {
            let end = (start + chunk).min(best.scenario.ops.len());
            let mut ops = best.scenario.ops.clone();
            ops.drain(start..end);
            let candidate = Scenario {
                ops,
                ..best.scenario.clone()
            };
            if attempt(best, candidate, best.choices.clone(), max_candidates, stats) {
                improved = true;
                // Do not advance: the chunk now starting at `start` is new.
            } else {
                start += chunk;
            }
            if stats.candidates >= max_candidates {
                return improved;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }
    improved
}

/// Simplify the fault plan one axis at a time.
fn shrink_faults(best: &mut Failure, max_candidates: u64, stats: &mut ShrinkStats) -> bool {
    let mut improved = false;

    if best.scenario.faults.drop_prob > 0.0 {
        let mut faults = best.scenario.faults.clone();
        faults.drop_prob = 0.0;
        let candidate = Scenario {
            faults,
            ..best.scenario.clone()
        };
        improved |= attempt(best, candidate, best.choices.clone(), max_candidates, stats);
    }
    if best.scenario.faults.dup_prob > 0.0 {
        let mut faults = best.scenario.faults.clone();
        faults.dup_prob = 0.0;
        let candidate = Scenario {
            faults,
            ..best.scenario.clone()
        };
        improved |= attempt(best, candidate, best.choices.clone(), max_candidates, stats);
    }
    if !best.scenario.faults.partitions.is_empty() {
        let mut faults = best.scenario.faults.clone();
        faults.partitions.clear();
        let candidate = Scenario {
            faults,
            ..best.scenario.clone()
        };
        improved |= attempt(best, candidate, best.choices.clone(), max_candidates, stats);
    }
    // Drop crashes one at a time (index resets after an accepted removal —
    // the list shrank underneath us).
    let mut i = 0;
    while i < best.scenario.faults.crashes.len() {
        let mut faults = best.scenario.faults.clone();
        faults.crashes.remove(i);
        let candidate = Scenario {
            faults,
            ..best.scenario.clone()
        };
        if attempt(best, candidate, best.choices.clone(), max_candidates, stats) {
            improved = true;
        } else {
            i += 1;
        }
    }
    improved
}

/// Shorten the choice string: empty first, then binary truncation.
fn shrink_choices(best: &mut Failure, max_candidates: u64, stats: &mut ShrinkStats) -> bool {
    let mut improved = false;
    if !best.choices.is_empty() {
        improved |= attempt(
            best,
            best.scenario.clone(),
            Vec::new(),
            max_candidates,
            stats,
        );
    }
    loop {
        let len = best.choices.len();
        if len == 0 {
            break;
        }
        let half = len / 2;
        if half == len {
            break;
        }
        let candidate: Vec<u32> = best.choices[..half].to_vec();
        if !attempt(
            best,
            best.scenario.clone(),
            candidate,
            max_candidates,
            stats,
        ) {
            break;
        }
        improved = true;
    }
    // Trailing explicit-FIFO picks are identical to replay padding; strip
    // them (verified by one replay, like every other mutation).
    let trimmed_len = best
        .choices
        .iter()
        .rposition(|&c| c != 0)
        .map_or(0, |p| p + 1);
    if trimmed_len < best.choices.len() {
        improved |= attempt(
            best,
            best.scenario.clone(),
            best.choices[..trimmed_len].to_vec(),
            max_candidates,
            stats,
        );
    }
    improved
}
