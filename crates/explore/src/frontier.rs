//! Frontier persistence: save/load the model checker's search state so a
//! budget-capped [`crate::dpor::check`] run is resumable across processes.
//!
//! The file is line-oriented text in the house style (no serde):
//!
//! ```text
//! # explore frontier v1
//! scenario 1f2e3d4c5b6a7988
//! schedules 1234
//! complete 0
//! frame 17 b 17 23 41 d 23
//! v 00ff00ff00ff00ff 12
//! ```
//!
//! * `scenario` — a digest of the scenario **and** the soundness-relevant
//!   check options (depth, DPOR on/off). Loading refuses a mismatch rather
//!   than silently resuming the wrong search.
//! * `frame` — one DFS choice point: selected seq, `b`-prefixed backtrack
//!   seqs, `d`-prefixed done seqs. Frame order is stack order.
//! * `v` — one visited fingerprint (hex) with the earliest step it was
//!   reached at.
//!
//! Enabled sets are deliberately not persisted: they are a deterministic
//! function of the prefix and are refreshed from the first run after a
//! resume (see [`crate::dpor::FrameState`]).

use std::fmt::Write as _;
use std::path::Path;

use crate::dpor::{CheckOptions, CheckState, FrameState};
use crate::scenario::Scenario;

const HEADER: &str = "# explore frontier v1";

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest identifying one search: the scenario plus the options that change
/// what a saved frontier *means* (depth bound, DPOR reduction). Two
/// sessions may only share a frontier file if these agree.
pub fn scenario_id(scenario: &Scenario, opts: &CheckOptions) -> u64 {
    let mut h = fnv1a(format!("{scenario:?}").as_bytes(), 0xcbf2_9ce4_8422_2325);
    h = fnv1a(&[opts.dpor as u8], h);
    h = fnv1a(&opts.depth.to_le_bytes(), h);
    h
}

/// Render a frontier to file text.
pub fn format_frontier(id: u64, state: &CheckState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "scenario {id:016x}");
    let _ = writeln!(out, "schedules {}", state.schedules);
    let _ = writeln!(out, "complete {}", state.complete as u8);
    for f in &state.frames {
        let mut line = format!("frame {} b", f.selected);
        for s in &f.backtrack {
            let _ = write!(line, " {s}");
        }
        let _ = write!(line, " d");
        for s in &f.done {
            let _ = write!(line, " {s}");
        }
        let _ = writeln!(out, "{line}");
    }
    for (fp, step) in &state.visited {
        let _ = writeln!(out, "v {fp:016x} {step}");
    }
    out
}

/// Parse frontier text, checking it belongs to the search identified by
/// `id`.
pub fn parse_frontier(text: &str, id: u64) -> Result<CheckState, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(format!("missing header line {HEADER:?}"));
    }
    let mut state = CheckState::default();
    let mut saw_id = false;
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "scenario" => {
                let file_id = u64::from_str_radix(rest, 16).map_err(|_| "bad scenario id")?;
                if file_id != id {
                    return Err(format!(
                        "frontier belongs to a different search \
                         (file {file_id:016x}, expected {id:016x}) — \
                         delete it or point --frontier elsewhere"
                    ));
                }
                saw_id = true;
            }
            "schedules" => state.schedules = rest.parse().map_err(|_| "bad schedules")?,
            "complete" => state.complete = rest == "1",
            "frame" => {
                let mut toks = rest.split_whitespace();
                let selected = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("frame wants a selected seq")?;
                let mut backtrack = Vec::new();
                let mut done = Vec::new();
                let mut bucket: Option<&mut Vec<u64>> = None;
                for t in toks {
                    match t {
                        "b" => bucket = Some(&mut backtrack),
                        "d" => bucket = Some(&mut done),
                        _ => bucket
                            .as_deref_mut()
                            .ok_or("frame seq outside b/d section")?
                            .push(t.parse().map_err(|_| format!("bad frame seq {t:?}"))?),
                    }
                }
                state.frames.push(FrameState {
                    selected,
                    backtrack,
                    done,
                });
            }
            "v" => {
                let (fp, step) = rest.split_once(' ').ok_or("v wants `fp step`")?;
                state.visited.push((
                    u64::from_str_radix(fp, 16).map_err(|_| "bad fingerprint")?,
                    step.trim().parse().map_err(|_| "bad visited step")?,
                ));
            }
            _ => return Err(format!("unknown frontier key {key:?}")),
        }
    }
    if !saw_id {
        return Err("missing scenario line".into());
    }
    Ok(state)
}

/// Load a frontier file. `Ok(None)` when the file does not exist (a fresh
/// search); `Err` on a corrupt file or a scenario-id mismatch.
pub fn load(path: &Path, id: u64) -> Result<Option<CheckState>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_frontier(&text, id).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}

/// Write a frontier file (atomically, via a sibling temp file).
pub fn save(path: &Path, id: u64, state: &CheckState) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format_frontier(id, state))
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{merge_race_scenario, MergeMode};

    fn sample() -> CheckState {
        CheckState {
            frames: vec![
                FrameState {
                    selected: 17,
                    backtrack: vec![17, 23, 41],
                    done: vec![23],
                },
                FrameState {
                    selected: 99,
                    backtrack: vec![99],
                    done: vec![],
                },
            ],
            visited: vec![(0xdead_beef, 3), (42, 0)],
            schedules: 1234,
            complete: false,
        }
    }

    #[test]
    fn frontier_round_trips() {
        let state = sample();
        let text = format_frontier(7, &state);
        let back = parse_frontier(&text, 7).expect("parse");
        assert_eq!(back, state);
        // Canonical: formatting the parse reproduces the bytes.
        assert_eq!(format_frontier(7, &back), text);
    }

    #[test]
    fn mismatched_search_is_refused() {
        let text = format_frontier(7, &sample());
        let err = parse_frontier(&text, 8).unwrap_err();
        assert!(err.contains("different search"), "{err}");
    }

    #[test]
    fn id_covers_scenario_and_bounds() {
        let a = merge_race_scenario(MergeMode::Safe);
        let b = merge_race_scenario(MergeMode::Unsafe);
        let opts = CheckOptions::default();
        assert_ne!(scenario_id(&a, &opts), scenario_id(&b, &opts));
        let deeper = CheckOptions {
            depth: opts.depth + 1,
            ..opts.clone()
        };
        assert_ne!(scenario_id(&a, &opts), scenario_id(&a, &deeper));
        let undpor = CheckOptions {
            dpor: false,
            ..opts.clone()
        };
        assert_ne!(scenario_id(&a, &opts), scenario_id(&a, &undpor));
    }
}
