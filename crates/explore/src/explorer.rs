//! The exploration loop: run a scenario under many schedules, apply the
//! oracle stack after each, shrink whatever fails.
//!
//! Determinism contract: with a wall-clock budget of `None`, the report is
//! a pure function of `(scenario, seed, budget)` — the strategies cycle in
//! a fixed order, each run's scheduler seed is derived by splitmix64 from
//! the explorer seed and the iteration index, and the per-run schedule
//! digest folds every choice made. Two invocations with the same inputs
//! produce identical digests, identical verdicts, and byte-identical
//! shrunk repro files. (A wall-clock budget trades that away for
//! predictable CI latency; the iteration count then becomes a cap.)

use std::time::{Duration, Instant};

use crate::scenario::{run_recorded, Scenario};
use crate::sched::Strategy;
use crate::shrink::{shrink, Failure, ShrinkStats};

/// How much work one [`explore`] call may do.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Schedules to explore (exact when `wall` is `None`, a cap otherwise).
    pub iterations: u64,
    /// Optional wall-clock cutoff, checked between runs. **Breaks the
    /// determinism contract** — leave `None` anywhere reproducibility
    /// matters.
    pub wall: Option<Duration>,
    /// Stop after this many (shrunk) failures.
    pub max_failures: usize,
    /// Replay budget per shrink.
    pub shrink_candidates: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            iterations: 100,
            wall: None,
            max_failures: 1,
            shrink_candidates: 300,
        }
    }
}

/// What one exploration produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Schedules actually run.
    pub runs: u64,
    /// Total scheduling decisions across all runs.
    pub choices_made: u64,
    /// FNV-1a fold of every schedule-choice string, in run order — two
    /// deterministic explorations are identical iff their digests are.
    pub schedule_digest: u64,
    /// Shrunk failures, in discovery order.
    pub failures: Vec<Failure>,
    /// Shrink effort per failure (parallel to `failures`).
    pub shrink_stats: Vec<ShrinkStats>,
}

/// splitmix64: the per-iteration seed derivation (public so tests can
/// predict a specific run's scheduler seed).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut acc: u64, word: u32) -> u64 {
    for byte in word.to_le_bytes() {
        acc = (acc ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Explore `scenario` under `budget`, cycling strategies, shrinking every
/// failure found. See the module docs for the determinism contract.
pub fn explore(scenario: &Scenario, seed: u64, budget: &Budget) -> Report {
    let start = Instant::now();
    let mut report = Report {
        schedule_digest: FNV_OFFSET,
        ..Report::default()
    };
    for i in 0..budget.iterations {
        if let Some(wall) = budget.wall {
            if start.elapsed() >= wall {
                break;
            }
        }
        let strategy = Strategy::ALL[(i % Strategy::ALL.len() as u64) as usize];
        let sched_seed = splitmix64(seed ^ splitmix64(i.wrapping_add(1)));
        let (run, choices) = run_recorded(scenario, strategy, sched_seed);
        report.runs += 1;
        report.choices_made += choices.len() as u64;
        for &c in &choices {
            report.schedule_digest = fnv_fold(report.schedule_digest, c);
        }
        if !run.violations.is_empty() {
            let failure = Failure {
                scenario: scenario.clone(),
                choices,
                violations: run.violations,
                strategy: strategy.name(),
                sched_seed,
            };
            let (shrunk, stats) = shrink(&failure, budget.shrink_candidates);
            report.failures.push(shrunk);
            report.shrink_stats.push(stats);
            if report.failures.len() >= budget.max_failures {
                break;
            }
        }
    }
    report
}
