//! # explore — schedule exploration with history-theory oracles
//!
//! The simulator (`simnet`) is deterministic: one seed, one schedule. That
//! makes runs reproducible but leaves the schedule *space* unexplored — and
//! the paper's correctness argument (§3) quantifies over all schedules:
//! lazy protocols are correct because every pair of actions that can be
//! reordered commutes. This crate searches that space:
//!
//! * **Schedule controller** — [`sched`] plugs into the simulator's
//!   event-queue hook ([`simnet::Scheduler`]) and permutes delivery order
//!   among the *enabled* events (per-channel FIFO heads, timers, pending
//!   faults), under a seed. Strategies range from uniform random to
//!   targeted adversaries (LIFO, processor starvation, fault-burst
//!   alignment).
//! * **Oracle stack** — [`scenario`] replays the structural checkers, the
//!   §3 history-log check, and the sequence oracle
//!   ([`history::check_sequences`]) after every schedule, so a protocol
//!   bug surfaces as a typed violation no matter which interleaving
//!   exposes it.
//! * **Shrinker** — [`shrink`] minimizes a failing `(ops, faults,
//!   choices)` triple by delta debugging, re-running every candidate.
//! * **Repro files** — [`repro`] serializes the shrunk case to a
//!   self-contained text file; replaying it reproduces the execution
//!   byte-for-byte, and [`repro::emit_test`] renders it as a `#[test]`.
//! * **Model checker** — [`dpor`] replaces sampling with bounded-exhaustive
//!   enumeration for small configs: depth-first search over the same
//!   choice points, dynamic partial-order reduction whose independence
//!   relation is the history taxonomy's commutation table, state-digest
//!   pruning, and liveness oracles under a fair-schedule bound.
//!   [`frontier`] checkpoints a search to disk so long runs resume.
//!
//! The `explore` binary (`cargo run -p explore -- --help`) wraps all of it
//! with iteration/time budgets for CI smoke jobs and desk debugging.

#![warn(missing_docs)]

pub mod dpor;
pub mod explorer;
pub mod frontier;
pub mod repro;
pub mod scenario;
pub mod sched;
pub mod shrink;

pub use dpor::{check, CheckOptions, CheckReport, CheckState};
pub use explorer::{explore, splitmix64, Budget, Report};
pub use repro::{emit_test, format_repro, format_repro_lossy, parse_repro, run_repro};
pub use scenario::{
    blink_scenario, crash_faults, hash_scenario, light_faults, merge_race_scenario, merge_scenario,
    replay_run, run_recorded, run_under, wedged_merge_scenario, ExKind, ExOp, MergeMode, Proto,
    RunReport, Scenario,
};
pub use sched::{Recording, Replay, Strategy};
pub use shrink::{shrink, Failure, ShrinkStats};
