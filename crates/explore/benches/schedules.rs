//! Throughput of the exploration loop itself: schedules per second for the
//! canned scenarios, per strategy. The tentpole claim is "thousands of
//! distinct legal interleavings per wall-second instead of the one the
//! latency model yields" — this bench is that number.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbtree::ProtocolKind;
use explore::{blink_scenario, hash_scenario, light_faults, run_recorded, Strategy};

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedules");
    let blink = blink_scenario(ProtocolKind::SemiSync, 7, 10, light_faults());
    let hash = hash_scenario(7, 10, light_faults());
    for strategy in Strategy::ALL {
        g.bench_with_input(
            BenchmarkId::new("blink", strategy.name()),
            &strategy,
            |b, &s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(run_recorded(&blink, s, seed))
                })
            },
        );
    }
    g.bench_with_input(
        BenchmarkId::new("hash", Strategy::Random.name()),
        &Strategy::Random,
        |b, &s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(run_recorded(&hash, s, seed))
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
