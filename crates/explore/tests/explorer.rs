//! The explorer's own acceptance suite: determinism of the exploration
//! loop, oracle validation over >1000 schedules with faults enabled, and
//! the catch-and-shrink path on the deliberately broken Naive protocol.

use dbtree::ProtocolKind;
use explore::{
    blink_scenario, crash_faults, emit_test, explore, format_repro, hash_scenario, light_faults,
    merge_race_scenario, merge_scenario, run_repro, Budget, MergeMode, Proto,
};
use simnet::FaultPlan;

/// The broken-protocol scenario: Naive (Fig 4) discards relayed inserts
/// that arrive out of a copy's key range, so an insert racing a split is
/// silently lost under the right interleaving.
fn naive_scenario() -> explore::Scenario {
    blink_scenario(ProtocolKind::Naive, 3, 16, FaultPlan::none())
}

/// Acceptance: same seed, same budget → identical schedule digest,
/// identical verdicts, and byte-identical shrunk repro files.
#[test]
fn same_budget_twice_is_byte_identical() {
    let scenario = naive_scenario();
    let budget = Budget {
        iterations: 10,
        ..Budget::default()
    };
    let first = explore(&scenario, 42, &budget);
    let second = explore(&scenario, 42, &budget);

    assert_eq!(first.runs, second.runs);
    assert_eq!(first.choices_made, second.choices_made);
    assert_eq!(first.schedule_digest, second.schedule_digest);
    assert_eq!(first.failures.len(), second.failures.len());
    assert!(!first.failures.is_empty(), "naive scenario must fail");

    // Diff the repro *files*, as written to disk, byte for byte.
    let dir = std::env::temp_dir();
    let path_a = dir.join("explore_determinism_a.repro");
    let path_b = dir.join("explore_determinism_b.repro");
    std::fs::write(&path_a, format_repro(&first.failures[0]).unwrap()).unwrap();
    std::fs::write(&path_b, format_repro(&second.failures[0]).unwrap()).unwrap();
    let bytes_a = std::fs::read(&path_a).unwrap();
    let bytes_b = std::fs::read(&path_b).unwrap();
    assert_eq!(bytes_a, bytes_b, "shrunk repro files differ across runs");

    // A different explorer seed walks a different part of the space. The
    // naive scenario fails on its first (seed-independent FIFO) schedule,
    // so probe divergence on a clean scenario whose runs get past the
    // seeded strategies.
    let clean = hash_scenario(13, 10, light_faults());
    let small = Budget {
        iterations: 6,
        ..Budget::default()
    };
    let a = explore(&clean, 42, &small);
    let b = explore(&clean, 43, &small);
    assert_ne!(
        a.schedule_digest, b.schedule_digest,
        "distinct seeds should explore distinct schedules"
    );
}

/// One clean-protocol exploration leg of the ≥1000-schedule acceptance
/// run. Every schedule goes through the full oracle stack — structural
/// checkers, §3 history check, and the sequence oracle (complete /
/// compatible / ordered) — and none may fire.
fn assert_clean(scenario: &explore::Scenario, seed: u64, iterations: u64) {
    let budget = Budget {
        iterations,
        ..Budget::default()
    };
    let report = explore(scenario, seed, &budget);
    assert_eq!(report.runs, iterations, "budget must be exhausted");
    assert!(
        report.choices_made > report.runs,
        "schedules were not actually perturbed"
    );
    assert!(
        report.failures.is_empty(),
        "oracle fired on a correct protocol: {:?}",
        report.failures[0].violations
    );
}

// The ≥1000-schedule oracle validation, split into four tests so the
// harness runs the legs in parallel: 300 + 225 + 300 + 225 = 1050
// schedules, all with faults enabled, across both protocols.

#[test]
fn blink_semisync_faulty_oracles_hold_over_300_schedules() {
    assert_clean(
        &blink_scenario(ProtocolKind::SemiSync, 11, 8, light_faults()),
        1,
        300,
    );
}

#[test]
fn blink_crash_oracles_hold_over_225_schedules() {
    assert_clean(
        &blink_scenario(ProtocolKind::SemiSync, 12, 8, crash_faults(1)),
        2,
        225,
    );
}

#[test]
fn hash_faulty_oracles_hold_over_300_schedules() {
    assert_clean(&hash_scenario(13, 10, light_faults()), 3, 300);
}

#[test]
fn hash_crash_oracles_hold_over_225_schedules() {
    assert_clean(&hash_scenario(14, 10, crash_faults(2)), 4, 225);
}

// The merge-enabled legs: same oracle stack plus the deleted-key check,
// over scenarios whose deletes empty (and retire) leaves mid-schedule.
// 300 + 225 + 225 = 750 more fault-enabled schedules on top of the 1050
// above.

#[test]
fn merge_semisync_faulty_oracles_hold_over_300_schedules() {
    assert_clean(
        &merge_scenario(ProtocolKind::SemiSync, 21, 12, light_faults()),
        5,
        300,
    );
}

#[test]
fn merge_sync_faulty_oracles_hold_over_225_schedules() {
    assert_clean(
        &merge_scenario(ProtocolKind::Sync, 22, 12, light_faults()),
        6,
        225,
    );
}

#[test]
fn merge_crash_oracles_hold_over_225_schedules() {
    assert_clean(
        &merge_scenario(ProtocolKind::SemiSync, 23, 12, crash_faults(1)),
        7,
        225,
    );
}

/// The distilled merge/insert race under the *safe* protocol: every
/// schedule must pass, including the ones that land the insert inside the
/// merge's grant round-trip (the commit-time re-verify declines those).
#[test]
fn safe_merge_survives_the_race_schedules() {
    assert_clean(&merge_race_scenario(MergeMode::Safe), 8, 200);
}

/// Acceptance: the injected check-then-act merge bug (commit skips the
/// emptiness re-verify, discarding an insert that raced the grant) is
/// caught, shrunk to a ≤10-op repro, and the repro file replays to a
/// violation.
#[test]
fn unsafe_merge_race_is_caught_and_shrunk() {
    let scenario = merge_race_scenario(MergeMode::Unsafe);
    let budget = Budget {
        iterations: 200,
        ..Budget::default()
    };
    let report = explore(&scenario, 9, &budget);
    assert_eq!(
        report.failures.len(),
        1,
        "the unsafe merge must be caught within the budget"
    );
    let failure = &report.failures[0];
    assert!(!failure.violations.is_empty());
    assert!(
        failure.scenario.ops.len() <= 10,
        "shrunk to {} ops, wanted <= 10",
        failure.scenario.ops.len()
    );
    assert!(
        matches!(
            failure.scenario.proto,
            Proto::Blink {
                merge: MergeMode::Unsafe,
                ..
            }
        ),
        "shrinking must not change the merge mode under test"
    );

    // The repro file round-trips and still reproduces.
    let text = format_repro(failure).unwrap();
    assert!(text.contains("merge unsafe"), "mode is in the file");
    assert!(text.contains("delete"), "the repro keeps a delete");
    let replayed = run_repro(&text).expect("repro parses");
    assert!(
        !replayed.violations.is_empty(),
        "shrunk repro no longer reproduces"
    );
}

/// Acceptance: the deliberately broken protocol is caught, shrunk to a
/// small repro (≤10 events), and the repro file replays to a violation.
#[test]
fn naive_split_race_is_caught_and_shrunk() {
    let scenario = naive_scenario();
    let budget = Budget {
        iterations: 25,
        ..Budget::default()
    };
    let report = explore(&scenario, 7, &budget);
    assert_eq!(report.failures.len(), 1, "naive must be caught");
    let failure = &report.failures[0];

    assert!(
        !failure.violations.is_empty(),
        "failure carries its violations"
    );
    assert!(
        failure.scenario.ops.len() <= 10,
        "shrunk to {} ops, wanted <= 10",
        failure.scenario.ops.len()
    );
    assert!(
        matches!(
            failure.scenario.proto,
            Proto::Blink {
                protocol: ProtocolKind::Naive,
                ..
            }
        ),
        "shrinking must not change the protocol under test"
    );
    let stats = &report.shrink_stats[0];
    assert!(stats.accepted > 0, "shrinker found no reduction at all");

    // The repro file is self-contained: parsing and replaying it (the
    // byte-for-byte path a generated #[test] takes) still reproduces.
    let text = format_repro(failure).unwrap();
    let replayed = run_repro(&text).expect("repro parses");
    assert!(
        !replayed.violations.is_empty(),
        "shrunk repro no longer reproduces"
    );

    // And the generated test embeds exactly that file.
    let test = emit_test("naive_split_race", failure).unwrap();
    assert!(test.contains("fn naive_split_race()"));
    assert!(test.contains(&text));
}

/// The same broken protocol with the shrunk repro's ops replayed under the
/// plain simulator order still fails — i.e. the shrinker's output is not an
/// artifact of the exploration scheduler.
#[test]
fn shrunk_naive_repro_survives_reparse_roundtrip() {
    let scenario = naive_scenario();
    let report = explore(
        &scenario,
        7,
        &Budget {
            iterations: 25,
            ..Budget::default()
        },
    );
    let failure = &report.failures[0];
    let text = format_repro(failure).unwrap();
    let parsed = explore::parse_repro(&text).unwrap();
    assert_eq!(&parsed, failure, "repro round-trip is lossless");
    assert_eq!(
        format_repro(&parsed).unwrap(),
        text,
        "repro format is canonical"
    );
}
