//! Equivalence under perturbed schedules (satellite of the exploration
//! harness): the canonical cross-runtime equivalence workloads — the same
//! ones `tests/threaded_equivalence.rs` and the dhash suite drive, shared
//! via `testkit` — must reach their schedule-independent final contents
//! under explorer-perturbed delivery orders too, not just under the latency
//! model's order and the thread scheduler's.
//!
//! This closes the loop between the two suites: the threaded runs sample
//! whatever interleavings the OS happens to produce; here the schedule
//! controller *chooses* adversarial ones (uniform random and LIFO) and the
//! same facts must hold.

use std::collections::BTreeSet;

use dbtree::{checker, BuildSpec, DbCluster, GlobalView, ProtocolKind, TreeConfig};
use dhash::{check_hash_cluster, HashCluster};
use explore::Strategy;
use simnet::SimConfig;
use testkit::{blink_fresh_workload, hash_fresh_workload, EQ_N_PROCS, EQ_SEEDS};

/// How many of the canonical seeds the perturbed suite covers (the full
/// matrix is the threaded suites' job; two seeds here keep the perturbed
/// leg affordable while sharing the exact same workload definitions).
const PERTURBED_SEEDS: u64 = 2;

#[test]
fn blink_equivalence_holds_under_perturbed_schedules() {
    for seed in EQ_SEEDS.take(PERTURBED_SEEDS as usize) {
        for strategy in [Strategy::Random, Strategy::Lifo] {
            let (preload, ops, expected) = blink_fresh_workload(seed, 60);
            let spec = BuildSpec::new(
                preload,
                EQ_N_PROCS,
                TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3),
            );
            let mut cluster = DbCluster::build(&spec, SimConfig::seeded(seed));
            cluster
                .sim
                .set_scheduler(strategy.build(seed ^ 0x5EED, EQ_N_PROCS));
            for op in &ops {
                cluster.submit(*op);
            }
            let records = cluster
                .try_run_to_quiescence()
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", strategy.name()));
            assert_eq!(
                records.len(),
                ops.len(),
                "seed {seed} {}: operations lost acknowledgement",
                strategy.name()
            );

            // Same facts the threaded suite asserts: exact final contents
            // findable by root navigation, and a clean oracle stack.
            {
                let procs: Vec<_> = cluster.sim.procs().map(|(pid, p)| (pid, &**p)).collect();
                let view = GlobalView::from_procs(procs.iter().copied());
                for (&k, &v) in &expected {
                    assert_eq!(
                        view.find(k),
                        Some(v),
                        "seed {seed} {}: key {k} missing or wrong",
                        strategy.name()
                    );
                }
            }
            let keys: BTreeSet<u64> = expected.keys().copied().collect();
            let violations = checker::check_all(&mut cluster, &keys);
            assert!(
                violations.is_empty(),
                "seed {seed} {}: {violations:?}",
                strategy.name()
            );
        }
    }
}

#[test]
fn hash_equivalence_holds_under_perturbed_schedules() {
    for seed in EQ_SEEDS.take(PERTURBED_SEEDS as usize) {
        for strategy in [Strategy::Random, Strategy::Lifo] {
            let (spec, ops, expected) = hash_fresh_workload(seed, 80);
            let mut cluster = HashCluster::build(&spec, SimConfig::seeded(seed));
            cluster
                .sim
                .set_scheduler(strategy.build(seed ^ 0x5EED, spec.n_procs));
            for op in &ops {
                cluster.submit(op.origin, op.key, op.kind);
            }
            let stats = cluster
                .try_run_to_quiescence()
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", strategy.name()));
            assert_eq!(
                stats.records.len(),
                ops.len(),
                "seed {seed} {}: operations lost acknowledgement",
                strategy.name()
            );
            assert_eq!(stats.lost(), 0, "seed {seed}: lazy protocol dropped ops");
            let violations = check_hash_cluster(&mut cluster, &expected);
            assert!(
                violations.is_empty(),
                "seed {seed} {}: {violations:?}",
                strategy.name()
            );
        }
    }
}
