//! # workload — synthetic workloads for the dB-tree experiments
//!
//! The paper reports no workload traces; its claims are structural. These
//! generators supply the key streams and operation mixes the experiment
//! harness sweeps over: uniform, Zipf-skewed, sequential (the split-heavy
//! adversary), and hotspot distributions, plus operation-mix composition and
//! serializable traces for replay.

#![warn(missing_docs)]

mod dist;
mod mix;
mod trace;

pub use dist::{KeyDist, Zipf};
pub use mix::{Mix, Op, OpKind, WorkloadGen};
pub use trace::Trace;
