//! Operation mixes and the workload generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist::KeyDist;

/// The kind of a client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Point lookup.
    Search,
    /// Insert (the paper's primary update).
    Insert,
    /// Delete (a lazy tombstone write; exercises merge-at-empty when the
    /// tree enables it).
    Delete,
    /// Range scan starting at the key (the leaf-chain walk).
    Scan,
}

/// One client operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// What to do.
    pub kind: OpKind,
    /// The key.
    pub key: u64,
    /// The value, for inserts (derived from the key by default).
    pub value: u64,
    /// The processor the client submits the operation to.
    pub origin: u32,
}

/// Operation-kind ratios. One uniform draw per op is partitioned
/// search → delete → scan → insert, so a mix with zero delete and scan
/// fractions generates the byte-identical stream it did before those kinds
/// existed (same RNG consumption, same boundaries).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// Probability an operation is a search.
    pub search_fraction: f64,
    /// Probability an operation is a delete (the merge-at-empty driver).
    #[serde(default)]
    pub delete_fraction: f64,
    /// Probability an operation is a range scan.
    #[serde(default)]
    pub scan_fraction: f64,
}

impl Mix {
    /// All inserts.
    pub const INSERT_ONLY: Mix = Mix {
        search_fraction: 0.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// All searches.
    pub const SEARCH_ONLY: Mix = Mix {
        search_fraction: 1.0,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// The read-mostly mix the dB-tree targets (interior nodes rarely
    /// updated, leaves mostly updated).
    pub const READ_HEAVY: Mix = Mix {
        search_fraction: 0.9,
        delete_fraction: 0.0,
        scan_fraction: 0.0,
    };
    /// Insert/delete churn with a sprinkle of reads and scans: the
    /// delete-heavy regime where lazy merge-at-empty must reclaim nodes.
    pub const DELETE_CHURN: Mix = Mix {
        search_fraction: 0.05,
        delete_fraction: 0.45,
        scan_fraction: 0.05,
    };
}

/// A deterministic operation stream.
#[derive(Debug)]
pub struct WorkloadGen {
    dist: KeyDist,
    mix: Mix,
    procs: u32,
    rng: SmallRng,
}

impl WorkloadGen {
    /// A generator drawing keys from `dist`, kinds from `mix`, and origins
    /// round-robin-randomly over `procs` processors.
    pub fn new(dist: KeyDist, mix: Mix, procs: u32, seed: u64) -> Self {
        assert!(procs > 0, "need at least one processor");
        WorkloadGen {
            dist,
            mix,
            procs,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.dist.next_key(&mut self.rng);
        let r = self.rng.gen::<f64>();
        let m = self.mix;
        let kind = if r < m.search_fraction {
            OpKind::Search
        } else if r < m.search_fraction + m.delete_fraction {
            OpKind::Delete
        } else if r < m.search_fraction + m.delete_fraction + m.scan_fraction {
            OpKind::Scan
        } else {
            OpKind::Insert
        };
        Op {
            kind,
            key,
            value: key.wrapping_mul(31).wrapping_add(7),
            origin: self.rng.gen_range(0..self.procs),
        }
    }

    /// Generate a batch.
    pub fn batch(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

impl Iterator for WorkloadGen {
    type Item = Op;
    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_respected() {
        let mut gen = WorkloadGen::new(KeyDist::Uniform { n: 100 }, Mix::READ_HEAVY, 4, 9);
        let ops = gen.batch(10_000);
        let searches = ops.iter().filter(|o| o.kind == OpKind::Search).count();
        assert!((8_500..9_500).contains(&searches), "searches: {searches}");
        assert!(ops.iter().all(|o| o.origin < 4));
    }

    #[test]
    fn deterministic_by_seed() {
        let mk =
            || WorkloadGen::new(KeyDist::Uniform { n: 50 }, Mix::INSERT_ONLY, 2, 77).batch(100);
        assert_eq!(mk(), mk());
    }

    #[test]
    fn insert_only_mix() {
        let mut gen = WorkloadGen::new(KeyDist::Uniform { n: 10 }, Mix::INSERT_ONLY, 1, 0);
        assert!(gen.batch(100).iter().all(|o| o.kind == OpKind::Insert));
    }

    #[test]
    fn churn_mix_draws_all_kinds() {
        let mut gen = WorkloadGen::new(KeyDist::Uniform { n: 100 }, Mix::DELETE_CHURN, 2, 3);
        let ops = gen.batch(10_000);
        let count = |k: OpKind| ops.iter().filter(|o| o.kind == k).count();
        assert!(
            (4_000..5_000).contains(&count(OpKind::Delete)),
            "deletes: {}",
            count(OpKind::Delete)
        );
        assert!(count(OpKind::Scan) > 0);
        assert!(count(OpKind::Search) > 0);
        assert!(count(OpKind::Insert) > 0);
    }

    #[test]
    fn zero_fractions_never_emit_new_kinds() {
        // Mixes predating delete/scan must generate the identical stream:
        // one draw per op, partitioned, with both new regions empty.
        let mut gen = WorkloadGen::new(KeyDist::Uniform { n: 100 }, Mix::READ_HEAVY, 4, 9);
        assert!(gen
            .batch(5_000)
            .iter()
            .all(|o| matches!(o.kind, OpKind::Search | OpKind::Insert)));
    }

    #[test]
    fn iterator_impl() {
        let gen = WorkloadGen::new(KeyDist::Uniform { n: 10 }, Mix::SEARCH_ONLY, 1, 0);
        let v: Vec<Op> = gen.into_iter().take(5).collect();
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|o| o.kind == OpKind::Search));
    }
}
