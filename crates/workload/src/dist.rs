//! Key distributions.

use rand::Rng;

/// A Zipf(θ) distribution over `0..n`, rank 0 most popular.
///
/// Implemented by inverting a precomputed harmonic CDF (exact, O(log n) per
/// sample, O(n) memory). Suitable for the n ≤ ~10⁷ key spaces the
/// experiments use; implemented here to stay within the approved dependency
/// set.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Zipf over `0..n` with exponent `theta` (`theta = 0` is uniform;
    /// classic YCSB-style skew is `theta ≈ 0.99`).
    ///
    /// # Panics
    /// If `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "empty Zipf domain");
        assert!(theta >= 0.0, "negative skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // partition_point: first index with cdf[i] >= u.
        let i = self.cdf.partition_point(|&c| c < u);
        i.min(self.cdf.len() - 1) as u64
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// A stream of keys.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over `[0, n)`.
    Uniform {
        /// Domain size.
        n: u64,
    },
    /// Zipf-skewed ranks scattered over the key space (rank r maps to key
    /// `scatter(r)` so popular keys are not neighbours).
    Zipfian {
        /// The rank distribution.
        zipf: Zipf,
        /// If true, ranks are scattered by a Fibonacci hash so hot keys
        /// spread across leaves; if false, rank = key (hot keys collide on
        /// the same leaves — the contention adversary).
        scatter: bool,
    },
    /// Strictly increasing keys — every insert lands on the rightmost leaf,
    /// the classic split-storm adversary.
    Sequential {
        /// Next key to emit.
        next: u64,
        /// Gap between consecutive keys.
        stride: u64,
    },
    /// With probability `hot_prob`, draw from the hot fraction of the space.
    Hotspot {
        /// Domain size.
        n: u64,
        /// Fraction of the domain that is hot (0..1).
        hot_fraction: f64,
        /// Probability a draw is hot (0..1).
        hot_prob: f64,
    },
}

impl KeyDist {
    /// Draw the next key (mutates internal state for `Sequential`).
    pub fn next_key<R: Rng>(&mut self, rng: &mut R) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipfian { zipf, scatter } => {
                let rank = zipf.sample(rng);
                if *scatter {
                    // Fibonacci hashing: bijective scatter over u64.
                    rank.wrapping_mul(0x9E3779B97F4A7C15)
                } else {
                    rank
                }
            }
            KeyDist::Sequential { next, stride } => {
                let k = *next;
                *next = next.wrapping_add(*stride);
                k
            }
            KeyDist::Hotspot {
                n,
                hot_fraction,
                hot_prob,
            } => {
                let hot_n = ((*n as f64) * *hot_fraction).max(1.0) as u64;
                if rng.gen::<f64>() < *hot_prob {
                    rng.gen_range(0..hot_n)
                } else {
                    rng.gen_range(hot_n..(*n).max(hot_n + 1))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
        // All samples in domain (indexing above would have panicked).
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max as f64 / *min as f64 <= 1.2, "min {min} max {max}");
    }

    #[test]
    fn sequential_strides() {
        let mut d = KeyDist::Sequential {
            next: 10,
            stride: 5,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(d.next_key(&mut rng), 10);
        assert_eq!(d.next_key(&mut rng), 15);
        assert_eq!(d.next_key(&mut rng), 20);
    }

    #[test]
    fn uniform_in_range() {
        let mut d = KeyDist::Uniform { n: 100 };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(d.next_key(&mut rng) < 100);
        }
    }

    #[test]
    fn hotspot_concentrates() {
        let mut d = KeyDist::Hotspot {
            n: 1000,
            hot_fraction: 0.1,
            hot_prob: 0.9,
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let hot = (0..10_000).filter(|_| d.next_key(&mut rng) < 100).count();
        assert!(hot > 8_000, "hot draws: {hot}");
    }
}
