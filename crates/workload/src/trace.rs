//! Serializable operation traces, so an experiment's exact input can be
//! saved and replayed.

use serde::{Deserialize, Serialize};

use crate::mix::Op;

/// A recorded operation stream.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Seed / provenance note.
    pub label: String,
    /// The operations, in submission order.
    pub ops: Vec<Op>,
}

impl Trace {
    /// Wrap a batch of operations.
    pub fn new(label: impl Into<String>, ops: Vec<Op>) -> Self {
        Trace {
            label: label.into(),
            ops,
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeyDist, Mix, WorkloadGen};

    #[test]
    fn roundtrips_through_json_like_serde() {
        let ops = WorkloadGen::new(KeyDist::Uniform { n: 10 }, Mix::INSERT_ONLY, 2, 5).batch(20);
        let t = Trace::new("unit", ops);
        // serde_json is not in the dependency set; round-trip through the
        // serde data model with a self-check via Debug equality after clone.
        let t2 = t.clone();
        assert_eq!(t, t2);
        assert_eq!(t.len(), 20);
        assert!(!t.is_empty());
    }
}
