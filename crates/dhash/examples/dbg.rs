use dhash::*;
use simnet::{ProcId, SimConfig};
use std::collections::BTreeMap;

fn main() {
    let spec = HashSpec {
        preload: (0..100).map(|k| k * 3).collect(),
        n_procs: 4,
        cfg: HashConfig {
            capacity: 8,
            protocol: DirProtocol::Lazy,
            spread_images: true,
            record_history: true,
        },
    };
    let mut cluster = HashCluster::build(&spec, SimConfig::jittery(1, 2, 25));
    let mut expected: BTreeMap<u64, u64> = (0..100).map(|k| (k * 3, k * 3)).collect();
    for i in 0..300u64 {
        let r = (i ^ 1).wrapping_mul(0x9E3779B97F4A7C15);
        let key = 10_000 + (r % 5_000);
        let origin = ProcId((r >> 32) as u32 % 4);
        match r % 10 {
            0..=6 => {
                cluster.submit(origin, key, HKind::Insert(key + 1));
                expected.insert(key, key + 1);
            }
            7 => {
                cluster.submit(origin, key, HKind::Delete);
                expected.remove(&key);
            }
            _ => {
                cluster.submit(origin, key, HKind::Search);
            }
        }
        let stats = cluster.run_to_quiescence();
        for rec in &stats.records {
            if rec.outcome.lost {
                println!(
                    "op {} LOST at i={} key={} kind r%10={} hops={} recov={}",
                    rec.outcome.op,
                    i,
                    key,
                    r % 10,
                    rec.outcome.hops,
                    rec.outcome.recoveries
                );
                // dump bucket info across procs
                let h = hash_of(key);
                for (pid, p) in cluster.sim.procs() {
                    let route = p.dir.route(h);
                    println!(
                        "  {pid} dir depth {} routes h={h:x} -> {:?} home {:?} ld {}",
                        p.dir.global_depth(),
                        route.id,
                        route.home,
                        route.local_depth
                    );
                }
                for (pid, p) in cluster.sim.procs() {
                    for (id, b) in &p.buckets {
                        if !b.owns(h) {
                            continue;
                        }
                        println!(
                            "  owner of h: {pid} {:?} pattern {:b} ld {}",
                            id, b.pattern, b.local_depth
                        );
                    }
                }
            }
        }
    }
    println!("done");
}
