//! Self-healing chaos tests for the hash table: a processor crashes
//! mid-workload while clients keep submitting to it, with the failure
//! detector and the client retry layer enabled. Unlike the dB-tree, the
//! hash table's entire state (directory + buckets) is stable across a
//! crash, so recovery needs no rejoin — the reliable session layer's
//! retransmissions deliver everything the outage delayed, the detector's
//! suspicion keeps the clients off the dead processor in the meantime, and
//! the assertions stay exactly those of a crash-free run. The detector-off
//! variants pin the degraded baseline: the driver's own timeout-driven
//! suspicion must self-heal the run alone.

use std::collections::BTreeMap;

use dhash::{
    check_hash_cluster, check_hash_procs, record_final_digests_from, HKind, HashCluster,
    HashConfig, HashOp, HashSpec, ThreadedHashCluster,
};
use simnet::{
    CrashEvent, DetectorConfig, FaultPlan, ProcId, RetryPolicy, SessionConfig, SimConfig, SimTime,
};

const N_PROCS: u32 = 4;
const CRASHED: ProcId = ProcId(2);
const SEED: u64 = 0xD4A5;

fn spec() -> HashSpec {
    HashSpec {
        preload: (0..64).map(|k| k * 3).collect(),
        n_procs: N_PROCS,
        cfg: HashConfig::default(),
    }
}

fn chaos_session(detector: bool) -> SessionConfig {
    if detector {
        SessionConfig::reliable().with_detector(DetectorConfig::on())
    } else {
        SessionConfig::reliable()
    }
}

fn build_chaos(seed: u64, detector: bool) -> HashCluster {
    let sim_cfg = SimConfig {
        faults: FaultPlan::lossy(0.02).with_crash(CrashEvent {
            proc: CRASHED,
            at: SimTime(150),
            restart_at: Some(SimTime(1_200)),
        }),
        ..SimConfig::jittery(seed, 2, 20)
    };
    let mut cluster = HashCluster::build_with_session(&spec(), sim_cfg, chaos_session(detector));
    cluster.set_retry(RetryPolicy {
        enabled: true,
        deadline: 600,
        ..RetryPolicy::default()
    });
    cluster
}

/// Origins cycle over all processors, the crasher included; values derive
/// from keys so a retried insert is idempotent on the final contents.
fn workload(n_ops: u64) -> Vec<HashOp> {
    (0..n_ops)
        .map(|i| {
            let key = 5 * i + 1;
            HashOp {
                origin: ProcId((i % N_PROCS as u64) as u32),
                key,
                kind: if i % 4 == 3 {
                    HKind::Search
                } else {
                    HKind::Insert(key + 1)
                },
            }
        })
        .collect()
}

/// The expected final contents: preload plus every insert in `ops`.
fn expected_map(ops: &[HashOp]) -> BTreeMap<u64, u64> {
    let mut expected: BTreeMap<u64, u64> = (0..64).map(|k| (k * 3, k * 3)).collect();
    for op in ops {
        if let HKind::Insert(v) = op.kind {
            expected.insert(op.key, v);
        }
    }
    expected
}

fn sim_chaos(detector: bool) {
    let mut cluster = build_chaos(SEED, detector);
    let ops = workload(160);
    let stats = cluster.run_closed_loop(&ops, 3);

    assert_eq!(
        stats.records.len(),
        ops.len(),
        "an operation never completed"
    );
    assert_eq!(stats.lost(), 0, "the lazy protocol dropped operations");
    assert!(stats.timeouts > 0, "no attempt ever timed out");
    assert!(stats.retries > 0, "no operation was ever retried");
    assert_eq!(stats.abandoned, 0, "an operation ran out of attempts");

    let suspects: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.session_stats().suspects)
        .sum();
    if detector {
        assert!(suspects > 0, "the detector never suspected the dead proc");
    } else {
        assert_eq!(suspects, 0, "no detector, no suspicion");
    }

    let expected = expected_map(&ops);
    let violations = check_hash_cluster(&mut cluster, &expected);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn crash_mid_workload_self_heals() {
    sim_chaos(true);
}

#[test]
fn crash_recovers_without_detector() {
    sim_chaos(false);
}

/// Same seed, same run — the chaos machinery (detector timers, retry
/// backoff jitter, fault plan) is deterministic end to end.
#[test]
fn chaos_run_is_deterministic() {
    let fingerprint = |seed: u64| {
        let mut cluster = build_chaos(seed, true);
        let stats = cluster.run_closed_loop(&workload(160), 3);
        let records: Vec<(u64, u64)> = stats
            .records
            .iter()
            .map(|r| (r.submitted.0, r.completed.0))
            .collect();
        (
            records,
            (stats.timeouts, stats.retries, stats.redirects),
            cluster.sim.events_delivered(),
        )
    };
    assert_eq!(fingerprint(SEED), fingerprint(SEED));
}

/// The threaded twin: a real crash/restart envelope pair around an
/// open-loop middle chunk submitted straight into the outage. Bucket and
/// directory state survive the crash (only the volatile queue is lost), so
/// the final contents must match the crash-free expectation exactly.
fn threaded_chaos(detector: bool) {
    let mut cluster =
        ThreadedHashCluster::build_threaded_with_session(&spec(), chaos_session(detector));
    // Threaded ticks are microseconds: deadlines sized for thread-scheduling
    // jitter rather than simulator hops.
    cluster.set_retry(RetryPolicy {
        enabled: true,
        deadline: 50_000,
        backoff_base: 1_000,
        backoff_max: 20_000,
        max_attempts: 20,
        ..RetryPolicy::default()
    });

    let ops = workload(160);
    let (before, during_and_after) = ops.split_at(40);
    let (during, after) = during_and_after.split_at(80);

    let mut completed = cluster.run_closed_loop(before, 3).records.len();

    cluster.sim.crash(CRASHED);
    for op in during {
        cluster.submit(op.origin, op.key, op.kind);
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    cluster.sim.restart(CRASHED);
    completed += cluster.run_to_quiescence().records.len();

    let stats = cluster.run_closed_loop(after, 3);
    // Driver counters are cumulative, so this snapshot covers the outage.
    assert!(
        stats.timeouts > 0,
        "no attempt timed out against the dead proc"
    );
    assert_eq!(stats.abandoned, 0, "an operation ran out of attempts");
    completed += stats.records.len();
    assert_eq!(completed, ops.len(), "an operation never completed");

    let expected = expected_map(&ops);
    let log = cluster.log();
    let final_procs = cluster.into_procs();
    let suspects: u64 = final_procs.iter().map(|p| p.session_stats().suspects).sum();
    if detector {
        assert!(suspects > 0, "the detector never suspected the dead proc");
    } else {
        assert_eq!(suspects, 0, "no detector, no suspicion");
    }
    let procs: Vec<_> = final_procs
        .iter()
        .enumerate()
        .map(|(i, p)| (ProcId(i as u32), &**p))
        .collect();
    record_final_digests_from(&log, procs.iter().copied());
    let violations = check_hash_procs(&procs, &log, &expected);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn threaded_crash_mid_workload_self_heals() {
    threaded_chaos(true);
}

#[test]
fn threaded_crash_recovers_without_detector() {
    threaded_chaos(false);
}
