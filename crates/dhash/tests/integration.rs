//! End-to-end tests for the lazily-maintained distributed hash table: the
//! §3 requirements and structural invariants under concurrent workloads,
//! plus the designed failure of the link-less naive protocol.

use std::collections::BTreeMap;

use dhash::{check_hash_cluster, DirProtocol, HKind, HashCluster, HashConfig, HashSpec};
use simnet::{ProcId, SimConfig};

fn spec(protocol: DirProtocol, preload: u64, n_procs: u32) -> HashSpec {
    HashSpec {
        preload: (0..preload).map(|k| k * 3).collect(),
        n_procs,
        cfg: HashConfig {
            capacity: 8,
            protocol,
            spread_images: true,
            record_history: true,
        },
    }
}

/// Drive a mixed workload; returns the expected final map and stats.
fn drive(
    cluster: &mut HashCluster,
    preload: u64,
    n_ops: u64,
    seed: u64,
) -> (BTreeMap<u64, u64>, dhash::HashClusterStats) {
    let mut expected: BTreeMap<u64, u64> = (0..preload).map(|k| (k * 3, k * 3)).collect();
    let n_procs = cluster.sim.num_procs() as u64;
    let mut all = dhash::HashClusterStats::default();
    for i in 0..n_ops {
        // Deterministic pseudo-random ops (keys beyond the preload range so
        // value expectations stay exact under concurrency).
        let r = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
        let key = 10_000 + (r % 5_000);
        let origin = ProcId((r >> 32) as u32 % n_procs as u32);
        match r % 10 {
            0..=6 => {
                cluster.submit(origin, key, HKind::Insert(key + 1));
                expected.insert(key, key + 1);
            }
            7 => {
                cluster.submit(origin, key, HKind::Delete);
                expected.remove(&key);
            }
            _ => {
                cluster.submit(origin, key, HKind::Search);
            }
        }
        // Sequential submission: each op completes before the next starts,
        // so `expected` is exact. Concurrency is exercised by the batch
        // tests below.
        let stats = cluster.run_to_quiescence();
        all.records.extend(stats.records);
    }
    (expected, all)
}

#[test]
fn lazy_protocol_sequential_ops_exact() {
    let mut cluster = HashCluster::build(
        &spec(DirProtocol::Lazy, 100, 4),
        SimConfig::jittery(1, 2, 25),
    );
    let (expected, stats) = drive(&mut cluster, 100, 300, 1);
    assert_eq!(stats.lost(), 0);
    let violations = check_hash_cluster(&mut cluster, &expected);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn lazy_protocol_concurrent_inserts_converge() {
    for seed in 0..6u64 {
        let mut cluster = HashCluster::build(
            &spec(DirProtocol::Lazy, 50, 4),
            SimConfig::jittery(seed, 2, 30),
        );
        // Fire a large concurrent batch: splits, patches, and operations
        // race freely.
        let mut expected: BTreeMap<u64, u64> = (0..50).map(|k| (k * 3, k * 3)).collect();
        for i in 0..600u64 {
            let key = 20_000 + i; // distinct keys: exact expectations
            cluster.submit(ProcId((i % 4) as u32), key, HKind::Insert(key * 2));
            expected.insert(key, key * 2);
        }
        let stats = cluster.run_to_quiescence();
        assert_eq!(stats.records.len(), 600);
        assert_eq!(stats.lost(), 0, "seed {seed}");
        let violations = check_hash_cluster(&mut cluster, &expected);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        // Splits happened and some operations needed link recovery.
        let splits: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.splits).sum();
        assert!(splits > 20, "seed {seed}: splits {splits}");
    }
}

#[test]
fn stale_directories_recover_through_image_links() {
    // With jittery latency, some processors route through stale directory
    // copies during split storms; every such operation must still succeed
    // via image links.
    let mut total_recoveries = 0u64;
    for seed in 0..6u64 {
        let mut cluster = HashCluster::build(
            &spec(DirProtocol::Lazy, 20, 6),
            SimConfig::jittery(seed, 2, 60),
        );
        for i in 0..400u64 {
            let key = 30_000 + i;
            cluster.submit(ProcId((i % 6) as u32), key, HKind::Insert(key));
        }
        let stats = cluster.run_to_quiescence();
        assert_eq!(stats.lost(), 0);
        total_recoveries += stats.recoveries();
    }
    assert!(
        total_recoveries > 0,
        "stale routing actually happened (and was recovered)"
    );
}

#[test]
fn sync_protocol_correct_but_blocks_and_costs_more() {
    let run = |protocol| {
        let mut cluster = HashCluster::build(&spec(protocol, 50, 4), SimConfig::jittery(3, 2, 25));
        let mut expected: BTreeMap<u64, u64> = (0..50).map(|k| (k * 3, k * 3)).collect();
        for i in 0..500u64 {
            let key = 40_000 + i;
            cluster.submit(ProcId((i % 4) as u32), key, HKind::Insert(key));
            expected.insert(key, key);
        }
        let stats = cluster.run_to_quiescence();
        assert_eq!(stats.lost(), 0);
        let violations = check_hash_cluster(&mut cluster, &expected);
        assert!(violations.is_empty(), "{violations:?}");
        let blocked: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.blocked).sum();
        let dir_msgs = cluster
            .sim
            .stats()
            .remote_matching(|k| k.starts_with("dir."));
        (blocked, dir_msgs)
    };
    let (lazy_blocked, lazy_msgs) = run(DirProtocol::Lazy);
    let (sync_blocked, sync_msgs) = run(DirProtocol::Sync);
    assert_eq!(lazy_blocked, 0, "lazy never blocks");
    assert!(sync_blocked > 0, "sync blocks ops behind the ack barrier");
    assert!(
        sync_msgs > lazy_msgs * 3 / 2,
        "sync directory maintenance costs more: {sync_msgs} vs {lazy_msgs}"
    );
}

#[test]
fn naive_no_links_drops_operations() {
    let mut total_dropped = 0usize;
    for seed in 0..8u64 {
        let mut cluster = HashCluster::build(
            &spec(DirProtocol::NaiveNoLinks, 20, 4),
            SimConfig::jittery(seed, 2, 60),
        );
        for i in 0..400u64 {
            let key = 50_000 + i;
            cluster.submit(ProcId((i % 4) as u32), key, HKind::Insert(key));
        }
        let stats = cluster.run_to_quiescence();
        total_dropped += stats.lost();
    }
    assert!(
        total_dropped > 0,
        "without split-image links, stale routing drops operations"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut cluster = HashCluster::build(
            &spec(DirProtocol::Lazy, 30, 4),
            SimConfig::jittery(9, 2, 30),
        );
        for i in 0..200u64 {
            cluster.submit(ProcId((i % 4) as u32), 60_000 + i, HKind::Insert(i));
        }
        cluster.run_to_quiescence();
        (cluster.sim.stats().total_messages(), cluster.sim.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn delete_then_search_misses() {
    let mut cluster = HashCluster::build(&spec(DirProtocol::Lazy, 10, 2), SimConfig::seeded(4));
    cluster.submit(ProcId(0), 3, HKind::Search);
    let s = cluster.run_to_quiescence();
    assert_eq!(s.records[0].outcome.found, Some(3), "preloaded");
    cluster.submit(ProcId(1), 3, HKind::Delete);
    let s = cluster.run_to_quiescence();
    assert_eq!(s.records[0].outcome.found, Some(3), "delete returns old");
    cluster.submit(ProcId(0), 3, HKind::Search);
    let s = cluster.run_to_quiescence();
    assert_eq!(s.records[0].outcome.found, None, "gone");
}
