//! Runtime equivalence for the hash table: the lazy directory protocol,
//! driven through the same `HashCluster` facade, must reach the same final
//! contents on the deterministic simulator and on real OS threads.
//!
//! As with the dB-tree equivalence suite, every insert targets a distinct
//! fresh key with a value derived from the key, so the final key→value map
//! is schedule-independent even though thread interleavings are not.

use std::collections::BTreeMap;

use dhash::{
    check_hash_cluster, check_hash_procs, record_final_digests_from, HKind, HashCluster, HashOp,
    HashSpec, ThreadedHashCluster,
};
use simnet::{ProcId, SimConfig};

const N_PROCS: u32 = 4;
const SEEDS: u64 = 8;

fn workload(seed: u64, n_inserts: u64) -> (HashSpec, Vec<HashOp>, BTreeMap<u64, u64>) {
    let spec = HashSpec {
        preload: (0..60).map(|k| k * 3).collect(),
        n_procs: N_PROCS,
        cfg: Default::default(),
    };
    let mut expected: BTreeMap<u64, u64> = spec.preload.iter().map(|&k| (k, k)).collect();
    let mut ops = Vec::new();
    for i in 0..n_inserts {
        let r = (i ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
        let origin = ProcId((r % N_PROCS as u64) as u32);
        // Distinct fresh keys (stride 7, seed offset) — inserts never
        // conflict, so the final contents don't depend on completion order.
        let key = 10_000 + i * 7 + seed;
        expected.insert(key, key + 1);
        ops.push(HashOp {
            origin,
            key,
            kind: HKind::Insert(key + 1),
        });
        if i % 3 == 0 {
            ops.push(HashOp {
                origin,
                key: (i * 9) % 180, // preloaded territory
                kind: HKind::Search,
            });
        }
    }
    (spec, ops, expected)
}

#[test]
fn lazy_equivalent_across_runtimes() {
    for seed in 0..SEEDS {
        let (spec, ops, expected) = workload(seed, 80);

        // Simulator run under jittery service times.
        let mut sim = HashCluster::build(&spec, SimConfig::jittery(seed, 2, 20));
        let stats = sim.run_closed_loop(&ops, 4);
        assert_eq!(stats.records.len(), ops.len(), "sim seed {seed}: ops lost");
        assert_eq!(
            stats.lost(),
            0,
            "sim seed {seed}: lazy protocol dropped ops"
        );
        let violations = check_hash_cluster(&mut sim, &expected);
        assert!(violations.is_empty(), "sim seed {seed}: {violations:?}");

        // Threaded run: same processes, same driver, real interleavings.
        let mut thr = ThreadedHashCluster::build_threaded(&spec);
        let stats = thr.run_closed_loop(&ops, 4);
        assert_eq!(
            stats.records.len(),
            ops.len(),
            "threaded seed {seed}: ops lost"
        );
        assert_eq!(
            stats.lost(),
            0,
            "threaded seed {seed}: lazy protocol dropped ops"
        );
        let log = thr.log();
        let final_procs = thr.into_procs();
        let procs: Vec<_> = final_procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i as u32), &**p))
            .collect();
        record_final_digests_from(&log, procs.iter().copied());
        let violations = check_hash_procs(&procs, &log, &expected);
        assert!(
            violations.is_empty(),
            "threaded seed {seed}: {violations:?}"
        );
    }
}
