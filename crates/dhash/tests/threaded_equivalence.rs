//! Runtime equivalence for the hash table: the lazy directory protocol,
//! driven through the same `HashCluster` facade, must reach the same final
//! contents on the deterministic simulator and on real OS threads.
//!
//! As with the dB-tree equivalence suite, every insert targets a distinct
//! fresh key with a value derived from the key, so the final key→value map
//! is schedule-independent even though thread interleavings are not.

use dhash::{
    check_hash_cluster, check_hash_procs, record_final_digests_from, HashCluster,
    ThreadedHashCluster,
};
use simnet::{ProcId, SimConfig};
// The workload and seed matrix are shared with the dB-tree and explorer
// suites via `testkit` — one definition, every substrate.
use testkit::{hash_fresh_workload as workload, EQ_SEEDS};

#[test]
fn lazy_equivalent_across_runtimes() {
    for seed in EQ_SEEDS {
        let (spec, ops, expected) = workload(seed, 80);

        // Simulator run under jittery service times.
        let mut sim = HashCluster::build(&spec, SimConfig::jittery(seed, 2, 20));
        let stats = sim.run_closed_loop(&ops, 4);
        assert_eq!(stats.records.len(), ops.len(), "sim seed {seed}: ops lost");
        assert_eq!(
            stats.lost(),
            0,
            "sim seed {seed}: lazy protocol dropped ops"
        );
        let violations = check_hash_cluster(&mut sim, &expected);
        assert!(violations.is_empty(), "sim seed {seed}: {violations:?}");

        // Threaded run: same processes, same driver, real interleavings.
        let mut thr = ThreadedHashCluster::build_threaded(&spec);
        let stats = thr.run_closed_loop(&ops, 4);
        assert_eq!(
            stats.records.len(),
            ops.len(),
            "threaded seed {seed}: ops lost"
        );
        assert_eq!(
            stats.lost(),
            0,
            "threaded seed {seed}: lazy protocol dropped ops"
        );
        let log = thr.log();
        let final_procs = thr.into_procs();
        let procs: Vec<_> = final_procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i as u32), &**p))
            .collect();
        record_final_digests_from(&log, procs.iter().copied());
        let violations = check_hash_procs(&procs, &log, &expected);
        assert!(
            violations.is_empty(),
            "threaded seed {seed}: {violations:?}"
        );
    }
}
