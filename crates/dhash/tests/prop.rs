//! Property-based tests: arbitrary operation streams and schedules leave
//! the lazily-maintained hash table converged, complete, and findable.

use std::collections::BTreeMap;

use dhash::{check_hash_cluster, DirProtocol, HKind, HashCluster, HashConfig, HashSpec};
use proptest::prelude::*;
use simnet::{ProcId, SimConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Lazy and sync directory maintenance both satisfy every invariant for
    /// any key stream, capacity, cluster size, and schedule.
    #[test]
    fn any_run_is_clean(
        protocol in prop_oneof![Just(DirProtocol::Lazy), Just(DirProtocol::Sync)],
        capacity in 4usize..16,
        n_procs in 1u32..6,
        seed in 0u64..1_000_000,
        keys in proptest::collection::vec(0u64..50_000, 10..200),
    ) {
        let spec = HashSpec {
            preload: (0..30).map(|k| k * 7).collect(),
            n_procs,
            cfg: HashConfig {
                capacity,
                protocol,
                spread_images: true,
                record_history: true,
            },
        };
        let mut cluster = HashCluster::build(&spec, SimConfig::jittery(seed, 1, 30));
        let mut expected: BTreeMap<u64, u64> = (0..30).map(|k| (k * 7, k * 7)).collect();
        for (i, &key) in keys.iter().enumerate() {
            // Concurrent batch of inserts with per-key-deterministic values
            // (re-inserts overwrite with the same value, so expectations
            // stay exact under concurrency).
            cluster.submit(ProcId(i as u32 % n_procs), key, HKind::Insert(key ^ 0xABCD));
            expected.insert(key, key ^ 0xABCD);
        }
        let stats = cluster.run_to_quiescence();
        prop_assert_eq!(stats.records.len(), keys.len());
        prop_assert_eq!(stats.lost(), 0);
        let violations = check_hash_cluster(&mut cluster, &expected);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// Bucket splitting is self-similar: whatever the hash skew, every
    /// bucket ends within capacity + its entries match its pattern.
    #[test]
    fn buckets_end_within_capacity(
        seed in 0u64..1_000_000,
        keys in proptest::collection::vec(0u64..1_000, 50..300),
    ) {
        let spec = HashSpec {
            preload: vec![],
            n_procs: 3,
            cfg: HashConfig {
                capacity: 6,
                protocol: DirProtocol::Lazy,
                spread_images: true,
                record_history: false,
            },
        };
        let mut cluster = HashCluster::build(&spec, SimConfig::jittery(seed, 1, 20));
        for (i, &key) in keys.iter().enumerate() {
            cluster.submit(ProcId(i as u32 % 3), key, HKind::Insert(key));
        }
        cluster.run_to_quiescence();
        for (_, proc) in cluster.sim.procs() {
            for (id, b) in &proc.buckets {
                prop_assert!(b.invariant_ok(), "{:?} broke its pattern", id);
                prop_assert!(
                    b.entries.len() <= 6,
                    "{:?} still overfull: {}",
                    id,
                    b.entries.len()
                );
            }
        }
    }
}
