//! Protocol messages for the distributed hash table.

use simnet::{Payload, ProcId};

use crate::bucket::BucketId;
use crate::dir::DirPatch;
use crate::hashfn::HashBits;

/// What a client operation does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HKind {
    /// Point lookup.
    Search,
    /// Insert/overwrite.
    Insert(u64),
    /// Remove the key.
    Delete,
}

/// Outcome of a completed hash-table operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HOutcome {
    /// Operation id (driver-minted).
    pub op: u64,
    /// Value found (searches) or previous value (updates).
    pub found: Option<u64>,
    /// Buckets/processors visited.
    pub hops: u32,
    /// Misnavigation recoveries performed (stale-directory forwards).
    pub recoveries: u32,
    /// `true` only under the broken `NaiveNoLinks` protocol: the operation
    /// was misrouted and dropped because no split-image link existed.
    pub lost: bool,
}

/// A full bucket on the wire (image placement).
#[derive(Clone, Debug)]
pub struct BucketSnapshot {
    /// The bucket's identity.
    pub id: BucketId,
    /// Pattern.
    pub pattern: u64,
    /// Local depth.
    pub local_depth: u8,
    /// Entries.
    pub entries: Vec<(HashBits, (u64, u64))>,
}

/// Hash-table protocol messages.
#[derive(Clone, Debug)]
pub enum HMsg {
    /// Client submits an operation at its local processor.
    Client {
        /// Operation id.
        op: u64,
        /// The key.
        key: u64,
        /// What to do.
        kind: HKind,
    },
    /// Perform the operation at a bucket.
    AtBucket {
        /// Operation id.
        op: u64,
        /// The key.
        key: u64,
        /// Its hash.
        h: HashBits,
        /// What to do.
        kind: HKind,
        /// The target bucket.
        bucket: BucketId,
        /// Hops so far.
        hops: u32,
        /// Recoveries so far.
        recoveries: u32,
    },
    /// Lazy directory patch (no acknowledgement).
    Patch(DirPatch),
    /// Synchronous-protocol patch: apply and acknowledge.
    PatchSync {
        /// The patch.
        patch: DirPatch,
        /// Who to acknowledge.
        from: ProcId,
    },
    /// Acknowledgement of a synchronous patch.
    PatchAck {
        /// The bucket whose split is being acknowledged.
        parent: BucketId,
        /// The split bit.
        bit: u8,
    },
    /// Install a new bucket (a split image placed on this processor).
    InstallBucket {
        /// The bucket.
        snapshot: BucketSnapshot,
        /// History tag of the creating split.
        tag: u64,
    },
    /// Operation complete; sent to `ProcId::EXTERNAL`.
    Done(HOutcome),
}

impl Payload for HMsg {
    fn kind(&self) -> &'static str {
        match self {
            HMsg::Client { .. } => "client",
            HMsg::AtBucket { .. } => "op",
            HMsg::Patch(_) => "dir.patch",
            HMsg::PatchSync { .. } => "dir.patch-sync",
            HMsg::PatchAck { .. } => "dir.ack",
            HMsg::InstallBucket { .. } => "bucket.install",
            HMsg::Done(_) => "done",
        }
    }

    fn span(&self) -> Option<u64> {
        match self {
            HMsg::Client { op, .. } | HMsg::AtBucket { op, .. } => Some(*op),
            HMsg::Done(outcome) => Some(outcome.op),
            // Directory patches and bucket installs inherit the span of the
            // action that emitted them at the runtime layer.
            _ => None,
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            HMsg::InstallBucket { snapshot, .. } => 32 + snapshot.entries.len() * 24,
            _ => 48,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_label_protocol_planes() {
        let p = HMsg::Patch(DirPatch {
            parent: BucketId(1),
            new_depth: 1,
            bit: 0,
            image: crate::bucket::BucketRef {
                id: BucketId(2),
                home: ProcId(0),
                local_depth: 1,
            },
            tag: 0,
        });
        assert_eq!(p.kind(), "dir.patch");
    }
}
