//! # dhash — lazy updates for a distributed extendible hash table
//!
//! The paper's concluding section promises to "apply lazy updates to other
//! distributed data structures, such as hash tables" (citing Ellis's
//! distributed extendible hashing). This crate is that application, built
//! on the same substrate (`simnet`) and validated by the same correctness
//! theory (`history`):
//!
//! * The **directory** (the hash table's root, mapping the low bits of a
//!   key's hash to a bucket) is replicated on *every* processor — the
//!   analogue of the dB-tree's fully replicated root.
//! * **Buckets** live on a single processor each — the analogue of leaves.
//! * When a bucket overflows it **splits**, deepening its local depth and
//!   handing half its entries to a new *split image*; the directory update
//!   is a **lazy update**: a patch relayed to all processors with no
//!   acknowledgement, no blocking, no synchronization. Patches for
//!   different buckets commute; patches for the same bucket are an ordered
//!   class (by the split's bit index), applied only if newer — stale ones
//!   are skipped, the "rewriting history" move.
//! * A processor with a **stale directory** misroutes operations to a
//!   bucket that has since split; the bucket recovers by forwarding along
//!   its split-image links — the hash-table analogue of the B-link tree's
//!   right-link recovery. The structure is navigable at all times.
//!
//! Protocol variants mirror the dB-tree crate's: [`DirProtocol::Lazy`] (the
//! contribution), [`DirProtocol::Sync`] (patch broadcast with a full ack
//! barrier while the bucket blocks), and [`DirProtocol::NaiveNoLinks`] (no
//! split-image links: misrouted operations are dropped — the lost-insert
//! failure, reproduced here to show the theory transfers).

#![warn(missing_docs)]

mod bucket;
mod cluster;
mod dir;
mod hashfn;
mod msg;
mod proc;

pub use bucket::{Bucket, BucketId, BucketRef};
pub use cluster::{
    check_hash_cluster, check_hash_procs, record_final_digests_from, HashCluster, HashClusterStats,
    HashOp, HashOpRecord, HashProtocol, HashSim, HashSpec, HashViolation, ThreadedHashCluster,
    ThreadedHashRuntime,
};
pub use dir::{DirPatch, Directory, PatchOutcome};
pub use hashfn::{hash_of, matches_pattern, HashBits};
pub use msg::{HKind, HMsg, HOutcome};
pub use proc::{DirProtocol, HashConfig, HashProc};
