//! The per-processor hash-table engine.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use history::{HistoryLog, ObserveKind};
use parking_lot::Mutex;
use simnet::{Context, ProcId, Process};

use crate::bucket::{Bucket, BucketId, BucketRef};
use crate::dir::{DirPatch, Directory, PatchOutcome};
use crate::hashfn::hash_of;
use crate::msg::{BucketSnapshot, HKind, HMsg, HOutcome};

/// History-log "node" id for the directory (each processor's directory is a
/// copy of this one logical node).
pub(crate) const DIR_NODE: u64 = u64::MAX;

/// How directory copies are maintained after a bucket split.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirProtocol {
    /// The lazy protocol: broadcast the patch, nobody waits, stale copies
    /// recover through split-image links.
    Lazy,
    /// The vigorous baseline: broadcast and wait for every processor's
    /// acknowledgement while the split bucket blocks its operations.
    Sync,
    /// The broken lazy protocol: no split-image links — misrouted
    /// operations are dropped (the hash-table rendition of Fig 4).
    NaiveNoLinks,
}

impl DirProtocol {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DirProtocol::Lazy => "lazy",
            DirProtocol::Sync => "sync",
            DirProtocol::NaiveNoLinks => "naive",
        }
    }
}

/// Hash-table configuration.
#[derive(Clone, Debug)]
pub struct HashConfig {
    /// Entries per bucket before it splits.
    pub capacity: usize,
    /// Directory maintenance protocol.
    pub protocol: DirProtocol,
    /// Place split images on the next processor round-robin (`true`,
    /// distributing load) or on the splitting processor (`false`).
    pub spread_images: bool,
    /// Record the history log.
    pub record_history: bool,
}

impl Default for HashConfig {
    fn default() -> Self {
        HashConfig {
            capacity: 8,
            protocol: DirProtocol::Lazy,
            spread_images: true,
            record_history: true,
        }
    }
}

/// Counters a hash processor accumulates.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashMetrics {
    /// Bucket splits initiated.
    pub splits: u64,
    /// Patches applied to the local directory.
    pub patches_applied: u64,
    /// Stale patches skipped.
    pub patches_stale: u64,
    /// Misnavigations recovered via split-image links.
    pub recoveries: u64,
    /// Operations dropped (NaiveNoLinks only).
    pub dropped: u64,
    /// Operations blocked behind a synchronous split.
    pub blocked: u64,
}

struct SyncSplit {
    acks_pending: usize,
}

/// One simulated hash-table processor: a directory copy plus the buckets it
/// owns.
pub struct HashProc {
    /// This processor.
    pub me: ProcId,
    /// Cluster size.
    pub n_procs: u32,
    /// Configuration.
    pub cfg: HashConfig,
    /// The local directory copy.
    pub dir: Directory,
    /// Locally owned buckets.
    pub buckets: BTreeMap<BucketId, Bucket>,
    /// Shared history log.
    pub log: Arc<Mutex<HistoryLog>>,
    /// Counters.
    pub metrics: HashMetrics,
    next_bucket: u64,
    /// Ops that arrived before their bucket's install.
    stash: HashMap<BucketId, Vec<HMsg>>,
    /// Patches whose parent bucket this directory copy has not heard of
    /// yet (their introducing patch is in flight on another channel), with
    /// the processor to acknowledge once applied (sync protocol only).
    pending_patches: Vec<(DirPatch, Option<ProcId>)>,
    /// In-flight synchronous splits, keyed by (bucket, bit).
    sync_splits: HashMap<(BucketId, u8), SyncSplit>,
    /// Buckets currently blocked by a synchronous split.
    blocked_buckets: HashSet<BucketId>,
}

impl HashProc {
    /// A processor with the given initial directory and buckets.
    pub fn new(
        me: ProcId,
        n_procs: u32,
        cfg: HashConfig,
        dir: Directory,
        buckets: BTreeMap<BucketId, Bucket>,
        log: Arc<Mutex<HistoryLog>>,
    ) -> Self {
        // Bootstrap ids are minted with dense per-processor counters, so
        // continuing from the local count is collision-free.
        let next_bucket = buckets.len() as u64;
        HashProc {
            me,
            n_procs,
            cfg,
            dir,
            buckets,
            log,
            metrics: HashMetrics::default(),
            next_bucket,
            stash: HashMap::new(),
            pending_patches: Vec::new(),
            sync_splits: HashMap::new(),
            blocked_buckets: HashSet::new(),
        }
    }

    fn mint_bucket(&mut self) -> BucketId {
        let id = BucketId::mint(self.me, self.next_bucket);
        self.next_bucket += 1;
        id
    }

    /// Pending stash sizes (quiescence checker).
    pub fn stash_sizes(&self) -> BTreeMap<BucketId, usize> {
        self.stash.iter().map(|(k, v)| (*k, v.len())).collect()
    }

    fn handle_client(&mut self, ctx: &mut Context<'_, HMsg>, op: u64, key: u64, kind: HKind) {
        let h = hash_of(key);
        let target = self.dir.route(h);
        let msg = HMsg::AtBucket {
            op,
            key,
            h,
            kind,
            bucket: target.id,
            hops: 0,
            recoveries: 0,
        };
        if self.buckets.contains_key(&target.id) {
            ctx.send(self.me, msg);
        } else {
            ctx.send(target.home, msg);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_at_bucket(
        &mut self,
        ctx: &mut Context<'_, HMsg>,
        op: u64,
        key: u64,
        h: u64,
        kind: HKind,
        bucket: BucketId,
        hops: u32,
        recoveries: u32,
    ) {
        let remake = || HMsg::AtBucket {
            op,
            key,
            h,
            kind,
            bucket,
            hops,
            recoveries,
        };
        let Some(b) = self.buckets.get(&bucket) else {
            // Install in flight (a patch outran the image placement): stash.
            self.stash.entry(bucket).or_default().push(remake());
            return;
        };
        if self.blocked_buckets.contains(&bucket) {
            self.metrics.blocked += 1;
            self.stash.entry(bucket).or_default().push(remake());
            return;
        }
        if !b.owns(h) {
            // Misnavigated: the directory copy that routed us was stale.
            match b.image_for(h) {
                Some(image) => {
                    self.metrics.recoveries += 1;
                    let msg = HMsg::AtBucket {
                        op,
                        key,
                        h,
                        kind,
                        bucket: image.id,
                        hops: hops + 1,
                        recoveries: recoveries + 1,
                    };
                    if self.buckets.contains_key(&image.id) {
                        ctx.send(self.me, msg);
                    } else {
                        ctx.send(image.home, msg);
                    }
                }
                None => {
                    // NaiveNoLinks (or a genuine routing hole): the
                    // operation cannot proceed — report it lost.
                    self.metrics.dropped += 1;
                    ctx.send(
                        ProcId::EXTERNAL,
                        HMsg::Done(HOutcome {
                            op,
                            found: None,
                            hops: hops + 1,
                            recoveries,
                            lost: true,
                        }),
                    );
                }
            }
            return;
        }

        // The owning bucket: perform the operation.
        let b = self.buckets.get_mut(&bucket).expect("checked");
        let found = match kind {
            HKind::Search => b.entries.get(&h).map(|&(_, v)| v),
            HKind::Insert(v) => b.entries.insert(h, (key, v)).map(|(_, old)| old),
            HKind::Delete => b.entries.remove(&h).map(|(_, v)| v),
        };
        ctx.send(
            ProcId::EXTERNAL,
            HMsg::Done(HOutcome {
                op,
                found,
                hops: hops + 1,
                recoveries,
                lost: false,
            }),
        );
        if matches!(kind, HKind::Insert(_)) {
            self.maybe_split(ctx, bucket);
        }
    }

    /// Split `bucket` while it exceeds capacity (several rounds if the
    /// entries skew to one side).
    fn maybe_split(&mut self, ctx: &mut Context<'_, HMsg>, bucket: BucketId) {
        loop {
            let needs = self
                .buckets
                .get(&bucket)
                .map(|b| b.entries.len() > self.cfg.capacity && b.local_depth < 48)
                .unwrap_or(false);
            if !needs || self.blocked_buckets.contains(&bucket) {
                return;
            }
            self.split_once(ctx, bucket);
            if self.cfg.protocol == DirProtocol::Sync {
                // The sync protocol blocks the bucket until all acks; any
                // further split resumes after the barrier.
                return;
            }
        }
    }

    fn split_once(&mut self, ctx: &mut Context<'_, HMsg>, bucket: BucketId) {
        let image_id = self.mint_bucket();
        let me = self.me;
        let image_home = if self.cfg.spread_images {
            ProcId(
                (me.0 + 1 + (image_id.raw() % (self.n_procs as u64 - 1).max(1)) as u32)
                    % self.n_procs,
            )
        } else {
            me
        };
        let tag = self.log.lock().issue("dir-patch");

        let (bit, patch, snapshot) = {
            let b = self
                .buckets
                .get_mut(&bucket)
                .expect("splitting a local bucket");
            let (bit, sib_pattern, moved) = b.split();
            let new_depth = b.local_depth;
            let image_ref = BucketRef {
                id: image_id,
                home: image_home,
                local_depth: new_depth,
            };
            if self.cfg.protocol != DirProtocol::NaiveNoLinks {
                b.record_image(bit, image_ref);
            }
            let snapshot = BucketSnapshot {
                id: image_id,
                pattern: sib_pattern,
                local_depth: new_depth,
                entries: moved.into_iter().collect(),
            };
            let patch = DirPatch {
                parent: bucket,
                new_depth,
                bit,
                image: image_ref,
                tag,
            };
            (bit, patch, snapshot)
        };
        self.metrics.splits += 1;

        // Place the image.
        if image_home == me {
            self.install_bucket(ctx, snapshot, tag);
        } else {
            ctx.send(image_home, HMsg::InstallBucket { snapshot, tag });
        }

        // Publish the directory update.
        {
            let mut log = self.log.lock();
            log.observe_initial(DIR_NODE, me.0, tag);
        }
        self.apply_patch_local(ctx, &patch, None);
        match self.cfg.protocol {
            DirProtocol::Lazy | DirProtocol::NaiveNoLinks => {
                for p in 0..self.n_procs {
                    let p = ProcId(p);
                    if p != me {
                        ctx.send(p, HMsg::Patch(patch));
                    }
                }
            }
            DirProtocol::Sync => {
                let peers = self.n_procs as usize - 1;
                if peers == 0 {
                    return;
                }
                self.blocked_buckets.insert(bucket);
                self.sync_splits.insert(
                    (bucket, bit),
                    SyncSplit {
                        acks_pending: peers,
                    },
                );
                for p in 0..self.n_procs {
                    let p = ProcId(p);
                    if p != me {
                        ctx.send(p, HMsg::PatchSync { patch, from: me });
                    }
                }
            }
        }
    }

    /// Apply a patch; `ack` is the processor to acknowledge (sync protocol)
    /// once the patch has actually been incorporated — a `ParentUnknown`
    /// patch defers its acknowledgement along with itself, otherwise the
    /// splitter's barrier would release while this copy is stale.
    fn apply_patch_local(
        &mut self,
        ctx: &mut Context<'_, HMsg>,
        patch: &DirPatch,
        ack: Option<ProcId>,
    ) {
        match self.dir.apply(patch) {
            PatchOutcome::Applied => {
                self.metrics.patches_applied += 1;
                self.log
                    .lock()
                    .observe(DIR_NODE, self.me.0, patch.tag, ObserveKind::Applied);
                self.send_ack(ctx, patch, ack);
                self.drain_pending_patches(ctx);
            }
            PatchOutcome::Stale => {
                self.metrics.patches_stale += 1;
                self.log
                    .lock()
                    .observe(DIR_NODE, self.me.0, patch.tag, ObserveKind::Applied);
                self.send_ack(ctx, patch, ack);
            }
            PatchOutcome::ParentUnknown => {
                // Hold it (and its acknowledgement) until the parent's own
                // introduction lands.
                self.pending_patches.push((*patch, ack));
            }
        }
    }

    fn send_ack(&self, ctx: &mut Context<'_, HMsg>, patch: &DirPatch, ack: Option<ProcId>) {
        if let Some(to) = ack {
            ctx.send(
                to,
                HMsg::PatchAck {
                    parent: patch.parent,
                    bit: patch.bit,
                },
            );
        }
    }

    /// Retry held patches: each successful apply can unlock others (split
    /// chains), so iterate to a fixpoint.
    fn drain_pending_patches(&mut self, ctx: &mut Context<'_, HMsg>) {
        loop {
            let mut progressed = false;
            let pending = std::mem::take(&mut self.pending_patches);
            for (patch, ack) in pending {
                match self.dir.apply(&patch) {
                    PatchOutcome::Applied => {
                        progressed = true;
                        self.metrics.patches_applied += 1;
                        self.log.lock().observe(
                            DIR_NODE,
                            self.me.0,
                            patch.tag,
                            ObserveKind::Applied,
                        );
                        self.send_ack(ctx, &patch, ack);
                    }
                    PatchOutcome::Stale => {
                        self.metrics.patches_stale += 1;
                        self.log.lock().observe(
                            DIR_NODE,
                            self.me.0,
                            patch.tag,
                            ObserveKind::Applied,
                        );
                        self.send_ack(ctx, &patch, ack);
                    }
                    PatchOutcome::ParentUnknown => self.pending_patches.push((patch, ack)),
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Count of patches still waiting for their parent (quiescence check).
    pub fn pending_patch_count(&self) -> usize {
        self.pending_patches.len()
    }

    fn handle_patch_ack(&mut self, ctx: &mut Context<'_, HMsg>, parent: BucketId, bit: u8) {
        let done = {
            let Some(s) = self.sync_splits.get_mut(&(parent, bit)) else {
                return;
            };
            s.acks_pending -= 1;
            s.acks_pending == 0
        };
        if done {
            self.sync_splits.remove(&(parent, bit));
            self.blocked_buckets.remove(&parent);
            // Replay operations that queued behind the barrier.
            if let Some(msgs) = self.stash.remove(&parent) {
                for m in msgs {
                    ctx.send(self.me, m);
                }
            }
            // The bucket may still be overfull.
            self.maybe_split(ctx, parent);
        }
    }

    fn install_bucket(&mut self, ctx: &mut Context<'_, HMsg>, snapshot: BucketSnapshot, tag: u64) {
        let mut b = Bucket::new(snapshot.id, snapshot.pattern, snapshot.local_depth);
        b.entries = snapshot.entries.into_iter().collect();
        let id = b.id;
        self.buckets.insert(id, b);
        self.log.lock().copy_created(id.raw(), self.me.0, [tag]);
        if let Some(msgs) = self.stash.remove(&id) {
            for m in msgs {
                ctx.send(self.me, m);
            }
        }
        // The new bucket may itself be overfull (skewed split).
        self.maybe_split(ctx, id);
    }
}

impl Process for HashProc {
    type Msg = HMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, HMsg>, from: ProcId, msg: HMsg) {
        match msg {
            HMsg::Client { op, key, kind } => self.handle_client(ctx, op, key, kind),
            HMsg::AtBucket {
                op,
                key,
                h,
                kind,
                bucket,
                hops,
                recoveries,
            } => self.handle_at_bucket(ctx, op, key, h, kind, bucket, hops, recoveries),
            HMsg::Patch(patch) => self.apply_patch_local(ctx, &patch, None),
            HMsg::PatchSync { patch, from } => self.apply_patch_local(ctx, &patch, Some(from)),
            HMsg::PatchAck { parent, bit } => self.handle_patch_ack(ctx, parent, bit),
            HMsg::InstallBucket { snapshot, tag } => self.install_bucket(ctx, snapshot, tag),
            HMsg::Done(_) => debug_assert!(false, "Done delivered to a processor"),
        }
        let _ = from;
    }
}
