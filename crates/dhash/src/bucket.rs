//! Buckets: the single-copy data holders (the analogue of dB-tree leaves).

use std::collections::BTreeMap;
use std::fmt;

use simnet::ProcId;

use crate::hashfn::{low_mask, matches_pattern, HashBits};

/// Identifier of a bucket; encodes the minting processor like `dbtree`'s
/// node ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketId(pub u64);

impl BucketId {
    /// Mint the `counter`-th bucket id of `proc`.
    pub fn mint(proc: ProcId, counter: u64) -> Self {
        BucketId(((proc.0 as u64) << 40) | counter)
    }

    /// Raw value (history-log key).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for BucketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.0 >> 40, self.0 & ((1 << 40) - 1))
    }
}

/// A routable reference to a bucket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BucketRef {
    /// The bucket.
    pub id: BucketId,
    /// The processor storing it.
    pub home: ProcId,
    /// The bucket's local depth as known to the referrer (orders directory
    /// patches for the same slot).
    pub local_depth: u8,
}

/// One bucket: entries whose hashes match `pattern` on the low
/// `local_depth` bits.
#[derive(Clone, Debug)]
pub struct Bucket {
    /// The bucket's identity.
    pub id: BucketId,
    /// The low-bit pattern this bucket is responsible for.
    pub pattern: u64,
    /// Number of meaningful pattern bits.
    pub local_depth: u8,
    /// Stored entries, keyed by full hash (values keep the original key).
    pub entries: BTreeMap<HashBits, (u64, u64)>,
    /// Split images, in split order: `(bit, ref)` — entries whose hash has
    /// `bit` set moved to `ref` when this bucket split at that bit. The
    /// misnavigation-recovery chain (the hash table's "right links").
    pub images: Vec<(u8, BucketRef)>,
}

impl Bucket {
    /// A fresh bucket for `pattern`/`local_depth`.
    pub fn new(id: BucketId, pattern: u64, local_depth: u8) -> Self {
        Bucket {
            id,
            pattern,
            local_depth,
            entries: BTreeMap::new(),
            images: Vec::new(),
        }
    }

    /// Does this bucket currently own `h`?
    pub fn owns(&self, h: HashBits) -> bool {
        matches_pattern(h, self.pattern, self.local_depth)
    }

    /// For a hash this bucket does *not* own: the split image to forward
    /// to. `None` means the hash mismatches the bucket's pre-split pattern
    /// — a routing error recoverable only by restarting at the directory.
    pub fn image_for(&self, h: HashBits) -> Option<BucketRef> {
        for &(bit, image) in &self.images {
            if (h >> bit) & 1 == 1 && (self.pattern >> bit) & 1 == 0 {
                // The hash went to the 1-side of this split (and possibly
                // deeper splits of the image — it recovers recursively).
                if matches_pattern(h, self.pattern, bit) {
                    return Some(image);
                }
            }
        }
        None
    }

    /// Split: deepen by one bit; entries whose hash has the new bit set
    /// move to the returned sibling (placed by the caller); a split-image
    /// link is recorded.
    ///
    /// Returns `(bit, sibling_pattern, moved_entries)`.
    pub fn split(&mut self) -> (u8, u64, BTreeMap<HashBits, (u64, u64)>) {
        let bit = self.local_depth;
        self.local_depth += 1;
        let sib_pattern = self.pattern | (1u64 << bit);
        let moved: BTreeMap<HashBits, (u64, u64)> = {
            let mut moved = BTreeMap::new();
            self.entries.retain(|&h, &mut v| {
                if (h >> bit) & 1 == 1 {
                    moved.insert(h, v);
                    false
                } else {
                    true
                }
            });
            moved
        };
        (bit, sib_pattern, moved)
    }

    /// Record the image created by a split at `bit`.
    pub fn record_image(&mut self, bit: u8, image: BucketRef) {
        self.images.push((bit, image));
    }

    /// The bucket's value digest (for end-of-run validation).
    pub fn digest(&self) -> u64 {
        history::fnv1a(
            [self.pattern, self.local_depth as u64]
                .into_iter()
                .chain(self.entries.iter().flat_map(|(&h, &(k, v))| [h, k, v])),
        )
    }

    /// Structural invariant: every entry matches the pattern.
    pub fn invariant_ok(&self) -> bool {
        self.pattern & !low_mask(self.local_depth) == 0
            && self.entries.keys().all(|&h| self.owns(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bref(id: u64, depth: u8) -> BucketRef {
        BucketRef {
            id: BucketId(id),
            home: ProcId(0),
            local_depth: depth,
        }
    }

    #[test]
    fn split_partitions_by_new_bit() {
        let mut b = Bucket::new(BucketId(1), 0, 0);
        for h in 0..8u64 {
            b.entries.insert(h, (h, h));
        }
        let (bit, sib_pattern, moved) = b.split();
        assert_eq!(bit, 0);
        assert_eq!(sib_pattern, 1);
        assert_eq!(b.local_depth, 1);
        // Evens stay (bit0 = 0), odds move.
        assert!(b.entries.keys().all(|h| h % 2 == 0));
        assert!(moved.keys().all(|h| h % 2 == 1));
        assert!(b.invariant_ok());
    }

    #[test]
    fn repeated_splits_deepen() {
        let mut b = Bucket::new(BucketId(1), 0, 0);
        for h in 0..16u64 {
            b.entries.insert(h, (h, h));
        }
        let (_, p1, _) = b.split(); // bit0: keeps xxx0
        let (_, p2, _) = b.split(); // bit1: keeps xx00
        assert_eq!((p1, p2), (0b1, 0b10));
        assert_eq!(b.local_depth, 2);
        assert!(b.entries.keys().all(|h| h % 4 == 0));
        assert!(b.invariant_ok());
    }

    #[test]
    fn image_routing_follows_the_split_chain() {
        let mut b = Bucket::new(BucketId(1), 0, 0);
        let (bit0, _, _) = b.split();
        b.record_image(bit0, bref(10, 1)); // hashes ...1 → bucket 10
        let (bit1, _, _) = b.split();
        b.record_image(bit1, bref(20, 2)); // hashes ..10 → bucket 20

        assert!(b.owns(0b100));
        assert_eq!(b.image_for(0b001).unwrap().id, BucketId(10));
        assert_eq!(
            b.image_for(0b011).unwrap().id,
            BucketId(10),
            "deeper: image recurses"
        );
        assert_eq!(b.image_for(0b010).unwrap().id, BucketId(20));
        assert_eq!(b.image_for(0b110).unwrap().id, BucketId(20));
    }

    #[test]
    fn digest_is_content_sensitive() {
        let mut a = Bucket::new(BucketId(1), 0, 1);
        let mut b = Bucket::new(BucketId(1), 0, 1);
        a.entries.insert(2, (2, 20));
        b.entries.insert(2, (2, 20));
        assert_eq!(a.digest(), b.digest());
        b.entries.insert(4, (4, 40));
        assert_ne!(a.digest(), b.digest());
    }
}
