//! Hashing and bit-pattern utilities for extendible hashing.

/// A key's hash, of which the *low* bits select the directory slot
/// (standard extendible-hashing convention).
pub type HashBits = u64;

/// Fibonacci hash: odd multiplier scrambles keys uniformly; deterministic.
pub fn hash_of(key: u64) -> HashBits {
    key.wrapping_mul(0x9E3779B97F4A7C15)
}

/// Does `h` match `pattern` on its low `depth` bits?
pub fn matches_pattern(h: HashBits, pattern: u64, depth: u8) -> bool {
    let mask = low_mask(depth);
    (h & mask) == (pattern & mask)
}

/// A mask selecting the low `depth` bits.
pub fn low_mask(depth: u8) -> u64 {
    if depth >= 64 {
        u64::MAX
    } else {
        (1u64 << depth) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(3), 0b111);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn pattern_matching() {
        assert!(matches_pattern(0b1010, 0b10, 2));
        assert!(!matches_pattern(0b1011, 0b10, 2));
        assert!(matches_pattern(0xFFFF, 0, 0), "depth 0 matches everything");
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash_of(42), hash_of(42));
        // Low bits of consecutive keys differ (the property the directory
        // index relies on).
        let low3: std::collections::HashSet<u64> = (0..64u64).map(|k| hash_of(k) & 0b111).collect();
        assert_eq!(low3.len(), 8, "all 8 patterns hit");
    }
}
