//! Cluster bootstrap, client driver, and end-of-run checkers for the
//! distributed hash table.
//!
//! Driver mechanics are the shared `simnet::driver::Driver`; this module
//! teaches it the hash table's wire protocol via [`HashProtocol`] and keeps
//! the legacy typed statistics. Like the dB-tree facade, [`HashCluster`] is
//! generic over the runtime: [`HashSim`] (the default, deterministic) or
//! [`ThreadedHashRuntime`] (real threads).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use history::HistoryLog;
use parking_lot::Mutex;
use simnet::driver::{ClientProtocol, Completion, Driver, NoScan, OpOutcome};
use simnet::{
    threaded, ProcId, QuiesceError, Runtime, SessionConfig, SessionMsg, SessionProc, SimConfig,
    SimTime, Simulation,
};

use crate::bucket::{Bucket, BucketId, BucketRef};
use crate::dir::Directory;
use crate::hashfn::hash_of;
use crate::msg::{HKind, HMsg, HOutcome};
use crate::proc::{HashConfig, HashProc, DIR_NODE};

/// What to build.
#[derive(Clone, Debug)]
pub struct HashSpec {
    /// Keys preloaded with value = key.
    pub preload: Vec<u64>,
    /// Cluster size.
    pub n_procs: u32,
    /// Configuration.
    pub cfg: HashConfig,
}

/// One client operation for the driver.
#[derive(Clone, Copy, Debug)]
pub struct HashOp {
    /// The processor the client submits to.
    pub origin: ProcId,
    /// The key.
    pub key: u64,
    /// Search / insert / delete.
    pub kind: HKind,
}

/// The hash table's client wire protocol for the shared driver.
pub enum HashProtocol {}

impl ClientProtocol for HashProtocol {
    type Msg = SessionMsg<HMsg>;
    type Op = HashOp;
    type Outcome = HOutcome;
    type Scan = NoScan;
    type ScanResult = ();

    fn origin(op: &HashOp) -> ProcId {
        op.origin
    }

    fn retarget(op: &HashOp, to: ProcId) -> HashOp {
        // Every processor holds a directory copy and can route any key, so
        // a retried op may enter wherever the retry layer redirects it.
        HashOp { origin: to, ..*op }
    }

    fn request(id: u64, op: &HashOp) -> Self::Msg {
        SessionMsg::Raw(HMsg::Client {
            op: id,
            key: op.key,
            kind: op.kind,
        })
    }

    fn scan_origin(scan: &NoScan) -> ProcId {
        match *scan {}
    }

    fn scan_request(_id: u64, scan: &NoScan) -> Self::Msg {
        match *scan {}
    }

    fn parse(msg: Self::Msg) -> Option<Completion<HOutcome, ()>> {
        let SessionMsg::Raw(msg) = msg else {
            return None;
        };
        match msg {
            HMsg::Done(outcome) => Some(Completion::Op {
                id: outcome.op,
                outcome,
            }),
            _ => None,
        }
    }
}

impl OpOutcome for HOutcome {
    fn hops(&self) -> u32 {
        self.hops
    }
    fn chases(&self) -> u32 {
        self.recoveries
    }
    fn lost(&self) -> bool {
        self.lost
    }
}

/// A completed operation.
#[derive(Clone, Copy, Debug)]
pub struct HashOpRecord {
    /// The outcome reported by the owning bucket.
    pub outcome: HOutcome,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

/// Aggregate statistics of a driven workload.
#[derive(Clone, Debug, Default)]
pub struct HashClusterStats {
    /// Completed operations.
    pub records: Vec<HashOpRecord>,
    /// Attempts that hit their per-attempt deadline (retry layer only;
    /// cumulative over the driver's lifetime, like the other three).
    pub timeouts: u64,
    /// Resubmissions made after a timeout.
    pub retries: u64,
    /// Resubmissions redirected off a suspected origin.
    pub redirects: u64,
    /// Operations given up after exhausting their attempts.
    pub abandoned: u64,
}

impl HashClusterStats {
    fn from_driver(records: Vec<simnet::driver::OpRecord<HashOp, HOutcome>>) -> Self {
        HashClusterStats {
            records: records
                .into_iter()
                .map(|r| HashOpRecord {
                    outcome: r.outcome,
                    submitted: r.submitted,
                    completed: r.completed,
                })
                .collect(),
            timeouts: 0,
            retries: 0,
            redirects: 0,
            abandoned: 0,
        }
    }

    fn from_stats(stats: simnet::driver::DriverStats<HashOp, HOutcome>) -> Self {
        HashClusterStats {
            timeouts: stats.timeouts,
            retries: stats.retries,
            redirects: stats.redirects,
            abandoned: stats.abandoned,
            ..Self::from_driver(stats.records)
        }
    }

    /// Operations reported lost (NaiveNoLinks drops).
    pub fn lost(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.lost).count()
    }

    /// Total misnavigation recoveries.
    pub fn recoveries(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.outcome.recoveries as u64)
            .sum()
    }

    /// Mean latency in virtual ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.completed - r.submitted)
            .sum::<u64>() as f64
            / self.records.len() as f64
    }
}

/// The simulation type driving a [`HashCluster`]: every processor runs
/// behind a reliable-delivery session endpoint, which is a transparent
/// pass-through unless the [`SimConfig`] carries an active fault plan.
pub type HashSim = Simulation<SessionProc<HashProc>>;

/// The threaded runtime for the same processes.
pub type ThreadedHashRuntime = threaded::Cluster<SessionProc<HashProc>>;

/// A distributed hash table on real threads (see
/// [`HashCluster::build_threaded`]).
pub type ThreadedHashCluster = HashCluster<ThreadedHashRuntime>;

/// A distributed hash table over a message-passing runtime. `R` is the
/// substrate — [`HashSim`] (the default) or [`ThreadedHashRuntime`].
pub struct HashCluster<R = HashSim> {
    /// The underlying runtime.
    pub sim: R,
    driver: Driver<HashProtocol>,
    log: Arc<Mutex<HistoryLog>>,
}

/// Build the initial processor states: a directory of depth
/// `ceil(log2(n_procs))`, bucket *i* on processor `i % n_procs`, preloaded
/// keys hashed in, everything wrapped in the session layer.
fn bootstrap(
    spec: &HashSpec,
    session: SessionConfig,
) -> (Vec<SessionProc<HashProc>>, Arc<Mutex<HistoryLog>>) {
    let n = spec.n_procs;
    assert!(n > 0);
    let log = Arc::new(Mutex::new(if spec.cfg.record_history {
        HistoryLog::new()
    } else {
        HistoryLog::disabled()
    }));

    // Initial depth: enough buckets that every processor owns one.
    let mut depth = 0u8;
    while (1usize << depth) < n as usize {
        depth += 1;
    }
    let n_buckets = 1usize << depth;

    // Mint bootstrap ids with *per-processor* counters so they can
    // never collide with the ids processors mint for split images later
    // (each processor's counter space is dense from 0).
    let mut per_proc_counter = vec![0u64; n as usize];
    let mut buckets: Vec<Bucket> = (0..n_buckets)
        .map(|i| {
            let home = ProcId((i % n as usize) as u32);
            let counter = per_proc_counter[home.index()];
            per_proc_counter[home.index()] += 1;
            Bucket::new(BucketId::mint(home, counter), i as u64, depth)
        })
        .collect();
    for &key in &spec.preload {
        let h = hash_of(key);
        let idx = (h & ((n_buckets as u64) - 1)) as usize;
        buckets[idx].entries.insert(h, (key, key));
    }
    let slots: Vec<BucketRef> = buckets
        .iter()
        .enumerate()
        .map(|(i, b)| BucketRef {
            id: b.id,
            home: ProcId((i % n as usize) as u32),
            local_depth: depth,
        })
        .collect();

    {
        let mut l = log.lock();
        for p in 0..n {
            l.copy_created(DIR_NODE, p, []);
        }
        for (i, b) in buckets.iter().enumerate() {
            l.copy_created(b.id.raw(), (i % n as usize) as u32, []);
        }
    }

    let procs: Vec<HashProc> = (0..n)
        .map(|p| {
            let dir = Directory::from_slots(depth, slots.clone());
            let mine: BTreeMap<BucketId, Bucket> = buckets
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i % n as usize) as u32 == p)
                .map(|(_, b)| (b.id, b.clone()))
                .collect();
            HashProc::new(ProcId(p), n, spec.cfg.clone(), dir, mine, Arc::clone(&log))
        })
        .collect();

    let procs = procs
        .into_iter()
        .map(|p| SessionProc::new(p, session))
        .collect();
    (procs, log)
}

impl HashCluster<HashSim> {
    /// Bootstrap a simulated deployment (see [`bootstrap`]'s shape rules).
    ///
    /// A lossy network ⇒ every processor is wrapped in the reliable-delivery
    /// session layer; on a perfect network the wrapper passes messages
    /// through untouched.
    pub fn build(spec: &HashSpec, sim_cfg: SimConfig) -> Self {
        let session = if sim_cfg.faults.is_active() {
            SessionConfig::reliable()
        } else {
            SessionConfig::default()
        };
        Self::build_with_session(spec, sim_cfg, session)
    }

    /// Bootstrap with an explicit session configuration — e.g. the schedule
    /// explorer raises `max_retries` so an adversarial scheduler that starves
    /// a channel for a long stretch cannot make the session layer give up
    /// and manufacture a message loss the protocol never caused.
    pub fn build_with_session(spec: &HashSpec, sim_cfg: SimConfig, session: SessionConfig) -> Self {
        let (procs, log) = bootstrap(spec, session);
        HashCluster {
            sim: Simulation::new(sim_cfg, procs),
            driver: Driver::new(),
            log,
        }
    }

    /// Record final digests into the history log (call before `check`).
    pub fn record_final_digests(&mut self) {
        record_final_digests_from(&self.log, self.sim.procs().map(|(pid, p)| (pid, &**p)));
    }
}

impl ThreadedHashCluster {
    /// Bootstrap the same deployment on real OS threads (pass-through
    /// session layer: thread channels are already reliable and FIFO).
    pub fn build_threaded(spec: &HashSpec) -> Self {
        Self::build_threaded_with_session(spec, SessionConfig::default())
    }

    /// Threaded deployment with an explicit session configuration (e.g. to
    /// run the failure detector against real crash/restart envelopes).
    pub fn build_threaded_with_session(spec: &HashSpec, session: SessionConfig) -> Self {
        let (procs, log) = bootstrap(spec, session);
        HashCluster {
            sim: threaded::Cluster::spawn(procs),
            driver: Driver::new(),
            log,
        }
    }
}

impl<R> HashCluster<R>
where
    R: Runtime<Proc = SessionProc<HashProc>>,
{
    /// The shared history log.
    pub fn log(&self) -> Arc<Mutex<HistoryLog>> {
        Arc::clone(&self.log)
    }

    /// Enable (or reconfigure) client-side robustness: per-op deadlines,
    /// bounded exponential backoff, and redirect-away-from-suspects.
    pub fn set_retry(&mut self, policy: simnet::RetryPolicy) {
        self.driver.set_retry(policy);
    }

    /// Submit one operation at `origin`.
    pub fn submit(&mut self, origin: ProcId, key: u64, kind: HKind) -> u64 {
        self.driver
            .submit(&mut self.sim, HashOp { origin, key, kind })
    }

    /// Run to quiescence, collecting completions. Panics if a run limit
    /// trips first (see [`HashCluster::try_run_to_quiescence`]).
    pub fn run_to_quiescence(&mut self) -> HashClusterStats {
        HashClusterStats::from_driver(self.driver.run_to_quiescence(&mut self.sim))
    }

    /// Run to quiescence, or fail with the limit that tripped.
    pub fn try_run_to_quiescence(&mut self) -> Result<HashClusterStats, QuiesceError> {
        self.driver
            .try_run_to_quiescence(&mut self.sim)
            .map(HashClusterStats::from_driver)
    }

    /// Drive `ops` closed-loop with `concurrency` outstanding operations
    /// per origin, then run to quiescence. Panics on a limit (see
    /// [`HashCluster::try_run_closed_loop`]).
    pub fn run_closed_loop(&mut self, ops: &[HashOp], concurrency: usize) -> HashClusterStats {
        HashClusterStats::from_stats(self.driver.run_closed_loop(&mut self.sim, ops, concurrency))
    }

    /// Closed-loop driving with limits reported as values.
    pub fn try_run_closed_loop(
        &mut self,
        ops: &[HashOp],
        concurrency: usize,
    ) -> Result<HashClusterStats, QuiesceError> {
        self.driver
            .try_run_closed_loop(&mut self.sim, ops, concurrency)
            .map(HashClusterStats::from_stats)
    }

    /// Drive `ops` open-loop on the deterministic arrival schedule of
    /// [`simnet::driver::arrival_offsets`], then run to quiescence. Panics
    /// on a limit (see [`HashCluster::try_run_open_loop`]).
    pub fn run_open_loop(&mut self, ops: &[HashOp], cfg: &simnet::OpenLoopCfg) -> HashClusterStats {
        HashClusterStats::from_stats(self.driver.run_open_loop(&mut self.sim, ops, cfg))
    }

    /// Open-loop driving with limits reported as values.
    pub fn try_run_open_loop(
        &mut self,
        ops: &[HashOp],
        cfg: &simnet::OpenLoopCfg,
    ) -> Result<HashClusterStats, QuiesceError> {
        self.driver
            .try_run_open_loop(&mut self.sim, ops, cfg)
            .map(HashClusterStats::from_stats)
    }

    /// Closed-loop driving returning the *generic* driver statistics
    /// (op ids = trace spans, makespan) — what the benchmark suite and the
    /// critical-path profiler consume.
    pub fn try_run_closed_loop_stats(
        &mut self,
        ops: &[HashOp],
        concurrency: usize,
    ) -> Result<simnet::driver::DriverStats<HashOp, HOutcome>, QuiesceError> {
        self.driver
            .try_run_closed_loop(&mut self.sim, ops, concurrency)
    }

    /// Open-loop driving returning the generic driver statistics.
    pub fn try_run_open_loop_stats(
        &mut self,
        ops: &[HashOp],
        cfg: &simnet::OpenLoopCfg,
    ) -> Result<simnet::driver::DriverStats<HashOp, HOutcome>, QuiesceError> {
        self.driver.try_run_open_loop(&mut self.sim, ops, cfg)
    }

    /// Take the observability data (trace + series) from the runtime.
    pub fn take_obs(&mut self) -> simnet::Obs {
        self.sim.take_obs()
    }

    /// Operations submitted but not yet completed.
    pub fn pending_ops(&self) -> usize {
        self.driver.pending_ops()
    }

    /// Tear the runtime down and return the final processor states (joins
    /// worker threads on the threaded runtime).
    pub fn into_procs(self) -> Vec<SessionProc<HashProc>> {
        self.sim.into_procs()
    }
}

/// Record every directory and bucket digest into `log` — usable on a live
/// simulation or on the processes a threaded shutdown handed back.
pub fn record_final_digests_from<'a>(
    log: &Arc<Mutex<HistoryLog>>,
    procs: impl IntoIterator<Item = (ProcId, &'a HashProc)>,
) {
    let mut log = log.lock();
    for (pid, proc) in procs {
        log.set_final_digest(DIR_NODE, pid.0, proc.dir.digest());
        for (id, b) in &proc.buckets {
            log.set_final_digest(id.raw(), pid.0, b.digest());
        }
    }
}

/// A violation found by the hash-table checker.
#[derive(Clone, Debug)]
pub enum HashViolation {
    /// Directory copies ended with different contents.
    DirDiverged {
        /// `(proc, digest)` of each copy.
        digests: Vec<(u32, u64)>,
    },
    /// A key present in `expected` is not findable from some processor.
    KeyLost {
        /// The key.
        key: u64,
        /// The processor whose directory could not reach it.
        from: ProcId,
    },
    /// A bucket's entries violate its pattern invariant.
    BadBucket {
        /// The bucket.
        bucket: BucketId,
    },
    /// Undelivered stashed operations at quiescence.
    DanglingStash {
        /// The processor.
        proc: ProcId,
        /// Stash size.
        count: usize,
    },
    /// History-log violations (rendered).
    History {
        /// Description.
        detail: String,
    },
}

/// Run the full end-of-run checker on a simulated cluster: directory
/// convergence, bucket invariants, key findability from *every* processor's
/// directory (chasing split-image links exactly like the protocol does),
/// stash drainage, and the §3 history requirements.
pub fn check_hash_cluster(
    cluster: &mut HashCluster,
    expected: &BTreeMap<u64, u64>,
) -> Vec<HashViolation> {
    cluster.record_final_digests();
    let procs: Vec<(ProcId, &HashProc)> = cluster.sim.procs().map(|(pid, p)| (pid, &**p)).collect();
    check_hash_procs(&procs, &cluster.log, expected)
}

/// The same checker over bare processor states — the form that works after
/// a threaded cluster's shutdown. Digests must already be recorded (see
/// [`record_final_digests_from`]).
pub fn check_hash_procs(
    procs: &[(ProcId, &HashProc)],
    log: &Arc<Mutex<HistoryLog>>,
    expected: &BTreeMap<u64, u64>,
) -> Vec<HashViolation> {
    let mut out = Vec::new();

    // Directory convergence.
    let digests: Vec<(u32, u64)> = procs
        .iter()
        .map(|(p, proc)| (p.0, proc.dir.digest()))
        .collect();
    if digests.windows(2).any(|w| w[0].1 != w[1].1) {
        out.push(HashViolation::DirDiverged { digests });
    }

    // Bucket invariants + global bucket map.
    let mut all_buckets: HashMap<BucketId, &Bucket> = HashMap::new();
    for (_, proc) in procs {
        for (id, b) in &proc.buckets {
            if !b.invariant_ok() {
                out.push(HashViolation::BadBucket { bucket: *id });
            }
            all_buckets.insert(*id, b);
        }
    }

    // Findability from every processor.
    for (pid, proc) in procs {
        for (&key, &value) in expected {
            let h = hash_of(key);
            let mut cur = proc.dir.route(h).id;
            let mut found = None;
            for _ in 0..64 {
                let Some(b) = all_buckets.get(&cur) else {
                    break;
                };
                if b.owns(h) {
                    found = b.entries.get(&h).map(|&(_, v)| v);
                    break;
                }
                match b.image_for(h) {
                    Some(img) => cur = img.id,
                    None => break,
                }
            }
            if found != Some(value) {
                out.push(HashViolation::KeyLost { key, from: *pid });
            }
        }
    }

    // Stashes and pending patches drained.
    for (pid, proc) in procs {
        let count: usize = proc.stash_sizes().values().sum::<usize>() + proc.pending_patch_count();
        if count > 0 {
            out.push(HashViolation::DanglingStash { proc: *pid, count });
        }
    }

    // §3 requirements.
    for v in log.lock().check() {
        out.push(HashViolation::History {
            detail: v.to_string(),
        });
    }
    out
}
