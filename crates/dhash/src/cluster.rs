//! Cluster bootstrap, client driver, and end-of-run checkers for the
//! distributed hash table.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use history::HistoryLog;
use parking_lot::Mutex;
use simnet::{ProcId, SessionConfig, SessionMsg, SessionProc, SimConfig, SimTime, Simulation};

use crate::bucket::{Bucket, BucketId, BucketRef};
use crate::dir::Directory;
use crate::hashfn::hash_of;
use crate::msg::{HKind, HMsg, HOutcome};
use crate::proc::{HashConfig, HashProc, DIR_NODE};

/// What to build.
#[derive(Clone, Debug)]
pub struct HashSpec {
    /// Keys preloaded with value = key.
    pub preload: Vec<u64>,
    /// Cluster size.
    pub n_procs: u32,
    /// Configuration.
    pub cfg: HashConfig,
}

/// A completed operation.
#[derive(Clone, Copy, Debug)]
pub struct HashOpRecord {
    /// The outcome reported by the owning bucket.
    pub outcome: HOutcome,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

/// Aggregate statistics of a driven workload.
#[derive(Clone, Debug, Default)]
pub struct HashClusterStats {
    /// Completed operations.
    pub records: Vec<HashOpRecord>,
}

impl HashClusterStats {
    /// Operations reported lost (NaiveNoLinks drops).
    pub fn lost(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.lost).count()
    }

    /// Total misnavigation recoveries.
    pub fn recoveries(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.outcome.recoveries as u64)
            .sum()
    }

    /// Mean latency in virtual ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.completed - r.submitted)
            .sum::<u64>() as f64
            / self.records.len() as f64
    }
}

/// The simulation type driving a [`HashCluster`]: every processor runs
/// behind a reliable-delivery session endpoint, which is a transparent
/// pass-through unless the [`SimConfig`] carries an active fault plan.
pub type HashSim = Simulation<SessionProc<HashProc>>;

/// A simulated distributed hash table.
pub struct HashCluster {
    /// The underlying simulation.
    pub sim: HashSim,
    log: Arc<Mutex<HistoryLog>>,
    next_op: u64,
    pending: HashMap<u64, SimTime>,
}

impl HashCluster {
    /// Bootstrap: an initial directory of depth `ceil(log2(n_procs))`,
    /// bucket *i* on processor `i % n_procs`, preloaded keys hashed in.
    pub fn build(spec: &HashSpec, sim_cfg: SimConfig) -> Self {
        let n = spec.n_procs;
        assert!(n > 0);
        let log = Arc::new(Mutex::new(if spec.cfg.record_history {
            HistoryLog::new()
        } else {
            HistoryLog::disabled()
        }));

        // Initial depth: enough buckets that every processor owns one.
        let mut depth = 0u8;
        while (1usize << depth) < n as usize {
            depth += 1;
        }
        let n_buckets = 1usize << depth;

        // Mint bootstrap ids with *per-processor* counters so they can
        // never collide with the ids processors mint for split images later
        // (each processor's counter space is dense from 0).
        let mut per_proc_counter = vec![0u64; n as usize];
        let mut buckets: Vec<Bucket> = (0..n_buckets)
            .map(|i| {
                let home = ProcId((i % n as usize) as u32);
                let counter = per_proc_counter[home.index()];
                per_proc_counter[home.index()] += 1;
                Bucket::new(BucketId::mint(home, counter), i as u64, depth)
            })
            .collect();
        for &key in &spec.preload {
            let h = hash_of(key);
            let idx = (h & ((n_buckets as u64) - 1)) as usize;
            buckets[idx].entries.insert(h, (key, key));
        }
        let slots: Vec<BucketRef> = buckets
            .iter()
            .enumerate()
            .map(|(i, b)| BucketRef {
                id: b.id,
                home: ProcId((i % n as usize) as u32),
                local_depth: depth,
            })
            .collect();

        {
            let mut l = log.lock();
            for p in 0..n {
                l.copy_created(DIR_NODE, p, []);
            }
            for (i, b) in buckets.iter().enumerate() {
                l.copy_created(b.id.raw(), (i % n as usize) as u32, []);
            }
        }

        let procs: Vec<HashProc> = (0..n)
            .map(|p| {
                let dir = Directory::from_slots(depth, slots.clone());
                let mine: BTreeMap<BucketId, Bucket> = buckets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (*i % n as usize) as u32 == p)
                    .map(|(_, b)| (b.id, b.clone()))
                    .collect();
                HashProc::new(ProcId(p), n, spec.cfg.clone(), dir, mine, Arc::clone(&log))
            })
            .collect();

        // Lossy network ⇒ wrap every processor in the reliable-delivery
        // session layer; on a perfect network the wrapper passes messages
        // through untouched.
        let session = if sim_cfg.faults.is_active() {
            SessionConfig::reliable()
        } else {
            SessionConfig::default()
        };
        let procs: Vec<SessionProc<HashProc>> = procs
            .into_iter()
            .map(|p| SessionProc::new(p, session))
            .collect();
        HashCluster {
            sim: Simulation::new(sim_cfg, procs),
            log,
            next_op: 1,
            pending: HashMap::new(),
        }
    }

    /// The shared history log.
    pub fn log(&self) -> Arc<Mutex<HistoryLog>> {
        Arc::clone(&self.log)
    }

    /// Submit one operation at `origin`.
    pub fn submit(&mut self, origin: ProcId, key: u64, kind: HKind) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        self.pending.insert(op, self.sim.now());
        self.sim
            .inject(origin, SessionMsg::Raw(HMsg::Client { op, key, kind }));
        op
    }

    /// Run to quiescence, collecting completions.
    pub fn run_to_quiescence(&mut self) -> HashClusterStats {
        let mut stats = HashClusterStats::default();
        loop {
            let progressed = self.sim.step();
            for (at, _from, msg) in self.sim.drain_outputs() {
                let SessionMsg::Raw(msg) = msg else { continue };
                if let HMsg::Done(outcome) = msg {
                    if let Some(submitted) = self.pending.remove(&outcome.op) {
                        stats.records.push(HashOpRecord {
                            outcome,
                            submitted,
                            completed: at,
                        });
                    }
                }
            }
            if !progressed {
                return stats;
            }
        }
    }

    /// Record final digests into the history log (call before `check`).
    pub fn record_final_digests(&mut self) {
        let mut log = self.log.lock();
        for (pid, proc) in self.sim.procs() {
            log.set_final_digest(DIR_NODE, pid.0, proc.dir.digest());
            for (id, b) in &proc.buckets {
                log.set_final_digest(id.raw(), pid.0, b.digest());
            }
        }
    }
}

/// A violation found by the hash-table checker.
#[derive(Clone, Debug)]
pub enum HashViolation {
    /// Directory copies ended with different contents.
    DirDiverged {
        /// `(proc, digest)` of each copy.
        digests: Vec<(u32, u64)>,
    },
    /// A key present in `expected` is not findable from some processor.
    KeyLost {
        /// The key.
        key: u64,
        /// The processor whose directory could not reach it.
        from: ProcId,
    },
    /// A bucket's entries violate its pattern invariant.
    BadBucket {
        /// The bucket.
        bucket: BucketId,
    },
    /// Undelivered stashed operations at quiescence.
    DanglingStash {
        /// The processor.
        proc: ProcId,
        /// Stash size.
        count: usize,
    },
    /// History-log violations (rendered).
    History {
        /// Description.
        detail: String,
    },
}

/// Run the full end-of-run checker: directory convergence, bucket
/// invariants, key findability from *every* processor's directory (chasing
/// split-image links exactly like the protocol does), stash drainage, and
/// the §3 history requirements.
pub fn check_hash_cluster(
    cluster: &mut HashCluster,
    expected: &BTreeMap<u64, u64>,
) -> Vec<HashViolation> {
    cluster.record_final_digests();
    let mut out = Vec::new();

    // Directory convergence.
    let digests: Vec<(u32, u64)> = cluster
        .sim
        .procs()
        .map(|(p, proc)| (p.0, proc.dir.digest()))
        .collect();
    if digests.windows(2).any(|w| w[0].1 != w[1].1) {
        out.push(HashViolation::DirDiverged { digests });
    }

    // Bucket invariants + global bucket map.
    let mut all_buckets: HashMap<BucketId, &Bucket> = HashMap::new();
    for (_, proc) in cluster.sim.procs() {
        for (id, b) in &proc.buckets {
            if !b.invariant_ok() {
                out.push(HashViolation::BadBucket { bucket: *id });
            }
            all_buckets.insert(*id, b);
        }
    }

    // Findability from every processor.
    for (pid, proc) in cluster.sim.procs() {
        for (&key, &value) in expected {
            let h = hash_of(key);
            let mut cur = proc.dir.route(h).id;
            let mut found = None;
            for _ in 0..64 {
                let Some(b) = all_buckets.get(&cur) else {
                    break;
                };
                if b.owns(h) {
                    found = b.entries.get(&h).map(|&(_, v)| v);
                    break;
                }
                match b.image_for(h) {
                    Some(img) => cur = img.id,
                    None => break,
                }
            }
            if found != Some(value) {
                out.push(HashViolation::KeyLost { key, from: pid });
            }
        }
    }

    // Stashes and pending patches drained.
    for (pid, proc) in cluster.sim.procs() {
        let count: usize = proc.stash_sizes().values().sum::<usize>() + proc.pending_patch_count();
        if count > 0 {
            out.push(HashViolation::DanglingStash { proc: pid, count });
        }
    }

    // §3 requirements.
    for v in cluster.log().lock().check() {
        out.push(HashViolation::History {
            detail: v.to_string(),
        });
    }
    out
}
