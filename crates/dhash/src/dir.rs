//! The replicated directory and its lazy patches.
//!
//! Every processor holds a directory copy: `2^global_depth` slots mapping
//! the low bits of a hash to a [`BucketRef`]. Splits publish [`DirPatch`]es
//! that each copy applies independently; patches for different buckets
//! commute, and patches for the same slot chain are ordered by the split
//! bit (≥ comparisons skip stale patches — the ordered-history rule).

use crate::bucket::{BucketId, BucketRef};
use crate::hashfn::{low_mask, HashBits};

/// What applying a patch did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatchOutcome {
    /// Slots changed.
    Applied,
    /// The parent's slots already reflect this split (duplicate/stale).
    Stale,
    /// No slot references the parent yet: the patch that introduces the
    /// parent (it is itself a recent split image) is still in flight on
    /// another channel. The caller must retry after later patches apply —
    /// dropping it would leave this copy permanently wrong.
    ParentUnknown,
}

/// A lazy directory update published by a bucket split: the bucket at
/// `parent` split at `bit`, creating `image` for hashes with that bit set.
#[derive(Clone, Copy, Debug)]
pub struct DirPatch {
    /// The bucket that split.
    pub parent: BucketId,
    /// The parent's new local depth (= `bit + 1`).
    pub new_depth: u8,
    /// The split bit.
    pub bit: u8,
    /// The new bucket for the 1-side.
    pub image: BucketRef,
    /// History tag of the update.
    pub tag: u64,
}

/// One processor's directory copy.
#[derive(Clone, Debug)]
pub struct Directory {
    global_depth: u8,
    slots: Vec<BucketRef>,
}

impl Directory {
    /// A depth-0 directory pointing everything at `root`.
    pub fn new(root: BucketRef) -> Self {
        Directory {
            global_depth: 0,
            slots: vec![root],
        }
    }

    /// Build a directory at `depth` from explicit slots (bootstrap).
    pub fn from_slots(depth: u8, slots: Vec<BucketRef>) -> Self {
        assert_eq!(slots.len(), 1usize << depth);
        Directory {
            global_depth: depth,
            slots,
        }
    }

    /// Current global depth.
    pub fn global_depth(&self) -> u8 {
        self.global_depth
    }

    /// Number of slots (`2^global_depth`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the directory is empty (never: kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The bucket responsible for `h`, per this (possibly stale) copy.
    pub fn route(&self, h: HashBits) -> BucketRef {
        self.slots[(h & low_mask(self.global_depth)) as usize]
    }

    /// Double the directory (each slot pair mirrors the old slot).
    fn double(&mut self) {
        let old = self.slots.clone();
        self.slots = Vec::with_capacity(old.len() * 2);
        // Slot index layout: low bits select — new index i maps to old
        // index i & old_mask.
        for i in 0..old.len() * 2 {
            self.slots.push(old[i & (old.len() - 1)]);
        }
        self.global_depth += 1;
    }

    /// Apply a lazy patch.
    pub fn apply(&mut self, patch: &DirPatch) -> PatchOutcome {
        // Don't deepen the directory for a patch we can't yet place.
        if !self.slots.iter().any(|s| s.id == patch.parent) {
            return PatchOutcome::ParentUnknown;
        }
        while self.global_depth < patch.new_depth {
            self.double();
        }
        let mut changed = false;
        for i in 0..self.slots.len() {
            let slot = &mut self.slots[i];
            if slot.id != patch.parent {
                continue;
            }
            // Only slots on the 1-side of the split bit move to the image;
            // all of the parent's slots advance their recorded depth.
            if slot.local_depth >= patch.new_depth {
                continue; // stale patch for this slot
            }
            if (i as u64 >> patch.bit) & 1 == 1 {
                *slot = patch.image;
            } else {
                slot.local_depth = patch.new_depth;
            }
            changed = true;
        }
        if changed {
            PatchOutcome::Applied
        } else {
            PatchOutcome::Stale
        }
    }

    /// Digest for convergence checks.
    pub fn digest(&self) -> u64 {
        history::fnv1a(
            std::iter::once(self.global_depth as u64).chain(
                self.slots
                    .iter()
                    .flat_map(|s| [s.id.raw(), s.local_depth as u64]),
            ),
        )
    }

    /// Iterate the slots (for checkers).
    pub fn slots(&self) -> &[BucketRef] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ProcId;

    fn bref(id: u64, depth: u8) -> BucketRef {
        BucketRef {
            id: BucketId(id),
            home: ProcId(0),
            local_depth: depth,
        }
    }

    fn patch(parent: u64, bit: u8, image: u64) -> DirPatch {
        DirPatch {
            parent: BucketId(parent),
            new_depth: bit + 1,
            bit,
            image: bref(image, bit + 1),
            tag: 0,
        }
    }

    #[test]
    fn patch_doubles_and_splits_slots() {
        let mut d = Directory::new(bref(1, 0));
        assert_eq!(d.apply(&patch(1, 0, 2)), PatchOutcome::Applied);
        assert_eq!(d.global_depth(), 1);
        assert_eq!(d.route(0b0).id, BucketId(1));
        assert_eq!(d.route(0b1).id, BucketId(2));
    }

    #[test]
    fn patches_for_different_buckets_commute() {
        let mk = || {
            let mut d = Directory::new(bref(1, 0));
            d.apply(&patch(1, 0, 2)); // 1 covers ..0, 2 covers ..1
            d
        };
        let p_a = patch(1, 1, 3); // 1 splits: ..10 → 3
        let p_b = patch(2, 1, 4); // 2 splits: ..11 → 4
        let mut d1 = mk();
        d1.apply(&p_a);
        d1.apply(&p_b);
        let mut d2 = mk();
        d2.apply(&p_b);
        d2.apply(&p_a);
        assert_eq!(d1.digest(), d2.digest());
        assert_eq!(d1.route(0b10).id, BucketId(3));
        assert_eq!(d1.route(0b11).id, BucketId(4));
    }

    #[test]
    fn stale_patch_skipped() {
        let mut d = Directory::new(bref(1, 0));
        let p = patch(1, 0, 2);
        assert_eq!(d.apply(&p), PatchOutcome::Applied);
        assert_eq!(d.apply(&p), PatchOutcome::Stale, "replay is a no-op");
    }

    #[test]
    fn same_bucket_patch_chain_applies_in_split_order() {
        // Patches for the same bucket form an *ordered* action class. The
        // order is guaranteed operationally: a bucket never moves, so all
        // its split patches originate from one processor and every
        // directory copy receives them FIFO (exactly how the dB-tree orders
        // relayed splits). Applied in order, the chain is correct; replays
        // and stale duplicates are skipped.
        let p1 = patch(1, 0, 2);
        let p2 = patch(1, 1, 3);
        let mut d = Directory::new(bref(1, 0));
        assert_eq!(d.apply(&p1), PatchOutcome::Applied);
        assert_eq!(d.apply(&p2), PatchOutcome::Applied);
        assert_eq!(d.apply(&p1), PatchOutcome::Stale, "stale duplicate skipped");
        assert_eq!(d.route(0b00).id, BucketId(1));
        assert_eq!(d.route(0b01).id, BucketId(2));
        assert_eq!(d.route(0b10).id, BucketId(3));
        assert_eq!(d.route(0b11).id, BucketId(2));
    }

    #[test]
    fn unknown_parent_is_reported_not_dropped() {
        // The image patch for bucket 3 arrives before the patch that
        // introduces bucket 3 itself: the caller must retry it later.
        let mut d = Directory::new(bref(1, 0));
        let late = patch(3, 1, 4);
        assert_eq!(d.apply(&late), PatchOutcome::ParentUnknown);
        assert_eq!(d.apply(&patch(1, 0, 3)), PatchOutcome::Applied);
        assert_eq!(d.apply(&late), PatchOutcome::Applied, "retry succeeds");
        assert_eq!(d.route(0b01).id, BucketId(3));
        assert_eq!(d.route(0b11).id, BucketId(4));
    }

    #[test]
    fn route_uses_low_bits() {
        let mut d = Directory::new(bref(1, 0));
        d.apply(&patch(1, 0, 2));
        assert_eq!(d.route(0xFFFF_FFF0).id, BucketId(1));
        assert_eq!(d.route(0xFFFF_FFF1).id, BucketId(2));
    }
}
