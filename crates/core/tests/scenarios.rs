//! Surgical protocol scenarios: tiny clusters, controlled stepping, exact
//! assertions about what each protocol does at each phase.

mod common;

use std::collections::BTreeSet;

use common::assert_clean;
use dbtree::{
    BuildSpec, ClientOp, DbCluster, GlobalView, Intent, Placement, ProtocolKind, TreeConfig,
};
use simnet::{ProcId, SimConfig};

/// A 2-processor, 2-copy cluster with two nearly-full leaves.
fn tiny(protocol: ProtocolKind, seed: u64) -> DbCluster {
    let cfg = TreeConfig {
        fanout: 4,
        ..TreeConfig::fixed_copies(protocol, 2)
    };
    let spec = BuildSpec {
        keys: vec![10, 20, 30, 40, 110, 120, 130, 140],
        n_procs: 2,
        cfg,
        fill: 4,
    };
    let mut sim_cfg = SimConfig::jittery(seed, 2, 20);
    sim_cfg.trace_capacity = 500;
    DbCluster::build(&spec, sim_cfg)
}

// ---------------------------------------------------------------------------
// Synchronous splits (§4.1.1)
// ---------------------------------------------------------------------------

#[test]
fn sync_split_runs_the_full_aas_round() {
    let mut cluster = tiny(ProtocolKind::Sync, 1);
    cluster.submit(ClientOp {
        origin: ProcId(0),
        key: 15,
        intent: Intent::Insert(15),
    });
    cluster.run_to_quiescence();

    // The trace shows the AAS protocol in order on the wire:
    // split.start → split.ack → split.end.
    let kinds: Vec<&str> = cluster
        .sim
        .trace()
        .of_event(simnet::TraceEvent::Deliver)
        .map(|e| e.kind)
        .filter(|k| k.starts_with("split."))
        .collect();
    assert_eq!(kinds, vec!["split.start", "split.ack", "split.end"]);
    let s = cluster.sim.stats();
    assert_eq!(s.kind("split.start").remote, 1);
    assert_eq!(s.kind("split.ack").remote, 1);
    assert_eq!(s.kind("split.end").remote, 1);

    let expected: BTreeSet<u64> = [10, 20, 30, 40, 110, 120, 130, 140, 15]
        .into_iter()
        .collect();
    assert_clean(&mut cluster, &expected);
}

#[test]
fn sync_blocked_insert_lands_after_the_split() {
    // Fill the leaf so the first insert splits it; submit a second insert
    // for a key that will belong to the *sibling* while the AAS is open.
    for seed in 0..10u64 {
        let mut cluster = tiny(ProtocolKind::Sync, seed);
        cluster.submit(ClientOp {
            origin: ProcId(0),
            key: 15,
            intent: Intent::Insert(15),
        });
        cluster.submit(ClientOp {
            origin: ProcId(1),
            key: 35,
            intent: Intent::Insert(35),
        });
        cluster.run_to_quiescence();
        let expected: BTreeSet<u64> = [10, 20, 30, 40, 110, 120, 130, 140, 15, 35]
            .into_iter()
            .collect();
        assert_clean(&mut cluster, &expected);
    }
}

// ---------------------------------------------------------------------------
// Semisync (§4.1.2)
// ---------------------------------------------------------------------------

#[test]
fn semisync_split_is_one_message_per_copy() {
    let mut cluster = tiny(ProtocolKind::SemiSync, 1);
    cluster.submit(ClientOp {
        origin: ProcId(0),
        key: 15,
        intent: Intent::Insert(15),
    });
    cluster.run_to_quiescence();
    let s = cluster.sim.stats();
    assert_eq!(s.kind("split.relay").remote, 1, "|copies|-1 messages");
    assert_eq!(s.kind("split.start").remote, 0);
    assert_eq!(s.kind("split.ack").remote, 0);
}

#[test]
fn semisync_rewrites_history_for_late_relays() {
    // Find a schedule where an insert performed at the non-PC copy races
    // the PC's split, forcing the PC to re-issue the relay toward the
    // sibling (metrics.relays_forwarded > 0) — the literal Fig 5 right-hand
    // flow.
    let mut hit = false;
    for seed in 0..40u64 {
        let mut cluster = tiny(ProtocolKind::SemiSync, seed);
        // Two inserts to the same (full) leaf from both processors at once:
        // one triggers the split at the PC, the other lands at the non-PC
        // copy and relays late.
        cluster.submit(ClientOp {
            origin: ProcId(0),
            key: 15,
            intent: Intent::Insert(15),
        });
        cluster.submit(ClientOp {
            origin: ProcId(1),
            key: 35,
            intent: Intent::Insert(35),
        });
        cluster.run_to_quiescence();
        let forwarded: u64 = cluster
            .sim
            .procs()
            .map(|(_, p)| p.metrics.relays_forwarded)
            .sum();
        let expected: BTreeSet<u64> = [10, 20, 30, 40, 110, 120, 130, 140, 15, 35]
            .into_iter()
            .collect();
        assert_clean(&mut cluster, &expected);
        if forwarded > 0 {
            hit = true;
            break;
        }
    }
    assert!(hit, "the race window was exercised within 40 seeds");
}

// ---------------------------------------------------------------------------
// Available-copies
// ---------------------------------------------------------------------------

#[test]
fn avail_copies_serializes_same_node_writes_through_the_pc() {
    let mut cluster = tiny(ProtocolKind::AvailableCopies, 3);
    // Concurrent writes to the same leaf from both processors.
    for (i, key) in [15u64, 16, 17, 35, 36].into_iter().enumerate() {
        cluster.submit(ClientOp {
            origin: ProcId((i % 2) as u32),
            key,
            intent: Intent::Insert(key),
        });
    }
    cluster.run_to_quiescence();
    let s = cluster.sim.stats();
    assert!(
        s.kind("lock.req").remote >= 5,
        "each coordinated write locked the peer copy"
    );
    assert_eq!(
        s.kind("lock.req").remote,
        s.kind("lock.grant").remote,
        "every lock was granted"
    );
    let expected: BTreeSet<u64> = [10, 20, 30, 40, 110, 120, 130, 140, 15, 16, 17, 35, 36]
        .into_iter()
        .collect();
    assert_clean(&mut cluster, &expected);
}

#[test]
fn avail_copies_search_waits_for_unlock_but_completes() {
    for seed in 0..10u64 {
        let mut cluster = tiny(ProtocolKind::AvailableCopies, seed);
        cluster.submit(ClientOp {
            origin: ProcId(1),
            key: 15,
            intent: Intent::Insert(15),
        });
        cluster.submit(ClientOp {
            origin: ProcId(0),
            key: 10,
            intent: Intent::Search,
        });
        let records = cluster.run_to_quiescence();
        let search = records
            .iter()
            .find(|r| matches!(r.op.intent, Intent::Search))
            .expect("search completed");
        assert_eq!(search.outcome.found, Some(10));
    }
}

// ---------------------------------------------------------------------------
// Root growth
// ---------------------------------------------------------------------------

#[test]
fn root_split_broadcasts_the_new_root_to_every_processor() {
    // A tree whose root is a leaf: enough inserts force root splits and a
    // NewRoot broadcast; afterwards every processor can serve operations
    // from its updated local root.
    for protocol in [ProtocolKind::SemiSync, ProtocolKind::Sync] {
        let cfg = TreeConfig {
            fanout: 4,
            ..TreeConfig::with_protocol(protocol)
        };
        let spec = BuildSpec::new(vec![], 3, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(5, 2, 15));
        for k in 0..60u64 {
            cluster.submit(ClientOp {
                origin: ProcId((k % 3) as u32),
                key: k,
                intent: Intent::Insert(k),
            });
            for _ in 0..20 {
                if !cluster.sim.step() {
                    break;
                }
            }
        }
        cluster.run_to_quiescence();

        // All processors agree on a root of height ≥ 2.
        let roots: BTreeSet<_> = cluster
            .sim
            .procs()
            .map(|(_, p)| p.store.root().expect("root known"))
            .collect();
        assert_eq!(roots.len(), 1, "{protocol:?}: all procs share the root");
        let root = *roots.iter().next().expect("checked");
        let view = GlobalView::new(&cluster.sim);
        let level = view.authoritative(root).expect("root resident").level;
        assert!(
            level >= 1,
            "{protocol:?}: the tree grew (root level {level})"
        );

        // Every processor serves a search from its local root.
        for p in 0..3u32 {
            cluster.submit(ClientOp {
                origin: ProcId(p),
                key: 30,
                intent: Intent::Search,
            });
        }
        let records = cluster.run_to_quiescence();
        assert!(records.iter().all(|r| r.outcome.found == Some(30)));

        let expected: BTreeSet<u64> = (0..60).collect();
        assert_clean(&mut cluster, &expected);
    }
}

// ---------------------------------------------------------------------------
// Piggybacking
// ---------------------------------------------------------------------------

#[test]
fn piggyback_timer_flushes_a_lone_relay() {
    let cfg = TreeConfig {
        piggyback: Some(dbtree::PiggybackCfg {
            max_batch: 100, // never fills: only the timer can flush
            flush_interval: 40,
        }),
        ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 2)
    };
    let spec = BuildSpec::new((0..20).map(|k| k * 10).collect(), 2, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::seeded(2));
    cluster.submit(ClientOp {
        origin: ProcId(0),
        key: 55,
        intent: Intent::Insert(55),
    });
    cluster.run_to_quiescence();
    let s = cluster.sim.stats();
    assert_eq!(s.kind("insert.relay").remote, 0, "no eager relay");
    assert_eq!(s.kind("insert.relay-batch").remote, 1, "timer flushed it");
    let expected: BTreeSet<u64> = (0..20).map(|k| k * 10).chain([55]).collect();
    assert_clean(&mut cluster, &expected);
}

// ---------------------------------------------------------------------------
// Mobile interior nodes (§4.2 beyond leaves)
// ---------------------------------------------------------------------------

#[test]
fn interior_node_migration_reparents_children() {
    // Single-copy placement; migrate a level-1 interior node and verify the
    // structure still answers from every processor (children's parent links
    // and the parent's child-home hints are refreshed by link-changes).
    let cfg = TreeConfig {
        placement: Placement::Uniform { copies: 1 },
        forwarding: false,
        ..Default::default()
    };
    let spec = BuildSpec::new((0..120).map(|k| k * 10).collect(), 3, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(8, 2, 20));

    // Find an interior (level-1) node and its owner.
    let (node, owner) = cluster
        .sim
        .procs()
        .flat_map(|(pid, p)| {
            p.store
                .iter()
                .filter(|c| c.level == 1)
                .map(move |c| (c.id, pid))
                .collect::<Vec<_>>()
        })
        .min_by_key(|(id, _)| *id)
        .expect("interior node exists");
    let dest = ProcId((owner.0 + 1) % 3);
    cluster.migrate(node, owner, dest);
    cluster.run_to_quiescence();

    assert!(
        cluster.sim.proc(dest).store.contains(node),
        "the interior node moved"
    );
    for p in 0..3u32 {
        cluster.submit(ClientOp {
            origin: ProcId(p),
            key: 550,
            intent: Intent::Search,
        });
    }
    let records = cluster.run_to_quiescence();
    assert!(records.iter().all(|r| r.outcome.found == Some(550)));
    let expected: BTreeSet<u64> = (0..120).map(|k| k * 10).collect();
    assert_clean(&mut cluster, &expected);
}
