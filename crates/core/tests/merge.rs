//! Lazy merge-at-empty, end to end: deletes empty leaves, emptied leaves
//! retire, their ranges flow left, and every global invariant (convergence,
//! leaf chain, history sequences) holds with reclamation switched on.

mod common;

use std::collections::BTreeSet;

use dbtree::checker;
use dbtree::{BuildSpec, ClientOp, DbCluster, Intent, Key, ProtocolKind, TreeConfig};
use simnet::{ProcId, SimConfig};

const N_PROCS: u32 = 4;

fn merge_cfg(protocol: ProtocolKind) -> TreeConfig {
    TreeConfig {
        merge_at_empty: true,
        ..TreeConfig::with_protocol(protocol)
    }
}

fn build(protocol: ProtocolKind, preload: u64, seed: u64) -> (DbCluster, Vec<Key>) {
    let keys: Vec<Key> = (0..preload).map(|k| k * 10).collect();
    let spec = BuildSpec::new(keys.clone(), N_PROCS, merge_cfg(protocol));
    let cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25));
    (cluster, keys)
}

fn delete_ops(keys: &[Key]) -> Vec<ClientOp> {
    keys.iter()
        .enumerate()
        .map(|(i, &key)| ClientOp {
            origin: ProcId(i as u32 % N_PROCS),
            key,
            intent: Intent::Delete,
        })
        .collect()
}

fn total_metric(cluster: &DbCluster, f: impl Fn(&dbtree::ProcMetrics) -> u64) -> u64 {
    cluster.sim.procs().map(|(_, p)| f(&p.metrics)).sum()
}

fn total_slots(cluster: &DbCluster) -> usize {
    cluster.sim.procs().map(|(_, p)| p.store.len()).sum()
}

/// Deleting every key collapses the leaf level: emptied leaves retire (all
/// but the leftmost), arena slots free, and the oracle stack stays clean.
#[test]
fn mass_delete_collapses_leaf_level() {
    for protocol in [ProtocolKind::SemiSync, ProtocolKind::Sync] {
        let (mut cluster, keys) = build(protocol, 200, 7);
        let leaves_before = cluster.leaves().len();
        let slots_before = total_slots(&cluster);
        assert!(leaves_before > 10, "preload must spread over many leaves");

        let stats = cluster.run_closed_loop(&delete_ops(&keys), 4);
        assert_eq!(stats.records.len(), keys.len(), "every delete completes");

        let merges = total_metric(&cluster, |m| m.merges_completed);
        assert!(merges > 0, "{protocol:?}: no merges committed");
        let leaves_after = cluster.leaves().len();
        assert!(
            leaves_after < leaves_before / 2,
            "{protocol:?}: leaf count {leaves_before} -> {leaves_after}, \
             expected a collapse"
        );
        assert!(
            total_slots(&cluster) < slots_before,
            "{protocol:?}: retirement must free arena slots"
        );
        assert!(
            total_metric(&cluster, |m| m.absorbs_applied) >= merges,
            "every committed merge lands an absorb"
        );

        // Full oracle stack on the reclaimed tree, plus the delete-specific
        // check: no deleted key may be findable.
        common::assert_clean(&mut cluster, &BTreeSet::new());
        let deleted: BTreeSet<Key> = keys.iter().copied().collect();
        let visible = checker::check_deleted_keys(&cluster.sim, &deleted);
        assert!(visible.is_empty(), "{protocol:?}: {visible:?}");
    }
}

/// A range whose leaf was merged away is still writable: new inserts
/// navigate through the absorber (or its descendants after a re-split) and
/// are findable afterwards.
#[test]
fn reinsert_into_merged_range_lands() {
    let (mut cluster, keys) = build(ProtocolKind::SemiSync, 120, 11);
    cluster.run_closed_loop(&delete_ops(&keys), 4);
    assert!(total_metric(&cluster, |m| m.merges_completed) > 0);

    // Re-insert across the whole (now mostly merged-away) key space, at
    // fresh keys and at previously deleted ones.
    let reinserts: Vec<ClientOp> = (0..120u64)
        .map(|i| ClientOp {
            origin: ProcId(i as u32 % N_PROCS),
            key: i * 10 + (i % 2), // half exactly on deleted keys
            intent: Intent::Insert(i + 1),
        })
        .collect();
    let stats = cluster.run_closed_loop(&reinserts, 4);
    assert_eq!(stats.records.len(), reinserts.len());

    let expected: BTreeSet<Key> = reinserts.iter().map(|o| o.key).collect();
    common::assert_clean(&mut cluster, &expected);
}

/// Deletes racing inserts into the same leaves: the commit-time re-verify
/// must refuse any merge that would drop a live entry, whatever interleaving
/// the schedule produces.
#[test]
fn merge_races_concurrent_inserts_safely() {
    for seed in 0..5u64 {
        let (mut cluster, keys) = build(ProtocolKind::SemiSync, 100, 100 + seed);
        // Interleave: delete every preloaded key, insert a neighbour key in
        // the same leaf right behind it.
        let mut ops = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            ops.push(ClientOp {
                origin: ProcId(i as u32 % N_PROCS),
                key,
                intent: Intent::Delete,
            });
            if i % 3 == 0 {
                ops.push(ClientOp {
                    origin: ProcId((i as u32 + 1) % N_PROCS),
                    key: key + 1,
                    intent: Intent::Insert(key + 1),
                });
            }
        }
        let stats = cluster.run_closed_loop(&ops, 6);
        assert_eq!(stats.records.len(), ops.len(), "seed {seed}");

        let expected: BTreeSet<Key> = ops
            .iter()
            .filter_map(|o| matches!(o.intent, Intent::Insert(_)).then_some(o.key))
            .collect();
        common::assert_clean(&mut cluster, &expected);
        let deleted: BTreeSet<Key> = keys.iter().copied().collect();
        let visible = checker::check_deleted_keys(&cluster.sim, &deleted);
        assert!(visible.is_empty(), "seed {seed}: {visible:?}");
    }
}

/// Scans walk the leaf chain across a merged-away boundary: the absorber's
/// right link jumps over retired nodes, tombstones are skipped, and the
/// collected window is exactly the live keys in order.
#[test]
fn scan_crosses_merged_boundary_and_skips_tombstones() {
    let (mut cluster, keys) = build(ProtocolKind::SemiSync, 150, 13);
    // Delete a contiguous middle band — enough whole leaves to merge.
    let band: Vec<Key> = keys
        .iter()
        .copied()
        .filter(|&k| (400..=900).contains(&k))
        .collect();
    cluster.run_closed_loop(&delete_ops(&band), 4);
    assert!(
        total_metric(&cluster, |m| m.merges_completed) > 0,
        "deleting a 50-key band must merge at least one leaf"
    );

    // Scan from inside the live prefix, across the deleted band, into the
    // live suffix.
    cluster.scan(ProcId(0), 350, 20);
    cluster.run_to_quiescence();
    let scans = cluster.take_scans();
    assert_eq!(scans.len(), 1);
    let got: Vec<Key> = scans[0].items.iter().map(|(k, _)| *k).collect();
    let want: Vec<Key> = keys
        .iter()
        .copied()
        .filter(|&k| k >= 350 && !(400..=900).contains(&k))
        .take(20)
        .collect();
    assert_eq!(got, want, "scan window must skip the merged-away band");

    let expected: BTreeSet<Key> = keys
        .iter()
        .copied()
        .filter(|k| !(400..=900).contains(k))
        .collect();
    common::assert_clean(&mut cluster, &expected);
}

/// The mixed closed loop drives deletes and scans through the same windows
/// as point ops (the driver's scan completions refill slots), with merges
/// enabled and the oracle stack green afterwards.
#[test]
fn mixed_closed_loop_with_deletes_and_scans() {
    use dbtree::{DbSubmission, ScanSpec};
    let (mut cluster, keys) = build(ProtocolKind::SemiSync, 80, 17);
    let mut items: Vec<DbSubmission> = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        items.push(DbSubmission::Op(ClientOp {
            origin: ProcId(i as u32 % N_PROCS),
            key,
            intent: Intent::Delete,
        }));
        if i % 10 == 0 {
            items.push(DbSubmission::Scan(ScanSpec {
                origin: ProcId((i as u32 + 2) % N_PROCS),
                from: key,
                limit: 8,
            }));
        }
    }
    let stats = cluster.run_closed_loop_mixed(&items, 4);
    let n_scans = items
        .iter()
        .filter(|i| matches!(i, DbSubmission::Scan(_)))
        .count();
    assert_eq!(stats.records.len(), items.len() - n_scans);
    assert_eq!(cluster.take_scans().len(), n_scans, "every scan completes");
    common::assert_clean(&mut cluster, &BTreeSet::new());
}
