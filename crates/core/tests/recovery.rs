//! Self-healing chaos tests: a processor crashes in the middle of a
//! workload whose clients *keep submitting to it*, and nothing in the
//! assertions special-cases the crash. The stack under test:
//!
//! * the session-layer failure detector suspects the dead processor and
//!   tells the protocol layer ([`simnet::DetectorConfig`]);
//! * the protocol layer quarantines it — relays stop, per-node missed bits
//!   accumulate ([`dbtree::ProcMetrics::quarantines`]);
//! * the client driver times out stuck operations, backs off, and
//!   redirects resubmissions away from the suspect
//!   ([`simnet::RetryPolicy`]), so **every accepted operation completes**;
//! * on restart the processor rejoins its interior copies (§4.3), pulls
//!   state for the copies it kept, and rehabilitated peers push what the
//!   quarantine suppressed — anti-entropy lands in `NodeCopy::merge_from`
//!   and the tree ends converged under the full oracle stack.
//!
//! Everything is seeded; the determinism test pins the whole run.

mod common;

use std::collections::BTreeSet;

use common::assert_clean;
use dbtree::{
    check_history_sequences, record_final_digests_from, BuildSpec, ClientOp, DbCluster, GlobalView,
    Intent, Key, ThreadedDbCluster, TreeConfig,
};
use simnet::{
    CrashEvent, DetectorConfig, FaultPlan, ProcId, RetryPolicy, SessionConfig, SimConfig, SimTime,
};

const N_PROCS: u32 = 4;
const CRASHED: ProcId = ProcId(2);
const SEED: u64 = 0xC4A5;

// Large enough that the built tree has two interior levels and the crashed
// processor is the PC of some replicated interior node (with fanout 8 the
// builder packs 5 keys per leaf: 240 keys → 48 leaves → the leaf partition
// boundaries land mid-group, so every processor ends up owning an interior
// node whose members cross into its neighbour). That makes the restart
// *pull* half of anti-entropy observable, not just the push half.
fn preload_keys() -> Vec<Key> {
    (0..240).map(|k| k * 20).collect()
}

/// A workload whose origins cycle over *all* processors — the crasher
/// included. The retry layer, not the workload, is responsible for getting
/// those operations answered.
fn workload(n_ops: u64) -> Vec<ClientOp> {
    (0..n_ops)
        .map(|i| ClientOp {
            origin: ProcId((i % N_PROCS as u64) as u32),
            key: 7 * i + 3,
            intent: if i % 4 == 3 {
                Intent::Search
            } else {
                Intent::Insert(i)
            },
        })
        .collect()
}

/// Crash `CRASHED` mid-workload and restart it later, over a mildly lossy
/// network (the loss keeps the reliable session layer honest).
fn chaos_plan() -> FaultPlan {
    FaultPlan::lossy(0.02).with_crash(CrashEvent {
        proc: CRASHED,
        at: SimTime(150),
        restart_at: Some(SimTime(1_200)),
    })
}

/// Retry policy tight enough that operations stuck on the dead processor
/// time out and redirect *during* the outage, not after it.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        enabled: true,
        deadline: 600,
        ..RetryPolicy::default()
    }
}

fn chaos_session(detector: bool) -> SessionConfig {
    if detector {
        SessionConfig::reliable().with_detector(DetectorConfig::on())
    } else {
        SessionConfig::reliable()
    }
}

fn build_chaos(seed: u64, detector: bool) -> DbCluster {
    let spec = BuildSpec::new(preload_keys(), N_PROCS, TreeConfig::default());
    let sim_cfg = SimConfig {
        faults: chaos_plan(),
        ..SimConfig::jittery(seed, 2, 20)
    };
    let mut cluster = DbCluster::build_with_session(&spec, sim_cfg, chaos_session(detector));
    cluster.set_retry(chaos_retry());
    cluster
}

fn sum_metric(cluster: &DbCluster, f: impl Fn(&dbtree::ProcMetrics) -> u64) -> u64 {
    cluster.sim.procs().map(|(_, p)| f(&p.metrics)).sum()
}

/// Shared body for the simulator chaos cells: one processor crashes
/// mid-workload, clients retry, the restart rejoins and anti-entropy
/// catches up — and the assertions are exactly the ones a crash-free run
/// would make, plus "the machinery actually fired". With the detector off,
/// the detector-driven half (suspicion, quarantine, rehabilitation pushes)
/// is asserted absent; the client retry layer and the restart pull must
/// still self-heal the run on their own.
fn sim_chaos(detector: bool) {
    let mut cluster = build_chaos(SEED, detector);
    let ops = workload(160);
    let stats = cluster.run_closed_loop(&ops, 3);

    // Every accepted operation completes, crash or no crash.
    assert_eq!(
        stats.records.len(),
        ops.len(),
        "an operation never completed"
    );
    // The clients felt the crash: stuck submissions timed out and retried.
    assert!(stats.timeouts > 0, "no attempt ever timed out");
    assert!(stats.retries > 0, "no operation was ever retried");
    assert!(
        stats.redirects > 0,
        "no resubmission was redirected off the suspect"
    );
    assert_eq!(stats.abandoned, 0, "an operation ran out of attempts");

    let suspects: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.session_stats().suspects)
        .sum();
    let alives: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.session_stats().alives)
        .sum();
    if detector {
        // The detector and the quarantine/rehabilitation layer fired.
        assert!(suspects > 0, "the detector never suspected the dead proc");
        assert!(alives > 0, "the detector never saw the proc come back");
        assert!(sum_metric(&cluster, |m| m.quarantines) > 0, "no quarantine");
        assert!(
            sum_metric(&cluster, |m| m.sync_pushes) > 0,
            "no peer ever pushed catch-up state"
        );
    } else {
        assert_eq!(suspects, 0, "no detector, no suspicion");
        assert_eq!(sum_metric(&cluster, |m| m.quarantines), 0);
    }
    // Restart recovery is detector-independent: the fault plan's restart
    // drives the §4.3 rejoin and the catch-up pull either way.
    assert_eq!(
        sum_metric(&cluster, |m| m.recoveries),
        1,
        "exactly one restart recovery"
    );
    assert!(
        sum_metric(&cluster, |m| m.sync_pulls) > 0,
        "the restarted proc never pulled state for its retained copies"
    );

    // The full oracle stack — convergence digests, findability from every
    // processor, leaf chain, stashes, §3 history coverage and sequences —
    // with no crash-specific carve-outs.
    let mut expected: BTreeSet<Key> = preload_keys().into_iter().collect();
    for r in &stats.records {
        if let Intent::Insert(_) = r.op.intent {
            expected.insert(r.op.key);
        }
    }
    assert_clean(&mut cluster, &expected);
}

/// The acceptance test: detector on, full self-healing stack.
#[test]
fn crash_mid_workload_self_heals() {
    sim_chaos(true);
}

/// Detector off: the degraded baseline the detector improves on. The
/// driver's own timeout-driven suspicion and the restart pull must still
/// complete and converge the run — just without quarantine or pushes.
#[test]
fn crash_recovers_without_detector() {
    sim_chaos(false);
}

/// The same chaos run is a pure function of its seed: records, retry
/// counters, metrics, and every copy digest are byte-identical across two
/// runs.
#[test]
fn chaos_run_is_deterministic() {
    let fingerprint = |seed: u64| {
        let mut cluster = build_chaos(seed, true);
        let ops = workload(160);
        let stats = cluster.run_closed_loop(&ops, 3);
        let records: Vec<(u64, u64, u64, u64)> = stats
            .records
            .iter()
            .map(|r| (r.op.origin.0 as u64, r.op.key, r.submitted.0, r.completed.0))
            .collect();
        let metrics: Vec<(String, u64)> = {
            let mut total = dbtree::ProcMetrics::default();
            for (_, p) in cluster.sim.procs() {
                total.merge(&p.metrics);
            }
            total
                .named()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect()
        };
        let digests: Vec<(u64, u32, u64)> = {
            let procs: Vec<_> = cluster.sim.procs().map(|(pid, p)| (pid, &**p)).collect();
            let mut out = Vec::new();
            for (pid, proc) in procs {
                for copy in proc.store.iter() {
                    out.push((copy.id.raw(), pid.0, copy.digest()));
                }
            }
            out.sort_unstable();
            out
        };
        (
            records,
            (stats.timeouts, stats.retries, stats.redirects),
            metrics,
            digests,
        )
    };
    assert_eq!(fingerprint(SEED), fingerprint(SEED));
}

/// The threaded twin: same stack on real OS threads. Crash and restart are
/// injected from the driving thread (real time has no fault plan): the
/// middle chunk is submitted open-loop *into the outage* — some of those
/// operations land on the dead processor, some need leaves it owns — and
/// only then does the processor come back. As in the simulator test, the
/// assertions make no crash-specific allowance: every operation completes
/// and the final states pass the same oracles.
fn threaded_chaos(detector: bool) {
    let spec = BuildSpec::new(preload_keys(), N_PROCS, TreeConfig::default());
    let mut cluster =
        ThreadedDbCluster::build_threaded_with_session(&spec, chaos_session(detector));
    // Threaded ticks are microseconds: deadlines sized for thread-scheduling
    // jitter rather than simulator hops.
    cluster.set_retry(RetryPolicy {
        enabled: true,
        deadline: 50_000,
        backoff_base: 1_000,
        backoff_max: 20_000,
        max_attempts: 20,
        ..RetryPolicy::default()
    });

    let ops = workload(160);
    let (before, during_and_after) = ops.split_at(40);
    let (during, after) = during_and_after.split_at(80);

    let mut records = Vec::new();
    records.extend(cluster.run_closed_loop(before, 3).records);

    // Crash, then submit straight into the outage. Injections into the dead
    // processor are its lost volatile queue; only the retry layer gets them
    // answered. The sleep keeps the outage real on a wall clock: long
    // enough for the peers' detectors to suspect the silence.
    cluster.sim.crash(CRASHED);
    for op in during {
        cluster.submit(*op);
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    cluster.sim.restart(CRASHED);
    records.extend(cluster.run_to_quiescence());

    let stats = cluster.run_closed_loop(after, 3);
    // Driver counters are cumulative, so this snapshot covers the outage.
    assert!(
        stats.timeouts > 0,
        "no attempt timed out against the dead proc"
    );
    assert_eq!(stats.abandoned, 0, "an operation ran out of attempts");
    records.extend(stats.records);

    assert_eq!(records.len(), ops.len(), "an operation never completed");

    let mut expected: BTreeSet<Key> = preload_keys().into_iter().collect();
    for r in &records {
        if let Intent::Insert(_) = r.op.intent {
            expected.insert(r.op.key);
        }
    }

    let log = cluster.log();
    let final_procs = cluster.into_procs();
    let suspects: u64 = final_procs.iter().map(|p| p.session_stats().suspects).sum();
    if detector {
        assert!(suspects > 0, "the detector never suspected the dead proc");
    } else {
        assert_eq!(suspects, 0, "no detector, no suspicion");
    }
    let procs: Vec<_> = final_procs
        .iter()
        .enumerate()
        .map(|(i, p)| (ProcId(i as u32), &**p))
        .collect();
    record_final_digests_from(&log, procs.iter().copied());

    // Convergence: every copy of every node ends at the same digest.
    let view = GlobalView::from_procs(procs.iter().copied());
    for (node, list) in &view.copies {
        let digests: BTreeSet<u64> = list.iter().map(|(_, c)| c.digest()).collect();
        assert_eq!(
            digests.len(),
            1,
            "copies of node {node:?} diverged: {list:?}"
        );
    }
    // Findability of every acknowledged insert by root navigation.
    for r in &records {
        if let Intent::Insert(v) = r.op.intent {
            assert_eq!(view.find(r.op.key), Some(v), "key {} lost", r.op.key);
        }
    }
    for k in &expected {
        assert!(view.find(*k).is_some(), "preloaded key {k} lost");
    }
    // §3 history oracles: coverage + final digests, and sequence laws.
    let log = log.lock();
    let violations = log.check();
    assert!(violations.is_empty(), "history: {violations:?}");
    let seq = check_history_sequences(&log);
    assert!(seq.is_empty(), "sequences: {seq:?}");
}

#[test]
fn threaded_crash_mid_workload_self_heals() {
    threaded_chaos(true);
}

/// Threaded, detector off: crash/restart envelopes with only the session
/// layer's retransmissions and the driver's timeout-driven retries.
#[test]
fn threaded_crash_recovers_without_detector() {
    threaded_chaos(false);
}
